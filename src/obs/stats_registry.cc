#include "obs/stats_registry.hh"

#include "base/atomic_file.hh"
#include "base/logging.hh"
#include "base/str.hh"
#include "obs/json.hh"

namespace cosim {
namespace obs {

StatsRegistry&
StatsRegistry::global()
{
    static StatsRegistry instance;
    return instance;
}

stats::Group&
StatsRegistry::add(stats::Group group)
{
    LockGuard lock(mutex_);
    for (stats::Group& g : groups_) {
        if (g.name() == group.name()) {
            g = std::move(group);
            return g;
        }
    }
    groups_.push_back(std::move(group));
    return groups_.back();
}

stats::Group&
StatsRegistry::makeGroup(const std::string& name)
{
    return add(stats::Group(name));
}

void
StatsRegistry::addSnapshotOf(const StatsRegistry& src,
                             const std::string& prefix)
{
    // Collect outside our own lock: evaluating src's formulas may take
    // arbitrary time, and src may be *this in odd call patterns.
    std::vector<stats::Group> frozen;
    {
        LockGuard lock(src.mutex_);
        frozen.reserve(src.groups_.size());
        for (const stats::Group& g : src.groups_) {
            stats::Group copy(prefix + g.name());
            for (const auto& [stat_name, value] : g.collect())
                copy.add(stat_name, [value] { return value; });
            frozen.push_back(std::move(copy));
        }
    }
    for (stats::Group& g : frozen)
        add(std::move(g));
}

void
StatsRegistry::clear()
{
    LockGuard lock(mutex_);
    groups_.clear();
}

std::size_t
StatsRegistry::removePrefix(const std::string& prefix)
{
    LockGuard lock(mutex_);
    const std::size_t before = groups_.size();
    for (auto it = groups_.begin(); it != groups_.end();) {
        if (it->name().compare(0, prefix.size(), prefix) == 0)
            it = groups_.erase(it);
        else
            ++it;
    }
    return before - groups_.size();
}

std::vector<std::string>
StatsRegistry::groupNames() const
{
    LockGuard lock(mutex_);
    std::vector<std::string> out;
    out.reserve(groups_.size());
    for (const stats::Group& g : groups_)
        out.push_back(g.name());
    return out;
}

const stats::Group*
StatsRegistry::find(const std::string& name) const
{
    LockGuard lock(mutex_);
    for (const stats::Group& g : groups_) {
        if (g.name() == name)
            return &g;
    }
    return nullptr;
}

std::string
StatsRegistry::dumpText() const
{
    LockGuard lock(mutex_);
    std::string out;
    for (const stats::Group& g : groups_)
        out += g.dump();
    return out;
}

std::string
StatsRegistry::dumpJson() const
{
    LockGuard lock(mutex_);
    std::string out = "{";
    bool first_group = true;
    for (const stats::Group& g : groups_) {
        if (!first_group)
            out += ",";
        first_group = false;
        out += "\n  " + json::quote(g.name()) + ": {";
        bool first_stat = true;
        for (const auto& [stat_name, value] : g.collect()) {
            if (!first_stat)
                out += ",";
            first_stat = false;
            out += "\n    " + json::quote(stat_name) + ": " +
                   json::number(value);
        }
        out += "\n  }";
    }
    out += "\n}\n";
    return out;
}

std::string
StatsRegistry::dumpCsv() const
{
    LockGuard lock(mutex_);
    std::string out = "stat,value\n";
    for (const stats::Group& g : groups_) {
        for (const auto& [stat_name, value] : g.collect()) {
            out += g.name() + "." + stat_name + "," +
                   json::number(value) + "\n";
        }
    }
    return out;
}

void
StatsRegistry::writeFile(const std::string& path) const
{
    std::string body;
    if (path.size() >= 5 && path.substr(path.size() - 5) == ".json")
        body = dumpJson();
    else if (path.size() >= 4 && path.substr(path.size() - 4) == ".csv")
        body = dumpCsv();
    else
        body = dumpText();

    // Atomic write so a crash or full disk never leaves a truncated
    // dump that looks complete; a failed write exits nonzero with the
    // path instead of printing success over a torn file.
    try {
        writeFileAtomic(path, body);
    } catch (const IoError& e) {
        fatal("stats: %s", e.what());
    }
}

} // namespace obs
} // namespace cosim
