#include "obs/trace_session.hh"

#include <algorithm>

#include "base/atomic_file.hh"
#include "base/host_clock.hh"
#include "base/logging.hh"
#include "obs/json.hh"

namespace cosim {
namespace obs {

TraceSession&
TraceSession::global()
{
    static TraceSession instance;
    return instance;
}

void
TraceSession::start()
{
    LockGuard lock(mutex_);
    events_.clear();
    // The host-time origin is deliberately NOT captured here: it is
    // the process-wide one from base/host_clock.hh, pinned at first
    // use. Re-capturing per start() is what used to skew host spans
    // against control-block tracks and profiler gauges after a reset.
    active_.store(true, std::memory_order_release);
}

void
TraceSession::stop()
{
    active_.store(false, std::memory_order_release);
}

double
TraceSession::hostNowUs() const
{
    return static_cast<double>(hostClockNowUs());
}

void
TraceSession::recordComplete(TraceDomain domain, std::uint32_t tid,
                             const std::string& category,
                             const std::string& name, double ts_us,
                             double dur_us, double arg, bool has_arg)
{
    if (!active())
        return;
    LockGuard lock(mutex_);
    TraceEvent e;
    e.phase = TraceEvent::Phase::Complete;
    e.domain = domain;
    e.tid = tid;
    e.tsUs = ts_us;
    e.durUs = dur_us;
    e.value = arg;
    e.hasArg = has_arg;
    e.name = name;
    e.category = category;
    events_.push_back(std::move(e));
}

void
TraceSession::recordInstant(TraceDomain domain, std::uint32_t tid,
                            const std::string& category,
                            const std::string& name, double ts_us)
{
    if (!active())
        return;
    LockGuard lock(mutex_);
    TraceEvent e;
    e.phase = TraceEvent::Phase::Instant;
    e.domain = domain;
    e.tid = tid;
    e.tsUs = ts_us;
    e.name = name;
    e.category = category;
    events_.push_back(std::move(e));
}

void
TraceSession::recordCounter(TraceDomain domain, const std::string& name,
                            double ts_us, double value)
{
    if (!active())
        return;
    LockGuard lock(mutex_);
    TraceEvent e;
    e.phase = TraceEvent::Phase::Counter;
    e.domain = domain;
    e.tsUs = ts_us;
    e.value = value;
    e.name = name;
    e.category = "counter";
    events_.push_back(std::move(e));
}

std::size_t
TraceSession::eventCount() const
{
    LockGuard lock(mutex_);
    return events_.size();
}

std::vector<TraceEvent>
TraceSession::events() const
{
    LockGuard lock(mutex_);
    return events_;
}

std::string
TraceSession::exportJson() const
{
    std::vector<TraceEvent> sorted = events();
    std::stable_sort(sorted.begin(), sorted.end(),
                     [](const TraceEvent& a, const TraceEvent& b) {
                         if (a.domain != b.domain)
                             return static_cast<std::uint32_t>(a.domain) <
                                    static_cast<std::uint32_t>(b.domain);
                         return a.tsUs < b.tsUs;
                     });

    std::string out = "{\"traceEvents\":[\n";
    // Process-name metadata so Perfetto labels the two clock domains.
    out += "{\"ph\":\"M\",\"pid\":0,\"name\":\"process_name\","
           "\"args\":{\"name\":\"host\"}},\n";
    out += "{\"ph\":\"M\",\"pid\":1,\"name\":\"process_name\","
           "\"args\":{\"name\":\"simulated\"}}";

    for (const TraceEvent& e : sorted) {
        out += ",\n{\"ph\":\"";
        out += static_cast<char>(e.phase);
        out += "\",\"pid\":";
        out += json::number(static_cast<double>(
            static_cast<std::uint32_t>(e.domain)));
        out += ",\"tid\":" + json::number(static_cast<double>(e.tid));
        out += ",\"ts\":" + json::number(e.tsUs);
        if (e.phase == TraceEvent::Phase::Complete)
            out += ",\"dur\":" + json::number(e.durUs);
        out += ",\"name\":" + json::quote(e.name);
        if (!e.category.empty())
            out += ",\"cat\":" + json::quote(e.category);
        if (e.phase == TraceEvent::Phase::Counter)
            out += ",\"args\":{\"value\":" + json::number(e.value) + "}";
        else if (e.hasArg)
            out += ",\"args\":{\"insts\":" + json::number(e.value) + "}";
        if (e.phase == TraceEvent::Phase::Instant)
            out += ",\"s\":\"t\"";
        out += "}";
    }
    out += "\n],\"displayTimeUnit\":\"ms\"}\n";
    return out;
}

void
TraceSession::writeJson(const std::string& path) const
{
    try {
        writeFileAtomic(path, exportJson());
    } catch (const IoError& e) {
        fatal("trace: %s", e.what());
    }
}

void
TraceSession::clear()
{
    LockGuard lock(mutex_);
    events_.clear();
}

} // namespace obs
} // namespace cosim
