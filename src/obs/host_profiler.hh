/**
 * @file
 * Host-side profiler: where does *wall-clock* time go while simulating?
 *
 * The paper's headline claim is simulation speed (30-50 MIPS); making the
 * reproduction fast requires measuring the simulator itself, not just
 * the simulated machine. The profiler accumulates named wall-clock phase
 * timers (setup / run / report, per workload) plus a simulated-MIPS gauge
 * fed by the platform after every run -- the same measure
 * bench/microbench_mips.cc derives, but available in every binary.
 */

#ifndef COSIM_OBS_HOST_PROFILER_HH
#define COSIM_OBS_HOST_PROFILER_HH

#include <chrono>
#include <cstdint>
#include <deque>
#include <string>
#include <utility>
#include <vector>

#include "base/annotations.hh"
#include "base/mutex.hh"
#include "base/stats.hh"

namespace cosim {
namespace obs {

/** See file comment. */
class HostProfiler
{
  public:
    /** Accumulated wall-clock of one named phase. */
    struct PhaseTotal
    {
        std::string name;
        double seconds = 0.0;
        std::uint64_t calls = 0;
    };

    /**
     * One timestamped MIPS gauge sample: the speed of a single
     * addSimulated() slice, stamped with the process-wide monotonic
     * clock (base/host_clock.hh). Worker threads feed the gauge
     * concurrently; stamping with the shared origin keeps these
     * samples on the same time axis as TraceSession host spans and
     * heartbeats -- including across reset(), which clears the ring
     * but never moves the clock.
     */
    struct MipsSample
    {
        std::uint64_t tUs = 0;
        double mips = 0.0;
    };

    /** The process-wide profiler. */
    static HostProfiler& global();

    /** Add @p seconds of wall-clock to phase @p name. */
    void accumulate(const std::string& name, double seconds);

    /** Feed the MIPS gauge: @p insts simulated in @p seconds. */
    void addSimulated(std::uint64_t insts, double seconds);

    /**
     * The most recent MIPS gauge samples (up to kMaxMipsSamples), in
     * chronological order. Timestamps are strictly non-decreasing,
     * even across reset().
     */
    std::vector<MipsSample> mipsSamples() const;

    /**
     * Record that @p n host threads emulated Dragonheads this process.
     * Keeps the maximum seen, exported as the "emulation_threads" stat.
     */
    void noteEmulationThreads(unsigned n);
    unsigned emulationThreads() const;

    /**
     * Record @p n dead emulation workers whose emulators degraded to
     * serial emulation on the workload thread. Accumulates; exported
     * as the "degraded_to_serial" stat.
     */
    void noteDegradedToSerial(unsigned n);
    unsigned degradedToSerial() const;

    double seconds(const std::string& name) const;
    std::uint64_t calls(const std::string& name) const;

    /** Snapshot of the phases, in first-seen order. */
    std::vector<PhaseTotal> phases() const;

    std::uint64_t simulatedInsts() const;
    double simulatedSeconds() const;

    /** Simulated MIPS over everything fed to the gauge so far. */
    double simulatedMips() const;

    /** Human-readable per-phase report. */
    std::string report() const;

    /**
     * Snapshot as a stats::Group named @p name ("host" by default):
     * <phase>.seconds / <phase>.calls plus sim_insts / sim_mips.
     * The group copies current values (it does not track the profiler).
     */
    stats::Group statsGroup(const std::string& name = "host") const;

    void reset();

    /** Ring capacity of the MIPS gauge sample history. */
    static constexpr std::size_t kMaxMipsSamples = 256;

  private:
    PhaseTotal& phase(const std::string& name) REQUIRES(mutex_);

    // Parallel sweep cells and the emulator-bank drain accounting feed
    // the profiler concurrently.
    mutable Mutex mutex_;
    std::vector<PhaseTotal> phases_ GUARDED_BY(mutex_);
    std::deque<MipsSample> mipsSamples_ GUARDED_BY(mutex_);
    std::uint64_t simInsts_ GUARDED_BY(mutex_) = 0;
    double simSeconds_ GUARDED_BY(mutex_) = 0.0;
    unsigned emuThreads_ GUARDED_BY(mutex_) = 0;
    unsigned degradedToSerial_ GUARDED_BY(mutex_) = 0;
};

/** RAII wall-clock timer accumulating into a HostProfiler phase. */
class ProfileScope
{
  public:
    explicit ProfileScope(std::string name,
                          HostProfiler& profiler = HostProfiler::global())
        : profiler_(profiler), name_(std::move(name)),
          start_(std::chrono::steady_clock::now())
    {
    }

    ~ProfileScope()
    {
        profiler_.accumulate(
            name_, std::chrono::duration<double>(
                       std::chrono::steady_clock::now() - start_)
                       .count());
    }

    ProfileScope(const ProfileScope&) = delete;
    ProfileScope& operator=(const ProfileScope&) = delete;

  private:
    HostProfiler& profiler_;
    std::string name_;
    std::chrono::steady_clock::time_point start_;
};

} // namespace obs
} // namespace cosim

#endif // COSIM_OBS_HOST_PROFILER_HH
