/**
 * @file
 * Low-overhead structured event tracer with Chrome trace-event export.
 *
 * A `TraceSession` collects timestamped events -- duration spans,
 * instants, and counter samples -- and exports them as Chrome
 * trace-event JSON, loadable in chrome://tracing or Perfetto. Two clock
 * domains coexist in one trace as two "processes":
 *
 *   pid 0 "host"      wall-clock microseconds since start(); used by the
 *                     TRACE_SPAN macros to profile the simulator itself.
 *   pid 1 "simulated" emulated microseconds supplied by the caller; used
 *                     by the DEX scheduler (one span per core quantum,
 *                     tid = virtual core id) and the Dragonhead CB (one
 *                     counter sample per 500 us window).
 *
 * Cost model: when no session is active every hook is one relaxed atomic
 * load and a branch; the hot simulation loops pay nothing else. Defining
 * COSIM_NO_TRACING compiles the macros out entirely.
 */

#ifndef COSIM_OBS_TRACE_SESSION_HH
#define COSIM_OBS_TRACE_SESSION_HH

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "base/annotations.hh"
#include "base/mutex.hh"

namespace cosim {
namespace obs {

/** The two clock domains of a trace (become Perfetto "processes"). */
enum class TraceDomain : std::uint32_t { Host = 0, Simulated = 1 };

/** One collected event. */
struct TraceEvent
{
    enum class Phase : char
    {
        Complete = 'X', ///< span with duration
        Instant = 'i',  ///< zero-duration marker
        Counter = 'C',  ///< one sample of a counter track
    };

    Phase phase = Phase::Instant;
    TraceDomain domain = TraceDomain::Host;
    std::uint32_t tid = 0;
    double tsUs = 0.0;
    double durUs = 0.0;  ///< Complete only
    double value = 0.0;  ///< Counter only
    bool hasArg = false; ///< Complete/Instant: emit value as an arg
    std::string name;
    std::string category;
};

/** See file comment. */
class TraceSession
{
  public:
    /** The process-wide session the macros and hooks record into. */
    static TraceSession& global();

    /** Begin collecting (clears previously collected events). */
    void start();

    /** Stop collecting; collected events stay available for export. */
    void stop();

    /** True while a session is collecting (hot-path gate). */
    bool active() const
    {
        return active_.load(std::memory_order_acquire);
    }

    /**
     * Host-clock timestamp: microseconds since the process-wide
     * monotonic origin (base/host_clock.hh). The origin never moves,
     * so spans recorded before and after a stop()/start() restart stay
     * on one axis, comparable with heartbeat, flight-recorder, and
     * HostProfiler gauge timestamps.
     */
    double hostNowUs() const;

    /** @name Recording (no-ops unless active) @{ */
    void recordComplete(TraceDomain domain, std::uint32_t tid,
                        const std::string& category,
                        const std::string& name, double ts_us,
                        double dur_us, double arg = 0.0,
                        bool has_arg = false);
    void recordInstant(TraceDomain domain, std::uint32_t tid,
                       const std::string& category,
                       const std::string& name, double ts_us);
    void recordCounter(TraceDomain domain, const std::string& name,
                       double ts_us, double value);
    /** @} */

    std::size_t eventCount() const;

    /** Snapshot of the collected events (test/inspection use). */
    std::vector<TraceEvent> events() const;

    /**
     * Export as Chrome trace-event JSON: a {"traceEvents": [...]} object
     * with process-name metadata for both domains and events ordered by
     * (pid, timestamp).
     */
    std::string exportJson() const;

    /** Write exportJson() to @p path; fatal() on I/O error. */
    void writeJson(const std::string& path) const;

    /** Drop collected events (does not change active state). */
    void clear();

  private:
    mutable Mutex mutex_;
    std::atomic<bool> active_{false};
    std::vector<TraceEvent> events_ GUARDED_BY(mutex_);
};

/**
 * RAII host-side span: measures wall-clock from construction to
 * destruction and records a Complete event in the Host domain.
 */
class TraceScope
{
  public:
    TraceScope(const char* category, const char* name,
               std::uint32_t tid = 0)
        : category_(category), name_(name), tid_(tid),
          armed_(TraceSession::global().active())
    {
        if (armed_)
            startUs_ = TraceSession::global().hostNowUs();
    }

    ~TraceScope()
    {
        if (!armed_)
            return;
        TraceSession& s = TraceSession::global();
        double end_us = s.hostNowUs();
        s.recordComplete(TraceDomain::Host, tid_, category_, name_,
                         startUs_, end_us - startUs_);
    }

    TraceScope(const TraceScope&) = delete;
    TraceScope& operator=(const TraceScope&) = delete;

  private:
    const char* category_;
    const char* name_;
    std::uint32_t tid_;
    bool armed_;
    double startUs_ = 0.0;
};

} // namespace obs
} // namespace cosim

#ifndef COSIM_NO_TRACING

#define COSIM_TRACE_CAT2(a, b) a##b
#define COSIM_TRACE_CAT(a, b) COSIM_TRACE_CAT2(a, b)

/** Scoped host-side span (wall clock), e.g. TRACE_SPAN("sweep", "run"). */
#define TRACE_SPAN(category, name)                                           \
    ::cosim::obs::TraceScope COSIM_TRACE_CAT(cosim_trace_scope_,             \
                                             __LINE__)(category, name)

/** One sample of a host-domain counter track at the current host time. */
#define TRACE_COUNTER(name, value)                                           \
    do {                                                                     \
        ::cosim::obs::TraceSession& s_ = ::cosim::obs::TraceSession::global();\
        if (s_.active())                                                     \
            s_.recordCounter(::cosim::obs::TraceDomain::Host, name,          \
                             s_.hostNowUs(), static_cast<double>(value));    \
    } while (0)

/** Zero-duration host-domain marker at the current host time. */
#define TRACE_INSTANT(category, name)                                        \
    do {                                                                     \
        ::cosim::obs::TraceSession& s_ = ::cosim::obs::TraceSession::global();\
        if (s_.active())                                                     \
            s_.recordInstant(::cosim::obs::TraceDomain::Host, 0, category,   \
                             name, s_.hostNowUs());                          \
    } while (0)

#else

#define TRACE_SPAN(category, name) do { } while (0)
#define TRACE_COUNTER(name, value) do { } while (0)
#define TRACE_INSTANT(category, name) do { } while (0)

#endif // COSIM_NO_TRACING

#endif // COSIM_OBS_TRACE_SESSION_HH
