#include "obs/postmortem.hh"

#include "base/atomic_file.hh"
#include "base/fault.hh"
#include "base/flight_recorder.hh"
#include "base/host_clock.hh"
#include "base/logging.hh"
#include "base/mutex.hh"
#include "obs/json.hh"

namespace cosim {
namespace obs {

namespace {

std::string
renderFaultSites()
{
    std::string out = "[";
    bool first = true;
    for (const FaultInjector::SiteReport& site :
         FaultInjector::global().report()) {
        if (!first)
            out += ",";
        first = false;
        out += "\n    {\"site\":" + json::quote(site.site) +
               ",\"hits\":" + std::to_string(site.hits) +
               ",\"fired\":" + std::to_string(site.fired) +
               ",\"armed\":" + (site.armed ? "true" : "false") + "}";
    }
    out += first ? "]" : "\n  ]";
    return out;
}

std::string
renderThreads()
{
    std::string out = "[";
    bool first_thread = true;
    for (const FlightRecorder::ThreadDump& dump :
         FlightRecorder::dumpAll()) {
        if (dump.events.empty() && dump.label.empty())
            continue;
        if (!first_thread)
            out += ",";
        first_thread = false;
        out += "\n    {\"label\":" + json::quote(dump.label) +
               ",\"events\":[";
        bool first_event = true;
        for (const FrEvent& ev : dump.events) {
            if (!first_event)
                out += ",";
            first_event = false;
            out += "\n      {\"seq\":" + std::to_string(ev.seq) +
                   ",\"t_us\":" + std::to_string(ev.tUs) +
                   ",\"kind\":" + json::quote(frKindName(ev.kind)) +
                   ",\"site\":" +
                   json::quote(ev.site != nullptr ? ev.site : "") +
                   ",\"a\":" + std::to_string(ev.a) +
                   ",\"b\":" + std::to_string(ev.b) + "}";
        }
        out += first_event ? "]}" : "\n    ]}";
    }
    out += first_thread ? "]" : "\n  ]";
    return out;
}

// Fatal-hook plumbing: the hook is a capture-less function pointer, so
// the target path (and the last cell context) live in mutex-guarded
// globals.
Mutex g_fatal_path_mutex;
std::string g_fatal_path GUARDED_BY(g_fatal_path_mutex);
std::string g_context_cell GUARDED_BY(g_fatal_path_mutex);
unsigned g_context_attempt GUARDED_BY(g_fatal_path_mutex) = 0;

void
fatalPostmortemHook(const std::string& msg)
{
    PostmortemInfo info;
    std::string path;
    {
        LockGuard lock(g_fatal_path_mutex);
        path = g_fatal_path;
        info.cell = g_context_cell;
        info.attempt = g_context_attempt;
    }
    if (path.empty())
        return;
    info.reason = "fatal";
    info.error = msg;
    writePostmortem(path, info);
}

} // namespace

std::string
renderPostmortem(const PostmortemInfo& info)
{
    std::string out = "{\n";
    out += "  \"schema\": \"cosim-postmortem/1\",\n";
    out += "  \"t_us\": " + std::to_string(hostClockNowUs()) + ",\n";
    out += "  \"reason\": " + json::quote(info.reason) + ",\n";
    out += "  \"cell\": " + json::quote(info.cell) + ",\n";
    out += "  \"attempt\": " + std::to_string(info.attempt) + ",\n";
    out += "  \"error\": " + json::quote(info.error) + ",\n";
    out += "  \"signal\": " + json::quote(info.signalName) + ",\n";
    out += "  \"stderr_tail\": " + json::quote(info.stderrTail) + ",\n";
    out += "  \"fault_sites\": " + renderFaultSites() + ",\n";
    out += "  \"threads\": " + renderThreads() + "\n";
    out += "}\n";
    return out;
}

bool
writePostmortem(const std::string& path, const PostmortemInfo& info)
{
    // Best-effort by contract: a failing diagnostic write must not
    // mask or compound the failure being reported.
    try {
        writeFileAtomic(path, renderPostmortem(info));
    } catch (const IoError& e) {
        warn("postmortem: %s", e.what());
        return false;
    }
    return true;
}

void
installFatalPostmortem(const std::string& path)
{
    LockGuard lock(g_fatal_path_mutex);
    g_fatal_path = path;
    setFatalHook(path.empty() ? nullptr : &fatalPostmortemHook);
}

void
setPostmortemContext(const std::string& cell, unsigned attempt)
{
    LockGuard lock(g_fatal_path_mutex);
    g_context_cell = cell;
    g_context_attempt = attempt;
}

} // namespace obs
} // namespace cosim
