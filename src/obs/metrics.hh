/**
 * @file
 * Live metrics: lock-free counters and log2-bucketed histograms.
 *
 * base/stats.hh answers "what did the run add up to?" at dump time;
 * this layer answers "what is the *distribution*, right now?" cheaply
 * enough to sit on simulation hot paths (LLC miss latency, FSB batch
 * sizes, SPSC queue depth, per-cell wall time). The design is
 * thread-local, merged-on-snapshot:
 *
 *  - Registration (slow, mutex): counter()/histogram() validate the
 *    name, assign a dense id, and return a copyable handle. Names are
 *    dotted lower-case paths ("mem.miss_latency_cycles"), matching the
 *    StatsRegistry scheme; charset [a-z0-9_.], enforced here at
 *    runtime and by the cosim_analyze "metric-name" rule at review time.
 *    Registering a name twice panics -- call sites hold their handle
 *    in a function-local static so registration runs once per process.
 *
 *  - Recording (fast, lock-free): each thread lazily gets a private
 *    shard of plain atomics; add()/record() are a relaxed load of the
 *    enabled flag plus, when enabled, one or three relaxed fetch_adds
 *    into the calling thread's shard. No locks, no allocation, no
 *    false sharing with other threads' hot counters.
 *
 *  - Snapshot (slow, mutex): snapshot() sums every thread's shard into
 *    plain structs. Snapshot::delta() subtracts two snapshots so a
 *    sampler can poll at rate and publish per-interval values.
 *
 * Histograms bucket by log2: value v lands in bucket 0 when v == 0,
 * else bucket min(63, 1 + floor(log2(v))) -- so bucket i (i >= 1)
 * spans [2^(i-1), 2^i - 1] and its OpenMetrics `le` bound is 2^i - 1.
 * Two orders of magnitude of latency fit in ~7 buckets, which is the
 * right fidelity for "did the tail move?" questions.
 *
 * The registry is OFF by default: with no --metrics/--progress flag
 * every record path is one relaxed load and a predictable branch, so
 * artifacts stay bit-identical and MIPS stays within noise of a build
 * without telemetry (bench/microbench_mips.cc guards this).
 *
 * Exports: renderOpenMetrics() emits OpenMetrics text (dots become
 * underscores, a "cosim_" prefix is added, `# EOF` terminates);
 * statsGroup() bridges frozen totals into the StatsRegistry dumpers.
 */

#ifndef COSIM_OBS_METRICS_HH
#define COSIM_OBS_METRICS_HH

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "base/annotations.hh"
#include "base/mutex.hh"
#include "base/stats.hh"

namespace cosim {
namespace obs {
namespace metrics {

class Registry;

/** Buckets per histogram; bucket 63 absorbs everything >= 2^62. */
constexpr std::size_t kHistBuckets = 64;

/** Log2 bucket index for @p v (see file comment). */
inline unsigned
bucketIndex(std::uint64_t v)
{
    if (v == 0)
        return 0;
    unsigned idx = 64 - static_cast<unsigned>(__builtin_clzll(v));
    return idx < kHistBuckets ? idx
                              : static_cast<unsigned>(kHistBuckets - 1);
}

/** Inclusive upper bound of bucket @p i; bucket 63 is unbounded and
 * rendered as +Inf. */
inline std::uint64_t
bucketUpperBound(unsigned i)
{
    return i == 0 ? 0 : (std::uint64_t{1} << i) - 1;
}

/** Copyable handle to one registered counter. */
class Counter
{
  public:
    Counter() = default;

    /** Lock-free; no-op while the registry is disabled. */
    void add(std::uint64_t n = 1) const;
    void inc() const { add(1); }

  private:
    friend class Registry;
    Counter(Registry* reg, std::uint32_t id) : reg_(reg), id_(id) {}

    Registry* reg_ = nullptr;
    std::uint32_t id_ = 0;
};

/** Copyable handle to one registered histogram. */
class Histogram
{
  public:
    Histogram() = default;

    /** Lock-free; no-op while the registry is disabled. */
    void record(std::uint64_t value) const;

  private:
    friend class Registry;
    Histogram(Registry* reg, std::uint32_t id) : reg_(reg), id_(id) {}

    Registry* reg_ = nullptr;
    std::uint32_t id_ = 0;
};

/** Plain-struct view of every metric, merged across threads. */
struct Snapshot
{
    struct CounterValue
    {
        std::string name;
        std::string help;
        std::uint64_t value = 0;
    };

    struct HistogramValue
    {
        std::string name;
        std::string help;
        std::uint64_t count = 0;
        std::uint64_t sum = 0;
        std::array<std::uint64_t, kHistBuckets> buckets{};
    };

    std::vector<CounterValue> counters;
    std::vector<HistogramValue> histograms;

    /**
     * Per-interval view: @p now minus @p prev, matched by name.
     * Metrics absent from @p prev (registered since) keep their full
     * value. All metrics are monotone, so the result is never negative.
     */
    static Snapshot delta(const Snapshot& now, const Snapshot& prev);
};

/** See file comment. */
class Registry
{
  public:
    static constexpr std::size_t kMaxCounters = 256;
    static constexpr std::size_t kMaxHistograms = 64;

    /** The process-wide registry all instrumentation records into. */
    static Registry& global();

    Registry();
    ~Registry();

    Registry(const Registry&) = delete;
    Registry& operator=(const Registry&) = delete;

    /**
     * Register a counter. @p name must match [a-z][a-z0-9_.]* and be
     * new to this registry; violations panic (simulator bug).
     */
    Counter counter(const std::string& name, const std::string& help);

    /** Register a histogram; same naming contract as counter(). */
    Histogram histogram(const std::string& name, const std::string& help);

    /** Recording gate; disabled (the default) makes every handle
     * operation one relaxed load. */
    void setEnabled(bool on)
    {
        enabled_.store(on, std::memory_order_relaxed);
    }

    bool enabled() const
    {
        return enabled_.load(std::memory_order_relaxed);
    }

    /** Merge every thread's shard into plain values. */
    Snapshot snapshot() const EXCLUDES(mutex_);

    /** Zero every recorded value, keeping registrations (tests and
     * benchmarks; racing recorders may leak a few counts in). */
    void resetValues() EXCLUDES(mutex_);

    /** Registered metric count (counters + histograms). */
    std::size_t size() const EXCLUDES(mutex_);

    /**
     * Frozen totals as a stats::Group named @p name: "<counter>" for
     * counters, "<hist>.count" / "<hist>.sum" / "<hist>.mean" for
     * histograms -- how distributions reach the JSON/CSV/text dumpers.
     */
    stats::Group statsGroup(const std::string& name = "metrics") const;

  private:
    friend class Counter;
    friend class Histogram;

    struct Shard;
    struct Meta
    {
        std::string name;
        std::string help;
    };

    Shard& localShard();
    Shard& localShardSlow();
    void validateName(const std::string& name) const REQUIRES(mutex_);

    const std::uint64_t uid_; ///< distinguishes reincarnated addresses
    std::atomic<bool> enabled_{false};

    mutable Mutex mutex_;
    std::vector<Meta> counters_ GUARDED_BY(mutex_);
    std::vector<Meta> histograms_ GUARDED_BY(mutex_);
    std::vector<std::unique_ptr<Shard>> shards_ GUARDED_BY(mutex_);
};

/** True when the process-wide registry is recording. */
inline bool
enabled()
{
    return Registry::global().enabled();
}

inline void
setEnabled(bool on)
{
    Registry::global().setEnabled(on);
}

/** Register on the process-wide registry. Call once and keep the
 * handle (idiomatically in a function-local static at the use site). */
Counter counter(const std::string& name, const std::string& help);
Histogram histogram(const std::string& name, const std::string& help);

/**
 * Render @p snap in OpenMetrics text format: "cosim_" prefix, dots
 * mapped to underscores, `# TYPE`/`# HELP` per family, `_total`
 * samples for counters, cumulative `_bucket{le="..."}` plus `_sum` and
 * `_count` for histograms, and a final `# EOF` line.
 */
std::string renderOpenMetrics(const Snapshot& snap);

} // namespace metrics
} // namespace obs
} // namespace cosim

#endif // COSIM_OBS_METRICS_HH
