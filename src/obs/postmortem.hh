/**
 * @file
 * postmortem.json: an explained failure next to run.json.
 *
 * Whenever a sweep cell fails, times out, or a fatal() fires, the
 * harness calls writePostmortem() to drop a machine-readable corpse
 * beside the run artifacts:
 *
 *   {
 *     "schema": "cosim-postmortem/1",
 *     "t_us": <host clock>,
 *     "reason": "cell_failed" | "cell_killed" | "fatal",
 *     "cell": "<label>",          // empty outside cell context
 *     "attempt": <n>,
 *     "error": "<message>",
 *     "signal": "SIGSEGV",        // empty unless a child was killed
 *     "stderr_tail": "...",       // dead child's captured stderr
 *     "fault_sites": [{"site","hits","fired","armed"}, ...],
 *     "threads": [{"label", "events": [...]}, ...]
 *   }
 *
 * "fault_sites" snapshots the fault injector so an injected failure
 * names the site that fired; "threads" is the flight recorder's
 * per-thread event history (base/flight_recorder.hh), so the file says
 * not just *that* a worker died but what it was chewing on.
 *
 * The write goes through writeFileAtomic but is deliberately
 * best-effort: a post-mortem must never turn one failure into two, so
 * I/O errors are warned and swallowed. Repeated failures (retries,
 * --keep-going) overwrite: the file describes the most recent failure.
 *
 * installFatalPostmortem() arms a base/logging.hh fatal hook so even
 * failures that bypass cell isolation (an artifact writer calling
 * fatal(), e.g. under io.write.fail) leave a postmortem behind.
 */

#ifndef COSIM_OBS_POSTMORTEM_HH
#define COSIM_OBS_POSTMORTEM_HH

#include <string>

namespace cosim {
namespace obs {

/** What failed; everything may be empty except @p reason. */
struct PostmortemInfo
{
    std::string reason; ///< "cell_failed", "cell_killed", "fatal", ...
    std::string cell;   ///< failing cell label, when in cell context
    unsigned attempt = 0;
    std::string error;  ///< the exception / fatal message
    /** Decoded signal that killed an isolated cell's child process
     * ("SIGSEGV"; "SIGKILL" for the silence watchdog); empty for
     * in-process failures. */
    std::string signalName;
    /** Captured tail of the dead child's stderr. */
    std::string stderrTail;
};

/** Render the postmortem JSON body (exposed for tests). */
std::string renderPostmortem(const PostmortemInfo& info);

/**
 * Atomically write postmortem.json at @p path. @return false (after
 * a warn) when the write fails; never throws.
 */
bool writePostmortem(const std::string& path, const PostmortemInfo& info);

/**
 * Route fatal() through a postmortem dump to @p path before the
 * process exits; an empty path uninstalls the hook.
 */
void installFatalPostmortem(const std::string& path);

/**
 * Remember the cell a thread is about to run, so a fatal() that fires
 * inside it (or right after, in an artifact writer) is attributed.
 * Best-effort under parallel cells: the most recent caller wins.
 */
void setPostmortemContext(const std::string& cell, unsigned attempt);

} // namespace obs
} // namespace cosim

#endif // COSIM_OBS_POSTMORTEM_HH
