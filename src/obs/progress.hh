/**
 * @file
 * Live sweep progress: heartbeats, a TTY view, and progress.jsonl.
 *
 * A multi-hour sweep must be observable while it runs and diagnosable
 * after it is killed. Three cooperating pieces:
 *
 *  - CellWatch / HeartbeatSlot: the producer side. Simulation threads
 *    publish liveness with relaxed atomic stores only -- the DEX
 *    scheduler beats once per time slice (every 50k-instruction
 *    quantum), the emulator bank publishes queue depth, the platform
 *    beats across setup/run boundaries. No locks, no I/O, no
 *    allocation on any workload thread; acceptance for --progress is
 *    that it adds *no blocking I/O* to workload threads.
 *
 *  - SweepProgress: the consumer side. One sampler thread polls every
 *    slot at a fixed period, derives per-cell MIPS from deltas,
 *    renders a one-line-per-cell live view to stderr (--progress;
 *    ANSI redraw on a TTY, plain appended lines otherwise), and
 *    appends machine-readable events to progress.jsonl
 *    (--progress-file). Cell lifecycle events (start/retry/fault/
 *    finish) are enqueued by the sweep threads as preformatted
 *    strings under a brief mutex and written out by the sampler, so
 *    file I/O never happens on a thread that runs simulation.
 *
 *  - ProgressStream: the JSONL appender. Every line is one complete
 *    JSON object `{"seq":N,"t_us":T,"event":"...",...}` written and
 *    flushed through base/atomic_file.hh's AppendFile, so the on-disk
 *    file is always well-formed line-by-line with densely increasing
 *    seq -- the wire format a future sweep service consumes, and what
 *    `cosim_inspect progress` validates in CI.
 *
 * Event vocabulary (all carry "seq" and "t_us"):
 *   sweep_start  figure, cells
 *   cell_start   cell, attempt
 *   cell_spawn   cell, pid          (--isolate-cells child forked)
 *   heartbeat    cell, quanta, insts, sim_ms, mips, queue_peak
 *   cell_retry   cell, attempt, error
 *   cell_kill    cell, pid, reason  (child shot by signal/watchdog)
 *   fault        cell, site, hit
 *   resume_skip  cell               (--resume verified + skipped it)
 *   cell_finish  cell, status ("ok"|"failed"), wall_s [, error]
 *   sweep_finish ok, failed
 *
 * CellWatch additionally powers --cell-timeout: the watchdog question
 * changes from "did the cell take too long?" to "has the cell been
 * *silent* too long?", so a slow but heartbeating cell is never
 * killed while a wedged one still is (see harness/sweep_runner.cc).
 */

#ifndef COSIM_OBS_PROGRESS_HH
#define COSIM_OBS_PROGRESS_HH

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "base/annotations.hh"
#include "base/atomic_file.hh"
#include "base/host_clock.hh"
#include "base/mutex.hh"

namespace cosim {
namespace obs {

/** Raise @p a to at least @p v (relaxed; monotone values only). */
inline void
atomicMax(std::atomic<std::uint64_t>& a, std::uint64_t v)
{
    std::uint64_t cur = a.load(std::memory_order_relaxed);
    while (cur < v &&
           !a.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
}

/**
 * Liveness watchdog for one cell attempt: tracks the largest gap
 * between consecutive beats. Timestamps are explicit parameters
 * (defaulting to the shared host clock) so the gap logic is unit
 * testable without sleeping.
 */
class CellWatch
{
  public:
    /** Reset for a fresh attempt; the attempt start counts as a beat. */
    void
    beginAttempt(std::uint64_t now_us = hostClockNowUs())
    {
        maxGapUs_.store(0, std::memory_order_relaxed);
        lastBeatUs_.store(now_us, std::memory_order_relaxed);
        beats_.store(0, std::memory_order_relaxed);
    }

    void
    beat(std::uint64_t now_us = hostClockNowUs())
    {
        std::uint64_t prev =
            lastBeatUs_.exchange(now_us, std::memory_order_relaxed);
        if (now_us > prev)
            atomicMax(maxGapUs_, now_us - prev);
        beats_.fetch_add(1, std::memory_order_relaxed);
    }

    /**
     * Forget the still-open gap: move the last-beat watermark to
     * @p now_us without recording the silence since the previous
     * beat. Callers use this to exclude a setup phase whose wall
     * time is accounted for elsewhere (per-cell rig construction,
     * timed by sweep.cell_setup_ms) from the liveness measurement;
     * gaps closed before the phase began stay recorded.
     */
    void
    skipGap(std::uint64_t now_us = hostClockNowUs())
    {
        lastBeatUs_.store(now_us, std::memory_order_relaxed);
    }

    /**
     * Largest silence so far, including the still-open gap from the
     * last beat to @p now_us. This is what --cell-timeout compares
     * against: a cell that keeps beating keeps this small no matter
     * how long it runs in total.
     */
    std::uint64_t
    maxGapUs(std::uint64_t now_us = hostClockNowUs()) const
    {
        std::uint64_t last = lastBeatUs_.load(std::memory_order_relaxed);
        std::uint64_t open = now_us > last ? now_us - last : 0;
        std::uint64_t closed =
            maxGapUs_.load(std::memory_order_relaxed);
        return open > closed ? open : closed;
    }

    std::uint64_t
    beats() const
    {
        return beats_.load(std::memory_order_relaxed);
    }

  private:
    std::atomic<std::uint64_t> lastBeatUs_{0};
    std::atomic<std::uint64_t> maxGapUs_{0};
    std::atomic<std::uint64_t> beats_{0};
};

/**
 * What one running cell publishes: progress counters plus the
 * watchdog. All stores relaxed; the sampler and the timeout check are
 * the only readers.
 */
class HeartbeatSlot
{
  public:
    /** One simulation quantum finished: @p insts instructions covering
     * @p sim_ns of simulated time. */
    void
    beat(std::uint64_t insts, std::uint64_t sim_ns,
         std::uint64_t now_us = hostClockNowUs())
    {
        quanta_.fetch_add(1, std::memory_order_relaxed);
        insts_.fetch_add(insts, std::memory_order_relaxed);
        simNs_.fetch_add(sim_ns, std::memory_order_relaxed);
        watch_.beat(now_us);
        if (pipeFd_.load(std::memory_order_relaxed) >= 0)
            maybePipe(now_us);
    }

    /** Liveness-only beat (setup phases, drain barriers). */
    void
    pulse(std::uint64_t now_us = hostClockNowUs())
    {
        watch_.beat(now_us);
        if (pipeFd_.load(std::memory_order_relaxed) >= 0)
            maybePipe(now_us);
    }

    /**
     * Forward beats as rate-limited one-byte writes into pipe @p fd
     * (an isolated cell publishing liveness to its parent; see
     * base/subprocess.hh). The fd is made non-blocking: a full pipe
     * drops the beat rather than stalling a simulation thread, which
     * keeps the no-blocking-I/O guarantee. At most one write per
     * @p min_interval_us.
     */
    void bindPipe(int fd, std::uint64_t min_interval_us = 100000);

    /** Emulator-bank SPSC depth observed after a chunk was queued. */
    void
    noteQueueDepth(std::uint64_t depth)
    {
        atomicMax(queuePeak_, depth);
    }

    std::uint64_t
    quanta() const
    {
        return quanta_.load(std::memory_order_relaxed);
    }

    std::uint64_t
    insts() const
    {
        return insts_.load(std::memory_order_relaxed);
    }

    std::uint64_t
    simNs() const
    {
        return simNs_.load(std::memory_order_relaxed);
    }

    std::uint64_t
    queuePeak() const
    {
        return queuePeak_.load(std::memory_order_relaxed);
    }

    CellWatch& watch() { return watch_; }
    const CellWatch& watch() const { return watch_; }

  private:
    /** Slow path of the pipe forwarding; out of line to keep OS
     * headers out of this header. */
    void maybePipe(std::uint64_t now_us);

    std::atomic<std::uint64_t> quanta_{0};
    std::atomic<std::uint64_t> insts_{0};
    std::atomic<std::uint64_t> simNs_{0};
    std::atomic<std::uint64_t> queuePeak_{0};
    std::atomic<int> pipeFd_{-1};
    std::atomic<std::uint64_t> pipeIntervalUs_{0};
    std::atomic<std::uint64_t> lastPipeUs_{0};
    CellWatch watch_;
};

/** JSONL event appender; see the file comment for the line shape. */
class ProgressStream
{
  public:
    /** Creates/truncates @p path. @throws IoError when it cannot. */
    explicit ProgressStream(const std::string& path);

    /**
     * Append one event line. @p json_fields is a preformatted JSON
     * fragment ('"cell":"PLSA",...', possibly empty); seq and t_us are
     * added here so numbering stays dense under concurrency. A failed
     * write warns once and turns further emits into no-ops.
     */
    void emit(const std::string& event, const std::string& json_fields)
        EXCLUDES(mutex_);

    const std::string& path() const { return file_.path(); }

  private:
    mutable Mutex mutex_;
    AppendFile file_ GUARDED_BY(mutex_);
    std::uint64_t seq_ GUARDED_BY(mutex_) = 0;
    bool failed_ GUARDED_BY(mutex_) = false;
};

/** See file comment. */
class SweepProgress
{
  public:
    struct Options
    {
        bool tty = false;         ///< render the live stderr view
        std::string file;         ///< progress.jsonl path ("" = off)
        double periodSeconds = 0.25; ///< sampler tick
    };

    explicit SweepProgress(const Options& opts);
    ~SweepProgress();

    SweepProgress(const SweepProgress&) = delete;
    SweepProgress& operator=(const SweepProgress&) = delete;

    /** True when any output (TTY or file) is configured. */
    bool active() const { return opts_.tty || stream_ != nullptr; }

    /**
     * Register a cell; the returned index addresses it from then on.
     * Safe while the sampler runs (entries live in a deque).
     */
    std::size_t addCell(const std::string& label) EXCLUDES(mutex_);

    /** The slot cell @p idx's simulation threads publish into. */
    HeartbeatSlot* slot(std::size_t idx) EXCLUDES(mutex_);

    void cellStarted(std::size_t idx, unsigned attempt) EXCLUDES(mutex_);
    /** An --isolate-cells child was forked for this cell. */
    void cellSpawned(std::size_t idx, int pid) EXCLUDES(mutex_);
    void cellRetried(std::size_t idx, unsigned attempt,
                     const std::string& error) EXCLUDES(mutex_);
    /** The child was shot (crash signal or silence watchdog). */
    void cellKilled(std::size_t idx, int pid, const std::string& reason)
        EXCLUDES(mutex_);
    void cellFault(std::size_t idx, const std::string& site,
                   std::uint64_t hit) EXCLUDES(mutex_);
    /** --resume verified this cell's artifact and skipped re-running
     * it; marks the row finished-ok. */
    void cellResumeSkipped(std::size_t idx) EXCLUDES(mutex_);
    void cellFinished(std::size_t idx, bool ok, double wall_seconds,
                      const std::string& error) EXCLUDES(mutex_);

    /** Enqueue a non-cell event (sweep_start / sweep_finish). */
    void event(const std::string& event, const std::string& json_fields)
        EXCLUDES(mutex_);

    /** Launch the sampler thread (no-op unless active()). */
    void start();

    /**
     * Stop the sampler, drain queued events to the stream, and render
     * a final view. Idempotent; the destructor calls it too.
     */
    void stop();

  private:
    enum class CellState { Pending, Running, Ok, Failed };

    struct CellEntry
    {
        std::string label;
        HeartbeatSlot slot;
        std::atomic<CellState> state{CellState::Pending};
        // Sampler-private delta state (only the sampler thread reads
        // or writes these):
        std::uint64_t lastInsts = 0;
        std::uint64_t lastTickUs = 0;
        double lastMips = 0.0;
    };

    void samplerLoop();
    void drainEvents() EXCLUDES(mutex_);
    void enqueue(const std::string& event, const std::string& fields)
        EXCLUDES(mutex_);
    void
    enqueueLocked(const std::string& event, const std::string& fields)
        REQUIRES(mutex_)
    {
        if (stream_ != nullptr)
            pending_.push_back(PendingEvent{event, fields});
    }
    /** One sampler pass: read slots, stream heartbeats, render TTY. */
    void tick(bool emit_heartbeats) EXCLUDES(mutex_);
    std::size_t cellCount() const EXCLUDES(mutex_);

    Options opts_;
    std::unique_ptr<ProgressStream> stream_;

    mutable Mutex mutex_;
    // Deque: slot() pointers stay valid as cells are added.
    std::deque<CellEntry> cells_ GUARDED_BY(mutex_);
    struct PendingEvent
    {
        std::string event;
        std::string fields;
    };
    std::vector<PendingEvent> pending_ GUARDED_BY(mutex_);

    std::atomic<bool> stop_{false};
    std::thread sampler_;
    bool started_ = false;
    unsigned renderedLines_ = 0; ///< sampler/stop thread only
};

} // namespace obs
} // namespace cosim

#endif // COSIM_OBS_PROGRESS_HH
