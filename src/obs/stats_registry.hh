/**
 * @file
 * Process-wide statistics registry.
 *
 * Components keep exposing their counters exactly as before; what was
 * missing is one place that knows about *all* of them. A `StatsRegistry`
 * owns a set of `stats::Group`s (each component contributes one via its
 * `addStats()` hook) and renders the whole collection uniformly as text
 * ("component.stat value" lines), JSON, or CSV -- replacing the ad-hoc
 * per-component printf dumps the benches used to hand-roll.
 *
 * Naming scheme: group names are dotted component paths ("cpu0.l1",
 * "dragonhead0.llc.cc2", "dram"), stat names are bare ("misses"); the
 * rendered key is "<group>.<stat>".
 *
 * Registered groups hold lazily evaluated formulas that reference the
 * owning component, so a registry snapshot is only valid while those
 * components are alive. Re-registering a group name replaces the old
 * group, which makes per-run re-registration idempotent.
 *
 * Registration and dumping are mutex-protected so parallel sweep cells
 * can register concurrently; the *formulas themselves* still read
 * component state unlocked, so dump only while the components are quiet.
 *
 * Locking is striped: groups spread across 16 shards by a hash of
 * their name, so a --jobs=N sweep whose cells snapshot hundreds of
 * per-cell namespaces concurrently contends on different mutexes
 * instead of serializing on one (bench/microbench_mips.cc measures
 * the registration path). Every group carries a global registration
 * sequence number and all dumps sort by it, so output order is
 * exactly the registration order the single-mutex registry produced.
 */

#ifndef COSIM_OBS_STATS_REGISTRY_HH
#define COSIM_OBS_STATS_REGISTRY_HH

#include <atomic>
#include <cstdint>
#include <deque>
#include <string>
#include <utility>
#include <vector>

#include "base/annotations.hh"
#include "base/mutex.hh"
#include "base/stats.hh"

namespace cosim {
namespace obs {

/** See file comment. */
class StatsRegistry
{
  public:
    /** The process-wide registry (benches and examples share it). */
    static StatsRegistry& global();

    /**
     * Take ownership of @p group. A group with the same name is
     * replaced. @return a stable reference to the stored group.
     */
    stats::Group& add(stats::Group group);

    /** Convenience: create an empty group named @p name and return it. */
    stats::Group& makeGroup(const std::string& name);

    /**
     * Copy every group of @p src into this registry under
     * "<prefix><group>", with every stat frozen to its current value.
     * This is how parallel sweep cells coexist: each cell registers its
     * rig into a private registry, then snapshots it into the global
     * one under "cell/<workload>/<config>/" -- the frozen values stay
     * correct after the cell's components are reset or destroyed.
     */
    void addSnapshotOf(const StatsRegistry& src, const std::string& prefix);

    /** Drop every registered group. */
    void clear();

    /**
     * Drop every group whose name starts with @p prefix; @return how
     * many were removed. A failed sweep cell's "cell/<workload>/..."
     * namespace is erased with this so the registry never holds a
     * half-populated cell. Invalidates references returned by add()
     * for the removed groups (callers only use those transiently).
     */
    std::size_t removePrefix(const std::string& prefix);

    std::size_t size() const;

    /** Registered group names, in registration order. */
    std::vector<std::string> groupNames() const;

    /** Lookup by name; nullptr when absent. */
    const stats::Group* find(const std::string& name) const;

    /** Every stat of every group as "group.stat value" lines. */
    std::string dumpText() const;

    /** One JSON object: {"group": {"stat": value, ...}, ...}. */
    std::string dumpJson() const;

    /** CSV with a "stat,value" header, one row per stat. */
    std::string dumpCsv() const;

    /**
     * Write a dump to @p path, picking the format from the extension
     * (".json" / ".csv", anything else is text). fatal() on I/O error.
     */
    void writeFile(const std::string& path) const;

  private:
    struct Entry
    {
        std::uint64_t order; ///< global registration sequence
        stats::Group group;
    };

    /** One lock stripe; see the file comment. */
    struct Shard
    {
        mutable Mutex mutex;
        // Deque: references returned by add() stay valid as entries
        // are added to the shard.
        std::deque<Entry> groups GUARDED_BY(mutex);
    };

    static constexpr std::size_t kShards = 16;

    Shard& shardFor(const std::string& name);
    const Shard& shardFor(const std::string& name) const;

    /** One group's stats frozen to values, for order-sorted dumps. */
    struct FrozenGroup
    {
        std::uint64_t order = 0;
        std::string name;
        std::vector<std::pair<std::string, double>> stats;
    };

    /** Evaluate every group (per-shard locking), registration-sorted. */
    std::vector<FrozenGroup> collectAll() const;

    Shard shards_[kShards];
    std::atomic<std::uint64_t> nextOrder_{0};
};

} // namespace obs
} // namespace cosim

#endif // COSIM_OBS_STATS_REGISTRY_HH
