#include "cache/hierarchy.hh"

#include "base/logging.hh"

namespace cosim {

PrivateHierarchy::PrivateHierarchy(const HierarchyParams& params)
    : l1_(params.l1)
{
    if (params.hasL2) {
        fatal_if(params.l2.lineSize < params.l1.lineSize,
                 "L2 line (%u) smaller than L1 line (%u)",
                 params.l2.lineSize, params.l1.lineSize);
        l2_ = std::make_unique<Cache>(params.l2);
    }
}

Cache&
PrivateHierarchy::l2()
{
    panic_if(l2_ == nullptr, "hierarchy has no L2");
    return *l2_;
}

const Cache&
PrivateHierarchy::l2() const
{
    panic_if(l2_ == nullptr, "hierarchy has no L2");
    return *l2_;
}

std::uint32_t
PrivateHierarchy::busLineSize() const
{
    return l2_ ? l2_->params().lineSize : l1_.params().lineSize;
}

PrivateHierarchy::Result
PrivateHierarchy::access(Addr addr, bool write)
{
    Result result;

    Cache::Outcome l1_out = l1_.access(addr, write);
    if (l1_out.hit) {
        result.servicedBy = ServiceLevel::L1;
        return result;
    }

    // L1 victim writeback goes to L2 if present, else to the bus.
    std::optional<Addr> l1_victim;
    if (l1_out.evicted && l1_out.evictedDirty)
        l1_victim = l1_out.victimAddr;

    if (!l2_) {
        result.servicedBy = ServiceLevel::Beyond;
        result.fetchLine = l1_.lineAddr(addr);
        if (l1_victim)
            result.addWriteback(*l1_victim);
        return result;
    }

    // The L1 miss becomes an L2 read (the L1 is fetching the line; a
    // store miss still reads the line first under write-allocate).
    Cache::Outcome l2_out = l2_->access(addr, false);
    if (l2_out.evicted && l2_out.evictedDirty)
        result.addWriteback(l2_out.victimAddr);

    // Retire the L1 victim into the L2 as a dirty line. This models the
    // victim staying on chip; it may itself evict from the L2.
    if (l1_victim) {
        Cache::Outcome wb_out = l2_->access(*l1_victim, true);
        if (wb_out.evicted && wb_out.evictedDirty)
            result.addWriteback(wb_out.victimAddr);
    }

    if (l2_out.hit) {
        result.servicedBy = ServiceLevel::L2;
        result.l2PrefetchHit = l2_out.firstHitOnPrefetch;
        return result;
    }

    result.servicedBy = ServiceLevel::Beyond;
    result.fetchLine = l2_->lineAddr(addr);
    return result;
}

bool
PrivateHierarchy::prefetchFill(Addr addr)
{
    if (l2_)
        return l2_->prefetchFill(addr);
    return l1_.prefetchFill(addr);
}

void
PrivateHierarchy::flush()
{
    l1_.flush();
    if (l2_)
        l2_->flush();
}

void
PrivateHierarchy::resetStats()
{
    l1_.resetStats();
    if (l2_)
        l2_->resetStats();
}

} // namespace cosim
