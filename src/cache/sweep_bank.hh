/**
 * @file
 * Simultaneous simulation of many cache configurations from one stream.
 *
 * Dragonhead parallelized its emulation across four CC FPGAs; the
 * software analogue is to evaluate an entire parameter sweep (e.g. all
 * seven LLC sizes of Figure 4) against a single execution of the
 * workload. Each configured cache sees the identical access stream;
 * because the emulation is passive, the results are exactly what K
 * independent runs would produce.
 */

#ifndef COSIM_CACHE_SWEEP_BANK_HH
#define COSIM_CACHE_SWEEP_BANK_HH

#include <memory>
#include <vector>

#include "cache/cache.hh"

namespace cosim {

/** A bank of independently configured caches fed by one stream. */
class CacheSweepBank
{
  public:
    CacheSweepBank() = default;

    /** Add one configuration; returns its index in results(). */
    std::size_t addConfig(const CacheParams& params);

    /** Feed one line-contained access to every cache in the bank. */
    void access(Addr addr, bool write);

    std::size_t size() const { return caches_.size(); }

    const Cache& cacheAt(std::size_t i) const { return *caches_.at(i); }

    /** Per-configuration miss counts, in addConfig() order. */
    std::vector<std::uint64_t> missCounts() const;

    /** Per-configuration miss rates, in addConfig() order. */
    std::vector<double> missRates() const;

    void resetStats();

  private:
    std::vector<std::unique_ptr<Cache>> caches_;
};

} // namespace cosim

#endif // COSIM_CACHE_SWEEP_BANK_HH
