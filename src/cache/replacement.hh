/**
 * @file
 * Replacement policies for the set-associative cache model.
 *
 * Dragonhead implemented LRU; the other policies exist for the ablation
 * study (bench/ablation_cache) and for validating the cache model against
 * known analytic properties (e.g. LRU's stack/inclusion property).
 */

#ifndef COSIM_CACHE_REPLACEMENT_HH
#define COSIM_CACHE_REPLACEMENT_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace cosim {

/** Selector for the replacement policy of a cache. */
enum class ReplPolicy : std::uint8_t {
    LRU,      ///< least recently used (what Dragonhead emulates)
    FIFO,     ///< first in, first out
    Random,   ///< pseudo-random (deterministic xorshift)
    TreePLRU, ///< tree pseudo-LRU (requires power-of-two ways)
    NRU,      ///< not-recently-used single reference bit
};

/** Parse "lru"/"fifo"/"random"/"plru"/"nru"; fatal() on anything else. */
ReplPolicy parseReplPolicy(const std::string& name);

/** Stable lowercase name of a policy. */
const char* toString(ReplPolicy p);

/**
 * Raw window into an LRU policy's recency state, letting the cache's
 * inlined hit fast path apply the touch (stamps[set*ways+way] = ++clock)
 * without a virtual call per hit. Null pointers mean the policy does not
 * support direct touching and the caller must use the virtual interface.
 */
struct LruDirectView
{
    std::uint64_t* stamps = nullptr; ///< sets*ways recency stamps
    std::uint64_t* clock = nullptr;  ///< global access clock
};

/**
 * Per-cache replacement state. The cache calls touch() on hits, fill() on
 * insertions, and victim() when it must evict from a full set.
 */
class ReplacementState
{
  public:
    virtual ~ReplacementState() = default;

    /** An access hit (set, way). */
    virtual void touch(std::uint32_t set, std::uint32_t way) = 0;

    /** A new line was installed in (set, way). */
    virtual void fill(std::uint32_t set, std::uint32_t way) = 0;

    /** Choose the way to evict from a full @p set. */
    virtual std::uint32_t victim(std::uint32_t set) = 0;

    /** Policy identity. */
    virtual ReplPolicy policy() const = 0;

    /**
     * De-virtualized touch support. The default (no view) keeps every
     * policy correct through the virtual interface; LRU overrides it so
     * the dominant L1-hit path can skip the dispatch.
     */
    virtual LruDirectView lruDirect() { return {}; }

    /** Factory. @p ways must be a power of two for TreePLRU. */
    static std::unique_ptr<ReplacementState>
    create(ReplPolicy p, std::uint32_t sets, std::uint32_t ways);
};

} // namespace cosim

#endif // COSIM_CACHE_REPLACEMENT_HH
