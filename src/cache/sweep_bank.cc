#include "cache/sweep_bank.hh"

namespace cosim {

std::size_t
CacheSweepBank::addConfig(const CacheParams& params)
{
    caches_.push_back(std::make_unique<Cache>(params));
    return caches_.size() - 1;
}

void
CacheSweepBank::access(Addr addr, bool write)
{
    for (auto& cache : caches_)
        cache->access(addr, write);
}

std::vector<std::uint64_t>
CacheSweepBank::missCounts() const
{
    std::vector<std::uint64_t> out;
    out.reserve(caches_.size());
    for (const auto& cache : caches_)
        out.push_back(cache->stats().misses);
    return out;
}

std::vector<double>
CacheSweepBank::missRates() const
{
    std::vector<double> out;
    out.reserve(caches_.size());
    for (const auto& cache : caches_)
        out.push_back(cache->stats().missRate());
    return out;
}

void
CacheSweepBank::resetStats()
{
    for (auto& cache : caches_)
        cache->resetStats();
}

} // namespace cosim
