#include "cache/replacement.hh"

#include <algorithm>

#include "base/bitops.hh"
#include "base/logging.hh"
#include "base/str.hh"

namespace cosim {

ReplPolicy
parseReplPolicy(const std::string& name)
{
    std::string n = toLower(name);
    if (n == "lru")
        return ReplPolicy::LRU;
    if (n == "fifo")
        return ReplPolicy::FIFO;
    if (n == "random")
        return ReplPolicy::Random;
    if (n == "plru" || n == "treeplru" || n == "tree-plru")
        return ReplPolicy::TreePLRU;
    if (n == "nru")
        return ReplPolicy::NRU;
    fatal("unknown replacement policy '%s'", name.c_str());
}

const char*
toString(ReplPolicy p)
{
    switch (p) {
      case ReplPolicy::LRU:
        return "lru";
      case ReplPolicy::FIFO:
        return "fifo";
      case ReplPolicy::Random:
        return "random";
      case ReplPolicy::TreePLRU:
        return "plru";
      case ReplPolicy::NRU:
        return "nru";
    }
    return "?";
}

namespace {

/**
 * Timestamp-based state shared by LRU and FIFO: LRU refreshes the stamp
 * on every touch, FIFO only stamps at fill time.
 */
class StampState : public ReplacementState
{
  public:
    StampState(ReplPolicy p, std::uint32_t sets, std::uint32_t ways)
        : policy_(p), ways_(ways),
          stamps_(static_cast<std::size_t>(sets) * ways, 0)
    {}

    void
    touch(std::uint32_t set, std::uint32_t way) override
    {
        if (policy_ == ReplPolicy::LRU)
            stamps_[idx(set, way)] = ++clock_;
    }

    void
    fill(std::uint32_t set, std::uint32_t way) override
    {
        stamps_[idx(set, way)] = ++clock_;
    }

    std::uint32_t
    victim(std::uint32_t set) override
    {
        std::size_t base = static_cast<std::size_t>(set) * ways_;
        std::uint32_t best = 0;
        std::uint64_t best_stamp = stamps_[base];
        for (std::uint32_t w = 1; w < ways_; ++w) {
            if (stamps_[base + w] < best_stamp) {
                best_stamp = stamps_[base + w];
                best = w;
            }
        }
        return best;
    }

    ReplPolicy policy() const override { return policy_; }

    LruDirectView
    lruDirect() override
    {
        // Only LRU touches on hits; FIFO's stamps move at fill time
        // alone, so exposing them would let the fast path corrupt the
        // insertion order.
        if (policy_ != ReplPolicy::LRU)
            return {};
        return LruDirectView{stamps_.data(), &clock_};
    }

  private:
    std::size_t
    idx(std::uint32_t set, std::uint32_t way) const
    {
        return static_cast<std::size_t>(set) * ways_ + way;
    }

    ReplPolicy policy_;
    std::uint32_t ways_;
    std::uint64_t clock_ = 0;
    std::vector<std::uint64_t> stamps_;
};

/** Deterministic pseudo-random victim selection. */
class RandomState : public ReplacementState
{
  public:
    RandomState(std::uint32_t ways) : ways_(ways) {}

    void touch(std::uint32_t, std::uint32_t) override {}
    void fill(std::uint32_t, std::uint32_t) override {}

    std::uint32_t
    victim(std::uint32_t set) override
    {
        // xorshift64*, perturbed by the set index for spatial variety.
        state_ ^= state_ >> 12;
        state_ ^= state_ << 25;
        state_ ^= state_ >> 27;
        std::uint64_t r = (state_ + set) * 0x2545f4914f6cdd1dull;
        return static_cast<std::uint32_t>(r % ways_);
    }

    ReplPolicy policy() const override { return ReplPolicy::Random; }

  private:
    std::uint32_t ways_;
    std::uint64_t state_ = 0x853c49e6748fea9bull;
};

/** Classic tree pseudo-LRU over a power-of-two number of ways. */
class TreePlruState : public ReplacementState
{
  public:
    TreePlruState(std::uint32_t sets, std::uint32_t ways)
        : ways_(ways), levels_(floorLog2(ways)),
          bits_(static_cast<std::size_t>(sets) * (ways - 1), 0)
    {
        fatal_if(!isPowerOf2(ways), "TreePLRU requires power-of-two ways");
        fatal_if(ways < 2, "TreePLRU requires at least 2 ways");
    }

    void
    touch(std::uint32_t set, std::uint32_t way) override
    {
        setPath(set, way);
    }

    void
    fill(std::uint32_t set, std::uint32_t way) override
    {
        setPath(set, way);
    }

    std::uint32_t
    victim(std::uint32_t set) override
    {
        std::size_t base = static_cast<std::size_t>(set) * (ways_ - 1);
        std::uint32_t node = 0;
        for (unsigned level = 0; level < levels_; ++level) {
            bool right = bits_[base + node] != 0;
            node = 2 * node + 1 + (right ? 1 : 0);
        }
        return node - (ways_ - 1);
    }

    ReplPolicy policy() const override { return ReplPolicy::TreePLRU; }

  private:
    /** Point every tree node on the way's path *away* from the way. */
    void
    setPath(std::uint32_t set, std::uint32_t way)
    {
        std::size_t base = static_cast<std::size_t>(set) * (ways_ - 1);
        std::uint32_t node = way + (ways_ - 1);
        while (node != 0) {
            std::uint32_t parent = (node - 1) / 2;
            bool came_from_right = (node == 2 * parent + 2);
            bits_[base + parent] = came_from_right ? 0 : 1;
            node = parent;
        }
    }

    std::uint32_t ways_;
    unsigned levels_;
    std::vector<std::uint8_t> bits_;
};

/** Not-recently-used: one reference bit per line. */
class NruState : public ReplacementState
{
  public:
    NruState(std::uint32_t sets, std::uint32_t ways)
        : ways_(ways), refBits_(static_cast<std::size_t>(sets) * ways, 0)
    {}

    void
    touch(std::uint32_t set, std::uint32_t way) override
    {
        mark(set, way);
    }

    void
    fill(std::uint32_t set, std::uint32_t way) override
    {
        mark(set, way);
    }

    std::uint32_t
    victim(std::uint32_t set) override
    {
        std::size_t base = static_cast<std::size_t>(set) * ways_;
        for (std::uint32_t w = 0; w < ways_; ++w) {
            if (refBits_[base + w] == 0)
                return w;
        }
        // All referenced: clear the epoch and evict way 0.
        std::fill_n(refBits_.begin() + static_cast<std::ptrdiff_t>(base),
                    ways_, std::uint8_t{0});
        return 0;
    }

    ReplPolicy policy() const override { return ReplPolicy::NRU; }

  private:
    void
    mark(std::uint32_t set, std::uint32_t way)
    {
        std::size_t base = static_cast<std::size_t>(set) * ways_;
        refBits_[base + way] = 1;
        // If marking filled the set, age everyone else so victims exist.
        bool all = true;
        for (std::uint32_t w = 0; w < ways_; ++w) {
            if (refBits_[base + w] == 0) {
                all = false;
                break;
            }
        }
        if (all) {
            for (std::uint32_t w = 0; w < ways_; ++w)
                if (w != way)
                    refBits_[base + w] = 0;
        }
    }

    std::uint32_t ways_;
    std::vector<std::uint8_t> refBits_;
};

} // namespace

std::unique_ptr<ReplacementState>
ReplacementState::create(ReplPolicy p, std::uint32_t sets,
                         std::uint32_t ways)
{
    fatal_if(sets == 0 || ways == 0, "cache must have sets and ways");
    switch (p) {
      case ReplPolicy::LRU:
      case ReplPolicy::FIFO:
        return std::make_unique<StampState>(p, sets, ways);
      case ReplPolicy::Random:
        return std::make_unique<RandomState>(ways);
      case ReplPolicy::TreePLRU:
        return std::make_unique<TreePlruState>(sets, ways);
      case ReplPolicy::NRU:
        return std::make_unique<NruState>(sets, ways);
    }
    panic("unreachable replacement policy value");
}

} // namespace cosim
