/**
 * @file
 * A per-core private cache hierarchy: L1D with an optional unified L2.
 *
 * This is the filter that sits between a core's load/store stream and the
 * front-side bus. It is non-inclusive and write-back; dirty evictions
 * propagate downward (L1 victim -> L2, L2 victim -> bus writeback).
 */

#ifndef COSIM_CACHE_HIERARCHY_HH
#define COSIM_CACHE_HIERARCHY_HH

#include <memory>
#include <optional>

#include "cache/cache.hh"

namespace cosim {

/** Geometry of a private hierarchy. */
struct HierarchyParams
{
    CacheParams l1{"l1d", 32 * 1024, 64, 8, ReplPolicy::LRU};
    bool hasL2 = false;
    CacheParams l2{"l2", 512 * 1024, 64, 8, ReplPolicy::LRU};
};

/** Which level serviced an access. */
enum class ServiceLevel : std::uint8_t { L1, L2, Beyond };

/**
 * Private L1(+L2) stack for one core. The result of an access says where
 * the data came from and what traffic (if any) must go out on the bus.
 */
class PrivateHierarchy
{
  public:
    struct Result
    {
        ServiceLevel servicedBy = ServiceLevel::L1;
        /** Line (aligned) that must be fetched from beyond, if any. */
        std::optional<Addr> fetchLine;
        /**
         * Dirty lines (aligned) leaving the hierarchy. One access can
         * produce up to two (an L1-victim cascading through the L2 plus
         * the L2's own demand-miss victim).
         */
        Addr writebacks[2] = {invalidAddr, invalidAddr};
        unsigned nWritebacks = 0;
        /** The beyond-fetch was satisfied by a prior prefetch into L2. */
        bool l2PrefetchHit = false;

        void addWriteback(Addr line)
        {
            if (nWritebacks < 2)
                writebacks[nWritebacks++] = line;
        }
    };

    explicit PrivateHierarchy(const HierarchyParams& params);

    /**
     * One line-contained access (the caller splits straddling accesses).
     */
    Result access(Addr addr, bool write);

    /**
     * Inlined fast path: complete the access iff it is a plain L1 hit
     * (see Cache::tryHitFast). A plain L1 hit produces no writebacks,
     * no beyond-traffic, and no prefetcher activity, so the full
     * Result plumbing can be skipped. @return false with no state
     * change when the full access() path is required.
     */
    bool tryL1Hit(Addr addr, bool write)
    {
        return l1_.tryHitFast(addr, write);
    }

    /**
     * Install a prefetched line into the outermost private level.
     * @return true if the line was newly installed (traffic happened).
     */
    bool prefetchFill(Addr addr);

    Cache& l1() { return l1_; }
    const Cache& l1() const { return l1_; }
    bool hasL2() const { return l2_ != nullptr; }
    Cache& l2();
    const Cache& l2() const;

    /** Line size of the outermost level (bus transaction granularity). */
    std::uint32_t busLineSize() const;

    void flush();
    void resetStats();

  private:
    Cache l1_;
    std::unique_ptr<Cache> l2_;
};

} // namespace cosim

#endif // COSIM_CACHE_HIERARCHY_HH
