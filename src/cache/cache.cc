#include "cache/cache.hh"

#include "base/bitops.hh"
#include "base/logging.hh"

namespace cosim {

CacheStats&
CacheStats::operator+=(const CacheStats& o)
{
    accesses += o.accesses;
    reads += o.reads;
    writes += o.writes;
    misses += o.misses;
    readMisses += o.readMisses;
    writeMisses += o.writeMisses;
    evictions += o.evictions;
    writebacks += o.writebacks;
    prefetchFills += o.prefetchFills;
    usefulPrefetches += o.usefulPrefetches;
    return *this;
}

Cache::Cache(const CacheParams& params) : params_(params)
{
    fatal_if(params_.lineSize < 8 || !isPowerOf2(params_.lineSize),
             "%s: line size %u must be a power of two >= 8",
             params_.name.c_str(), params_.lineSize);
    fatal_if(params_.assoc == 0, "%s: associativity must be nonzero",
             params_.name.c_str());
    fatal_if(params_.size % (static_cast<std::uint64_t>(params_.lineSize) *
                             params_.assoc) != 0,
             "%s: size %llu is not divisible by lineSize*assoc",
             params_.name.c_str(),
             static_cast<unsigned long long>(params_.size));

    sets_ = params_.sets();
    fatal_if(sets_ == 0, "%s: zero sets", params_.name.c_str());
    fatal_if(!isPowerOf2(sets_), "%s: set count %u must be a power of two",
             params_.name.c_str(), sets_);

    lineBits_ = floorLog2(params_.lineSize);
    setBits_ = floorLog2(sets_);
    lineMask_ = params_.lineSize - 1;
    setMask_ = sets_ - 1;

    std::size_t n = static_cast<std::size_t>(sets_) * params_.assoc;
    tags_.assign(n, 0);
    flags_.assign(n, 0);
    repl_ = ReplacementState::create(params_.repl, sets_, params_.assoc);
    lruView_ = repl_->lruDirect();
}

Cache::Lookup
Cache::lookup(Addr addr) const
{
    Addr line = addr >> lineBits_;
    Lookup l;
    l.set = static_cast<std::uint32_t>(line & setMask_);
    l.tag = line >> setBits_;
    l.way = -1;
    std::size_t base = static_cast<std::size_t>(l.set) * params_.assoc;
    for (std::uint32_t w = 0; w < params_.assoc; ++w) {
        if ((flags_[base + w] & flagValid) != 0 && tags_[base + w] == l.tag) {
            l.way = static_cast<std::int32_t>(w);
            break;
        }
    }
    return l;
}

std::size_t
Cache::wayIndex(std::uint32_t set, std::uint32_t way) const
{
    return static_cast<std::size_t>(set) * params_.assoc + way;
}

std::uint32_t
Cache::install(std::uint32_t set, std::uint64_t tag, Outcome& outcome)
{
    std::size_t base = static_cast<std::size_t>(set) * params_.assoc;

    // Prefer an invalid way.
    for (std::uint32_t w = 0; w < params_.assoc; ++w) {
        if ((flags_[base + w] & flagValid) == 0) {
            tags_[base + w] = tag;
            flags_[base + w] = flagValid;
            repl_->fill(set, w);
            return w;
        }
    }

    std::uint32_t victim = repl_->victim(set);
    panic_if(victim >= params_.assoc, "%s: replacement chose way %u of %u",
             params_.name.c_str(), victim, params_.assoc);

    std::size_t vi = base + victim;
    outcome.evicted = true;
    outcome.evictedDirty = (flags_[vi] & flagDirty) != 0;
    // Reconstruct the victim's line address from tag and set.
    outcome.victimAddr =
        ((tags_[vi] << setBits_) | set) << lineBits_;
    ++stats_.evictions;
    if (outcome.evictedDirty)
        ++stats_.writebacks;

    tags_[vi] = tag;
    flags_[vi] = flagValid;
    repl_->fill(set, victim);
    return victim;
}

Cache::Outcome
Cache::access(Addr addr, bool write)
{
    Outcome outcome;
    ++stats_.accesses;
    if (write)
        ++stats_.writes;
    else
        ++stats_.reads;

    Lookup l = lookup(addr);
    if (l.way >= 0) {
        outcome.hit = true;
        std::size_t i = wayIndex(l.set, static_cast<std::uint32_t>(l.way));
        if ((flags_[i] & flagPrefetched) != 0) {
            outcome.firstHitOnPrefetch = true;
            ++stats_.usefulPrefetches;
            flags_[i] = static_cast<std::uint8_t>(flags_[i] &
                                                  ~flagPrefetched);
        }
        if (write)
            flags_[i] |= flagDirty;
        repl_->touch(l.set, static_cast<std::uint32_t>(l.way));
        return outcome;
    }

    ++stats_.misses;
    if (write)
        ++stats_.writeMisses;
    else
        ++stats_.readMisses;

    std::uint32_t way = install(l.set, l.tag, outcome);
    if (write)
        flags_[wayIndex(l.set, way)] |= flagDirty;
    return outcome;
}

bool
Cache::prefetchFill(Addr addr)
{
    Lookup l = lookup(addr);
    if (l.way >= 0)
        return false;
    Outcome scratch;
    std::uint32_t way = install(l.set, l.tag, scratch);
    flags_[wayIndex(l.set, way)] |= flagPrefetched;
    ++stats_.prefetchFills;
    return true;
}

bool
Cache::probe(Addr addr) const
{
    return lookup(addr).way >= 0;
}

bool
Cache::invalidate(Addr addr)
{
    Lookup l = lookup(addr);
    if (l.way < 0)
        return false;
    std::size_t i = wayIndex(l.set, static_cast<std::uint32_t>(l.way));
    bool dirty = (flags_[i] & flagDirty) != 0;
    flags_[i] = 0;
    return dirty;
}

void
Cache::flush()
{
    std::fill(flags_.begin(), flags_.end(), std::uint8_t{0});
}

std::uint64_t
Cache::linesValid() const
{
    std::uint64_t n = 0;
    for (std::uint8_t f : flags_)
        if ((f & flagValid) != 0)
            ++n;
    return n;
}

void
Cache::addStats(stats::Group& group) const
{
    const CacheStats* s = &stats_;
    group.add("accesses", [s] { return double(s->accesses); });
    group.add("reads", [s] { return double(s->reads); });
    group.add("writes", [s] { return double(s->writes); });
    group.add("misses", [s] { return double(s->misses); });
    group.add("read_misses", [s] { return double(s->readMisses); });
    group.add("write_misses", [s] { return double(s->writeMisses); });
    group.add("evictions", [s] { return double(s->evictions); });
    group.add("writebacks", [s] { return double(s->writebacks); });
    group.add("prefetch_fills", [s] { return double(s->prefetchFills); });
    group.add("useful_prefetches",
              [s] { return double(s->usefulPrefetches); });
    group.add("miss_rate", [s] { return s->missRate(); });
}

} // namespace cosim
