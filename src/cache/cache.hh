/**
 * @file
 * Set-associative cache model with pluggable replacement.
 *
 * The model is functional (hit/miss + evictions), line-granular, and
 * write-allocate / write-back -- the organization Dragonhead emulated.
 * Timing lives in the CPU model, not here.
 */

#ifndef COSIM_CACHE_CACHE_HH
#define COSIM_CACHE_CACHE_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "base/stats.hh"
#include "base/types.hh"
#include "cache/replacement.hh"

namespace cosim {

/** Static geometry and policy of one cache. */
struct CacheParams
{
    std::string name = "cache";
    std::uint64_t size = 32 * 1024;
    std::uint32_t lineSize = 64;
    std::uint32_t assoc = 8;
    ReplPolicy repl = ReplPolicy::LRU;

    /** Number of sets implied by the geometry. */
    std::uint32_t sets() const
    {
        return static_cast<std::uint32_t>(size / (static_cast<std::uint64_t>(
            lineSize) * assoc));
    }
};

/** Event counters of one cache. */
struct CacheStats
{
    std::uint64_t accesses = 0;
    std::uint64_t reads = 0;
    std::uint64_t writes = 0;
    std::uint64_t misses = 0;
    std::uint64_t readMisses = 0;
    std::uint64_t writeMisses = 0;
    std::uint64_t evictions = 0;
    std::uint64_t writebacks = 0;
    std::uint64_t prefetchFills = 0;
    std::uint64_t usefulPrefetches = 0;

    std::uint64_t hits() const { return accesses - misses; }
    double missRate() const
    {
        return accesses == 0
            ? 0.0
            : static_cast<double>(misses) / static_cast<double>(accesses);
    }

    void reset() { *this = CacheStats(); }

    CacheStats& operator+=(const CacheStats& o);
};

/**
 * One physical cache. All addresses are full byte addresses; the cache
 * masks them to lines internally. Accesses must not span a line (the CPU
 * model splits straddling references).
 */
class Cache
{
  public:
    /** What happened on a demand access. */
    struct Outcome
    {
        bool hit = false;
        /** A valid line was evicted to make room. */
        bool evicted = false;
        /** The evicted line was dirty (a writeback left the cache). */
        bool evictedDirty = false;
        /** Line address of the eviction victim (valid iff evicted). */
        Addr victimAddr = invalidAddr;
        /** The hit consumed a prefetched line for the first time. */
        bool firstHitOnPrefetch = false;
    };

    /** Validates geometry (power-of-two sizes, at least one set). */
    explicit Cache(const CacheParams& params);

    /** Demand access to the line containing @p addr. Fills on miss. */
    Outcome access(Addr addr, bool write);

    /**
     * Inlined fast path for the dominant case: a plain hit (valid line,
     * not carrying the prefetched flag) under LRU replacement. Performs
     * the *complete* hit -- access/read/write counters, dirty bit, LRU
     * touch through a raw stamp view -- with no virtual dispatch.
     *
     * @return true iff the access completed as a plain hit. On false
     * nothing was modified and the caller must take access(): the line
     * missed, is a first hit on a prefetched line (useful-prefetch
     * accounting), or the policy has no direct LRU view.
     */
    bool
    tryHitFast(Addr addr, bool write)
    {
        if (lruView_.stamps == nullptr)
            return false;
        const Addr line = addr >> lineBits_;
        const std::uint32_t set =
            static_cast<std::uint32_t>(line & setMask_);
        const std::uint64_t tag = line >> setBits_;
        const std::size_t base =
            static_cast<std::size_t>(set) * params_.assoc;
        const std::uint64_t* tags = tags_.data() + base;
        std::uint8_t* flags = flags_.data() + base;
        for (std::uint32_t w = 0; w < params_.assoc; ++w) {
            const std::uint8_t f = flags[w];
            if ((f & flagValid) == 0 || tags[w] != tag)
                continue;
            if ((f & flagPrefetched) != 0)
                return false; // full path owns useful-prefetch stats
            ++stats_.accesses;
            if (write) {
                ++stats_.writes;
                flags[w] = static_cast<std::uint8_t>(f | flagDirty);
            } else {
                ++stats_.reads;
            }
            lruView_.stamps[base + w] = ++*lruView_.clock;
            return true;
        }
        return false; // miss: full path installs the line
    }

    /**
     * Install the line containing @p addr as a (clean) prefetch.
     * @return true if the line was absent and is now installed.
     */
    bool prefetchFill(Addr addr);

    /** True iff the line containing @p addr is present (no side effects). */
    bool probe(Addr addr) const;

    /**
     * Drop the line containing @p addr if present.
     * @return true if the line was present and dirty.
     */
    bool invalidate(Addr addr);

    /** Invalidate everything (stats are kept). */
    void flush();

    /** Number of valid lines currently held. */
    std::uint64_t linesValid() const;

    /** Line-aligned address helper. */
    Addr lineAddr(Addr a) const { return a & ~lineMask_; }

    const CacheParams& params() const { return params_; }
    const CacheStats& stats() const { return stats_; }
    void resetStats() { stats_.reset(); }

    /**
     * Register this cache's counters (as lazily evaluated formulas) into
     * @p group; the group must not outlive the cache.
     */
    void addStats(stats::Group& group) const;

  private:
    static constexpr std::uint8_t flagValid = 1;
    static constexpr std::uint8_t flagDirty = 2;
    static constexpr std::uint8_t flagPrefetched = 4;

    struct Lookup
    {
        std::uint32_t set;
        std::uint64_t tag;
        std::int32_t way; ///< -1 if not present
    };

    Lookup lookup(Addr addr) const;
    std::size_t wayIndex(std::uint32_t set, std::uint32_t way) const;

    /** Install @p tag into @p set, evicting if needed; returns way. */
    std::uint32_t install(std::uint32_t set, std::uint64_t tag,
                          Outcome& outcome);

    CacheParams params_;
    Addr lineMask_;
    unsigned lineBits_;
    std::uint32_t sets_;
    unsigned setBits_;
    std::uint64_t setMask_;

    std::vector<std::uint64_t> tags_;
    std::vector<std::uint8_t> flags_;
    std::unique_ptr<ReplacementState> repl_;
    /** Raw LRU stamp window (null stamps => no fast path). */
    LruDirectView lruView_;
    CacheStats stats_;
};

} // namespace cosim

#endif // COSIM_CACHE_CACHE_HH
