/**
 * @file
 * Main-memory timing model with bandwidth contention.
 *
 * The co-simulation is trace-like (the cache emulation is passive, as
 * Dragonhead's was), so memory timing does not feed back into the access
 * stream. What we do model -- because Figure 8 of the paper depends on it
 * -- is *bandwidth contention*: when many cores (or an aggressive
 * prefetcher) demand more bytes per cycle than the FSB/DRAM can deliver,
 * effective latency inflates and prefetches get throttled.
 *
 * The model is round-based. The DEX scheduler runs all cores for one
 * quantum ("round"), reporting traffic as it goes; at the round boundary
 * the model computes the utilization of the just-finished round with an
 * M/D/1-style queueing correction and publishes (a) the effective memory
 * latency and (b) the fraction of prefetch requests that will be admitted
 * during the next round.
 */

#ifndef COSIM_MEM_DRAM_HH
#define COSIM_MEM_DRAM_HH

#include <atomic>
#include <cstdint>

#include "base/stats.hh"
#include "base/types.hh"

namespace cosim {

/** Static parameters of the memory/bus subsystem. */
struct DramParams
{
    /** Unloaded memory access latency, in core cycles. */
    Cycles baseLatency = 300;

    /** Peak sustainable bandwidth in bytes per core cycle (all cores). */
    double peakBytesPerCycle = 2.0;

    /** Utilization above which prefetches start being dropped. */
    double prefetchThrottleStart = 0.60;

    /** Utilization at which all prefetches are dropped. */
    double prefetchThrottleFull = 0.95;

    /** Upper bound on the queueing latency multiplier. */
    double maxLatencyInflation = 6.0;
};

/**
 * Shared DRAM + bus bandwidth model. One instance is shared by all cores
 * of a simulated platform.
 */
class DramModel
{
  public:
    explicit DramModel(const DramParams& params = DramParams());

    /**
     * Record @p bytes of demand (miss/writeback) traffic. Relaxed atomic
     * add: under --dex-threads all cores of a round report concurrently,
     * and integer byte sums commute exactly, so the round total -- the
     * only thing endRound() reads -- is identical to serial.
     */
    void addDemandTraffic(std::uint64_t bytes)
    {
        demandBytes_.fetch_add(bytes, std::memory_order_relaxed);
    }

    /** Record @p bytes of prefetch traffic (same commutativity note). */
    void addPrefetchTraffic(std::uint64_t bytes)
    {
        prefetchBytes_.fetch_add(bytes, std::memory_order_relaxed);
    }

    /**
     * Effective latency of a demand memory access during the current
     * round, including the queueing penalty from last round's load.
     */
    Cycles demandLatency() const { return effectiveLatency_; }

    /**
     * Fraction of prefetch requests admitted in the current round
     * (1.0 = bandwidth is plentiful, 0.0 = bus saturated by demand).
     */
    double prefetchAdmitFraction() const { return prefetchAdmit_; }

    /**
     * Close the current round. @p round_cycles is the wall-clock length of
     * the round in core cycles (the slowest core's progress). Recomputes
     * the effective latency and prefetch admission for the next round.
     */
    void endRound(Cycles round_cycles);

    /** Utilization of the most recently closed round, in [0, 1]. */
    double lastUtilization() const { return lastUtilization_; }

    /** @name Lifetime totals @{ */
    std::uint64_t totalDemandBytes() const { return totalDemandBytes_; }
    std::uint64_t totalPrefetchBytes() const { return totalPrefetchBytes_; }
    /** @} */

    const DramParams& params() const { return params_; }

    /** Register traffic/latency gauges into @p group. */
    void addStats(stats::Group& group) const;

    /** Return to the unloaded state and clear totals. */
    void reset();

  private:
    DramParams params_;

    /** Atomic so concurrent DEX quanta can report (see addDemandTraffic);
     *  only touched with relaxed ops, read exactly at round boundaries. */
    std::atomic<std::uint64_t> demandBytes_{0};
    std::atomic<std::uint64_t> prefetchBytes_{0};
    std::uint64_t totalDemandBytes_ = 0;
    std::uint64_t totalPrefetchBytes_ = 0;

    double lastUtilization_ = 0.0;
    Cycles effectiveLatency_;
    double prefetchAdmit_ = 1.0;
};

} // namespace cosim

#endif // COSIM_MEM_DRAM_HH
