/**
 * @file
 * Front-side bus model.
 *
 * In the paper's rig, Dragonhead passively snoops the physical FSB of the
 * host machine through a logic analyzer interface (LAI). Here the bus is a
 * synchronous broadcast point: producers (the per-core private cache
 * hierarchies and the DEX scheduler's message generator) issue
 * transactions, and any number of snoopers (Dragonhead instances, trace
 * writers, custom observers) see every one of them in issue order.
 */

#ifndef COSIM_MEM_FSB_HH
#define COSIM_MEM_FSB_HH

#include <cstdint>
#include <vector>

#include "base/stats.hh"
#include "mem/access.hh"

namespace cosim {

/** Interface for anything that watches the front-side bus. */
class BusSnooper
{
  public:
    virtual ~BusSnooper() = default;

    /** Called for every transaction, in issue order. */
    virtual void observe(const BusTransaction& txn) = 0;
};

/**
 * The broadcast bus. Not thread-safe by design: the DEX scheduler
 * serializes all virtual cores onto one host thread, exactly as the
 * physical FSB serializes transactions.
 */
class FrontSideBus
{
  public:
    /** Attach a snooper; it starts seeing subsequent transactions. */
    void attach(BusSnooper* snooper);

    /** Detach a previously attached snooper. */
    void detach(BusSnooper* snooper);

    /** Broadcast one transaction to every snooper. */
    void issue(const BusTransaction& txn);

    /** @name Traffic statistics @{ */
    std::uint64_t txnCount() const { return nTxns_; }
    std::uint64_t readCount() const { return nReads_; }
    std::uint64_t writeCount() const { return nWrites_; }
    std::uint64_t prefetchCount() const { return nPrefetches_; }
    std::uint64_t messageCount() const { return nMessages_; }
    std::uint64_t dataBytes() const { return dataBytes_; }
    /** @} */

    std::size_t snooperCount() const { return snoopers_.size(); }

    /** Register the traffic counters into @p group. */
    void addStats(stats::Group& group) const;

    /** Zero the traffic statistics (snoopers stay attached). */
    void resetStats();

  private:
    std::vector<BusSnooper*> snoopers_;
    std::uint64_t nTxns_ = 0;
    std::uint64_t nReads_ = 0;
    std::uint64_t nWrites_ = 0;
    std::uint64_t nPrefetches_ = 0;
    std::uint64_t nMessages_ = 0;
    std::uint64_t dataBytes_ = 0;
};

} // namespace cosim

#endif // COSIM_MEM_FSB_HH
