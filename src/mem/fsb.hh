/**
 * @file
 * Front-side bus model.
 *
 * In the paper's rig, Dragonhead passively snoops the physical FSB of the
 * host machine through a logic analyzer interface (LAI). Here the bus is a
 * synchronous broadcast point: producers (the per-core private cache
 * hierarchies and the DEX scheduler's message generator) issue
 * transactions, and any number of snoopers (Dragonhead instances, trace
 * writers, custom observers) see every one of them in issue order.
 *
 * Two delivery modes exist:
 *
 *  - *Immediate* (batch capacity 0/1, the default): every issue() walks
 *    the snooper list synchronously, exactly the original behaviour.
 *  - *Batched* (setBatchCapacity(N)): transactions accumulate into a
 *    fixed-size chunk that is handed to BusSnooper::observeBatch() when
 *    full (or on flush()). Chunks preserve issue order, so snoopers see
 *    the identical transaction sequence, just delivered later; the
 *    AsyncEmulatorBank uses this to ship whole chunks to worker threads
 *    instead of paying a virtual call per transaction.
 */

#ifndef COSIM_MEM_FSB_HH
#define COSIM_MEM_FSB_HH

#include <cstdint>
#include <vector>

#include "base/stats.hh"
#include "mem/access.hh"

namespace cosim {

/** Interface for anything that watches the front-side bus. */
class BusSnooper
{
  public:
    virtual ~BusSnooper() = default;

    /** Called for every transaction, in issue order. */
    virtual void observe(const BusTransaction& txn) = 0;

    /**
     * Called with a chunk of consecutive transactions in issue order
     * when the bus runs batched. The default keeps per-transaction
     * snoopers (trace sinks, tests) working unchanged.
     */
    virtual void
    observeBatch(const BusTransaction* txns, std::size_t n)
    {
        for (std::size_t i = 0; i < n; ++i)
            observe(txns[i]);
    }
};

/**
 * Anything a producer can issue transactions into. The front-side bus
 * itself is one sink; the sharded DEX scheduler rebinds each core's
 * producer to a per-slot TxnRecorder so concurrent quanta buffer their
 * traffic instead of racing on the bus (softsdv/dex_scheduler.cc
 * merges the buffers back into the real bus in core-id order).
 */
class TxnSink
{
  public:
    virtual ~TxnSink() = default;

    /** Accept one transaction, in the producer's issue order. */
    virtual void issue(const BusTransaction& txn) = 0;
};

/**
 * A sink that records instead of delivering: the per-slot slice buffer
 * of the sharded DEX scheduler. One worker thread owns a recorder at a
 * time, so it needs no locking; the round merge drains it on the
 * scheduling thread.
 */
class TxnRecorder : public TxnSink
{
  public:
    void issue(const BusTransaction& txn) override
    {
        txns_.push_back(txn);
    }

    const std::vector<BusTransaction>& txns() const { return txns_; }
    void clear() { txns_.clear(); }
    void reserve(std::size_t n) { txns_.reserve(n); }

  private:
    std::vector<BusTransaction> txns_;
};

/**
 * The broadcast bus. Not thread-safe by design: all delivery happens on
 * the scheduling host thread, exactly as the physical FSB serializes
 * transactions. Under --dex-threads the concurrently executed quanta
 * issue into per-slot TxnRecorders and only the round merge -- on the
 * scheduling thread -- touches the bus. (Cross-thread fan-out happens
 * *behind* a snooper -- see AsyncEmulatorBank.)
 */
class FrontSideBus : public TxnSink
{
  public:
    /** Attach a snooper; it starts seeing subsequent transactions. */
    void attach(BusSnooper* snooper);

    /**
     * Detach a previously attached snooper. Detaching (or attaching)
     * from inside observe()/observeBatch() is a hard error: the bus is
     * iterating the snooper list and a mutation would invalidate it.
     */
    void detach(BusSnooper* snooper);

    /** Broadcast one transaction to every snooper. */
    void issue(const BusTransaction& txn) override;

    /**
     * Accumulate up to @p txns transactions per delivery chunk; 0 or 1
     * restores immediate per-transaction delivery. Pending transactions
     * are flushed first, so the switch never reorders traffic.
     */
    void setBatchCapacity(std::size_t txns);
    std::size_t batchCapacity() const { return batchCapacity_; }

    /** Deliver any buffered transactions now (no-op when none). */
    void flush();

    /** Buffered-but-undelivered transactions (diagnostic). */
    std::size_t pendingTxns() const { return pending_.size(); }

    /** @name Traffic statistics @{ */
    std::uint64_t txnCount() const { return nTxns_; }
    std::uint64_t readCount() const { return nReads_; }
    std::uint64_t writeCount() const { return nWrites_; }
    std::uint64_t prefetchCount() const { return nPrefetches_; }
    std::uint64_t messageCount() const { return nMessages_; }
    std::uint64_t dataBytes() const { return dataBytes_; }
    std::uint64_t batchCount() const { return nBatches_; }
    /** @} */

    std::size_t snooperCount() const { return snoopers_.size(); }

    /** Register the traffic counters into @p group. */
    void addStats(stats::Group& group) const;

    /** Zero the traffic statistics (snoopers stay attached). */
    void resetStats();

  private:
    void deliver(const BusTransaction& txn);

    std::vector<BusSnooper*> snoopers_;
    std::vector<BusTransaction> pending_;
    std::size_t batchCapacity_ = 0;
    /** True while walking the snooper list (guards attach/detach). */
    bool broadcasting_ = false;
    std::uint64_t nTxns_ = 0;
    std::uint64_t nReads_ = 0;
    std::uint64_t nWrites_ = 0;
    std::uint64_t nPrefetches_ = 0;
    std::uint64_t nMessages_ = 0;
    std::uint64_t dataBytes_ = 0;
    std::uint64_t nBatches_ = 0;
};

} // namespace cosim

#endif // COSIM_MEM_FSB_HH
