#include "mem/dram.hh"

#include <algorithm>

#include "base/logging.hh"

namespace cosim {

DramModel::DramModel(const DramParams& params)
    : params_(params), effectiveLatency_(params.baseLatency)
{
    fatal_if(params_.peakBytesPerCycle <= 0.0,
             "peak bandwidth must be positive");
    fatal_if(params_.prefetchThrottleFull <= params_.prefetchThrottleStart,
             "prefetch throttle window is empty");
}

void
DramModel::endRound(Cycles round_cycles)
{
    // Runs at the round barrier: no quantum is in flight, so relaxed
    // exchanges see every add of the round.
    std::uint64_t demand = demandBytes_.exchange(0, std::memory_order_relaxed);
    std::uint64_t prefetch =
        prefetchBytes_.exchange(0, std::memory_order_relaxed);
    std::uint64_t bytes = demand + prefetch;
    totalDemandBytes_ += demand;
    totalPrefetchBytes_ += prefetch;

    if (round_cycles == 0) {
        lastUtilization_ = 0.0;
        effectiveLatency_ = params_.baseLatency;
        prefetchAdmit_ = 1.0;
        return;
    }

    double supply =
        params_.peakBytesPerCycle * static_cast<double>(round_cycles);
    double rho = static_cast<double>(bytes) / supply;
    lastUtilization_ = std::min(rho, 1.0);

    // M/D/1-flavoured queueing inflation: latency grows as 1/(1-rho),
    // capped so a saturated round doesn't blow up the next round's cost.
    double inflation;
    if (rho >= 1.0) {
        inflation = params_.maxLatencyInflation;
    } else {
        inflation = 1.0 + rho / (2.0 * (1.0 - rho));
        inflation = std::min(inflation, params_.maxLatencyInflation);
    }
    effectiveLatency_ = static_cast<Cycles>(
        static_cast<double>(params_.baseLatency) * inflation);

    // Prefetch admission ramps from 1 down to 0 across the throttle window.
    if (rho <= params_.prefetchThrottleStart) {
        prefetchAdmit_ = 1.0;
    } else if (rho >= params_.prefetchThrottleFull) {
        prefetchAdmit_ = 0.0;
    } else {
        prefetchAdmit_ =
            (params_.prefetchThrottleFull - rho) /
            (params_.prefetchThrottleFull - params_.prefetchThrottleStart);
    }
}

void
DramModel::addStats(stats::Group& group) const
{
    group.add("demand_bytes",
              [this] { return double(totalDemandBytes_); });
    group.add("prefetch_bytes",
              [this] { return double(totalPrefetchBytes_); });
    group.add("utilization", [this] { return lastUtilization_; });
    group.add("effective_latency",
              [this] { return double(effectiveLatency_); });
    group.add("prefetch_admit", [this] { return prefetchAdmit_; });
}

void
DramModel::reset()
{
    demandBytes_.store(0, std::memory_order_relaxed);
    prefetchBytes_.store(0, std::memory_order_relaxed);
    totalDemandBytes_ = totalPrefetchBytes_ = 0;
    lastUtilization_ = 0.0;
    effectiveLatency_ = params_.baseLatency;
    prefetchAdmit_ = 1.0;
}

} // namespace cosim
