/**
 * @file
 * Simulated physical address space management.
 *
 * Workload data structures live in ordinary host memory, but every one of
 * their elements also has a *simulated* physical address that is what the
 * cache models see. The SimAllocator hands out non-overlapping, aligned
 * ranges of that simulated space and remembers them by name so tools can
 * attribute misses to data structures.
 */

#ifndef COSIM_MEM_ADDRESS_SPACE_HH
#define COSIM_MEM_ADDRESS_SPACE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "base/types.hh"

namespace cosim {

/** A named, allocated range of simulated physical memory. */
struct SimRegion
{
    std::string name;
    Addr base = 0;
    std::uint64_t size = 0;

    /** True iff @p a falls inside this region. */
    bool contains(Addr a) const { return a >= base && a < base + size; }
};

/**
 * Bump allocator over the simulated physical address space.
 *
 * The workload address window starts at 256 MB so that low addresses stay
 * free for platform use, and the Dragonhead message window (see
 * dragonhead/fsb_messages.hh) sits far above anything this allocator will
 * ever produce.
 */
class SimAllocator
{
  public:
    /** Lowest address handed out to workloads. */
    static constexpr Addr workloadBase = 0x1000'0000;

    SimAllocator() = default;

    /**
     * Allocate @p size bytes aligned to @p align (power of two).
     * @param name data-structure label used in region reports
     * @return base address of the new region
     */
    Addr allocate(const std::string& name, std::uint64_t size,
                  std::uint64_t align = 64);

    /** Total bytes allocated so far (the workload's nominal footprint). */
    std::uint64_t footprint() const { return footprint_; }

    /** All regions, in allocation order. */
    const std::vector<SimRegion>& regions() const { return regions_; }

    /** Find the region containing @p a, or nullptr. */
    const SimRegion* findRegion(Addr a) const;

    /** Release all regions and restart from workloadBase. */
    void reset();

  private:
    Addr next_ = workloadBase;
    std::uint64_t footprint_ = 0;
    std::vector<SimRegion> regions_;
};

} // namespace cosim

#endif // COSIM_MEM_ADDRESS_SPACE_HH
