#include "mem/address_space.hh"

#include "base/bitops.hh"
#include "base/logging.hh"

namespace cosim {

Addr
SimAllocator::allocate(const std::string& name, std::uint64_t size,
                       std::uint64_t align)
{
    fatal_if(size == 0, "allocating empty region '%s'", name.c_str());
    fatal_if(!isPowerOf2(align), "alignment %llu is not a power of two",
             static_cast<unsigned long long>(align));

    Addr base = alignUp(next_, align);
    next_ = base + size;
    footprint_ += size;
    regions_.push_back({name, base, size});
    return base;
}

const SimRegion*
SimAllocator::findRegion(Addr a) const
{
    for (const auto& region : regions_) {
        if (region.contains(a))
            return &region;
    }
    return nullptr;
}

void
SimAllocator::reset()
{
    next_ = workloadBase;
    footprint_ = 0;
    regions_.clear();
}

} // namespace cosim
