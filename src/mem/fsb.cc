#include "mem/fsb.hh"

#include <algorithm>

#include "base/logging.hh"

namespace cosim {

const char*
toString(AccessType t)
{
    switch (t) {
      case AccessType::Read:
        return "read";
      case AccessType::Write:
        return "write";
    }
    return "?";
}

const char*
toString(TxnKind k)
{
    switch (k) {
      case TxnKind::ReadLine:
        return "read-line";
      case TxnKind::WriteLine:
        return "write-line";
      case TxnKind::Prefetch:
        return "prefetch";
      case TxnKind::Message:
        return "message";
    }
    return "?";
}

void
FrontSideBus::attach(BusSnooper* snooper)
{
    panic_if(snooper == nullptr, "attaching null snooper");
    panic_if(std::find(snoopers_.begin(), snoopers_.end(), snooper) !=
                 snoopers_.end(),
             "snooper attached twice");
    snoopers_.push_back(snooper);
}

void
FrontSideBus::detach(BusSnooper* snooper)
{
    auto it = std::find(snoopers_.begin(), snoopers_.end(), snooper);
    panic_if(it == snoopers_.end(), "detaching snooper that is not attached");
    snoopers_.erase(it);
}

void
FrontSideBus::issue(const BusTransaction& txn)
{
    ++nTxns_;
    switch (txn.kind) {
      case TxnKind::ReadLine:
        ++nReads_;
        dataBytes_ += txn.size;
        break;
      case TxnKind::WriteLine:
        ++nWrites_;
        dataBytes_ += txn.size;
        break;
      case TxnKind::Prefetch:
        ++nPrefetches_;
        dataBytes_ += txn.size;
        break;
      case TxnKind::Message:
        ++nMessages_;
        break;
    }
    for (BusSnooper* snooper : snoopers_)
        snooper->observe(txn);
}

void
FrontSideBus::addStats(stats::Group& group) const
{
    group.add("txns", [this] { return double(nTxns_); });
    group.add("reads", [this] { return double(nReads_); });
    group.add("writes", [this] { return double(nWrites_); });
    group.add("prefetches", [this] { return double(nPrefetches_); });
    group.add("messages", [this] { return double(nMessages_); });
    group.add("data_bytes", [this] { return double(dataBytes_); });
}

void
FrontSideBus::resetStats()
{
    nTxns_ = nReads_ = nWrites_ = nPrefetches_ = nMessages_ = 0;
    dataBytes_ = 0;
}

} // namespace cosim
