#include "mem/fsb.hh"

#include <algorithm>

#include "base/logging.hh"
#include "obs/metrics.hh"

namespace cosim {

const char*
toString(AccessType t)
{
    switch (t) {
      case AccessType::Read:
        return "read";
      case AccessType::Write:
        return "write";
    }
    return "?";
}

const char*
toString(TxnKind k)
{
    switch (k) {
      case TxnKind::ReadLine:
        return "read-line";
      case TxnKind::WriteLine:
        return "write-line";
      case TxnKind::Prefetch:
        return "prefetch";
      case TxnKind::Message:
        return "message";
    }
    return "?";
}

void
FrontSideBus::attach(BusSnooper* snooper)
{
    panic_if(snooper == nullptr, "attaching null snooper");
    panic_if(broadcasting_, "attach() from inside a bus broadcast");
    panic_if(std::find(snoopers_.begin(), snoopers_.end(), snooper) !=
                 snoopers_.end(),
             "snooper attached twice");
    if (snoopers_.capacity() == 0)
        snoopers_.reserve(8);
    snoopers_.push_back(snooper);
}

void
FrontSideBus::detach(BusSnooper* snooper)
{
    panic_if(broadcasting_, "detach() from inside a bus broadcast");
    auto it = std::find(snoopers_.begin(), snoopers_.end(), snooper);
    panic_if(it == snoopers_.end(), "detaching snooper that is not attached");
    snoopers_.erase(it);
}

void
FrontSideBus::setBatchCapacity(std::size_t txns)
{
    flush();
    batchCapacity_ = txns;
    if (txns > 1)
        pending_.reserve(txns);
}

void
FrontSideBus::deliver(const BusTransaction& txn)
{
    // Hot loop: pin the list pointer and length in locals so each
    // transaction pays only the virtual observe() call, not repeated
    // loads of the vector's end pointer.
    broadcasting_ = true;
    BusSnooper* const* snoopers = snoopers_.data();
    const std::size_t n = snoopers_.size();
    for (std::size_t i = 0; i < n; ++i)
        snoopers[i]->observe(txn);
    broadcasting_ = false;
}

void
FrontSideBus::flush()
{
    if (pending_.empty())
        return;
    if (obs::metrics::enabled()) {
        static const obs::metrics::Histogram batch_txns =
            obs::metrics::histogram("fsb.batch_txns",
                                    "transactions per delivered batch");
        batch_txns.record(pending_.size());
    }
    broadcasting_ = true;
    BusSnooper* const* snoopers = snoopers_.data();
    const std::size_t n = snoopers_.size();
    for (std::size_t i = 0; i < n; ++i)
        snoopers[i]->observeBatch(pending_.data(), pending_.size());
    broadcasting_ = false;
    ++nBatches_;
    pending_.clear();
}

void
FrontSideBus::issue(const BusTransaction& txn)
{
    ++nTxns_;
    switch (txn.kind) {
      case TxnKind::ReadLine:
        ++nReads_;
        dataBytes_ += txn.size;
        break;
      case TxnKind::WriteLine:
        ++nWrites_;
        dataBytes_ += txn.size;
        break;
      case TxnKind::Prefetch:
        ++nPrefetches_;
        dataBytes_ += txn.size;
        break;
      case TxnKind::Message:
        ++nMessages_;
        break;
    }
    if (batchCapacity_ > 1) {
        pending_.push_back(txn);
        if (pending_.size() >= batchCapacity_)
            flush();
        return;
    }
    deliver(txn);
}

void
FrontSideBus::addStats(stats::Group& group) const
{
    group.add("txns", [this] { return double(nTxns_); });
    group.add("reads", [this] { return double(nReads_); });
    group.add("writes", [this] { return double(nWrites_); });
    group.add("prefetches", [this] { return double(nPrefetches_); });
    group.add("messages", [this] { return double(nMessages_); });
    group.add("data_bytes", [this] { return double(dataBytes_); });
    group.add("batches", [this] { return double(nBatches_); });
}

void
FrontSideBus::resetStats()
{
    nTxns_ = nReads_ = nWrites_ = nPrefetches_ = nMessages_ = 0;
    dataBytes_ = 0;
    nBatches_ = 0;
}

} // namespace cosim
