/**
 * @file
 * Memory access and bus transaction records.
 *
 * A MemAccess is what a core's load/store unit produces; a BusTransaction
 * is what appears on the front-side bus after the private caches have
 * filtered the stream (line fills, writebacks, prefetches), plus the
 * special "message" transactions SoftSDV uses to talk to Dragonhead.
 */

#ifndef COSIM_MEM_ACCESS_HH
#define COSIM_MEM_ACCESS_HH

#include <cstdint>

#include "base/types.hh"

namespace cosim {

/** Kind of a core-level memory reference. */
enum class AccessType : std::uint8_t {
    Read,
    Write,
};

/** One core-level memory reference. */
struct MemAccess
{
    Addr addr = 0;
    std::uint32_t size = 0;
    AccessType type = AccessType::Read;
    CoreId core = 0;
};

/** Kind of a front-side bus transaction. */
enum class TxnKind : std::uint8_t {
    ReadLine,  ///< demand line fill
    WriteLine, ///< writeback of a dirty line
    Prefetch,  ///< hardware-prefetch line fill
    Message,   ///< SoftSDV -> Dragonhead control message (see fsb_messages)
};

/** One transaction observed on the front-side bus. */
struct BusTransaction
{
    Addr addr = 0;
    std::uint32_t size = 0;
    TxnKind kind = TxnKind::ReadLine;
    CoreId core = invalidCoreId;
};

/** Human-readable names, for traces and debug output. */
const char* toString(AccessType t);
const char* toString(TxnKind k);

} // namespace cosim

#endif // COSIM_MEM_ACCESS_HH
