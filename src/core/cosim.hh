/**
 * @file
 * The hardware-software co-simulation rig: SoftSDV (virtual platform)
 * plus Dragonhead (passive cache emulation) on one bus.
 *
 * This is the paper's primary contribution, assembled: the DEX scheduler
 * time-slices virtual cores while one *or several* Dragonhead instances
 * snoop the FSB. Because the emulation is passive, attaching several
 * emulators with different LLC configurations evaluates a whole design
 * sweep in a single workload execution.
 *
 * Two emulation modes:
 *
 *  - *Serial* (emulationThreads == 0, the default): every emulator is
 *    attached to the bus directly and emulates inline on the workload's
 *    host thread, exactly the original behaviour.
 *  - *Parallel* (emulationThreads > 0): the emulators live in an
 *    AsyncEmulatorBank, the bus batches transactions into chunks, and
 *    worker threads emulate the chunks while the workload keeps
 *    executing -- the software analogue of the FPGA emulating
 *    concurrently with the host CPUs. Results are bit-identical to
 *    serial mode (tests/test_parallel.cc enforces this).
 */

#ifndef COSIM_CORE_COSIM_HH
#define COSIM_CORE_COSIM_HH

#include <memory>
#include <vector>

#include "core/emulator_bank.hh"
#include "dragonhead/dragonhead.hh"
#include "softsdv/virtual_platform.hh"
#include "trace/fsb_replay.hh"
#include "trace/sampled_replay.hh"

namespace cosim {

/** Configuration of a co-simulation. */
struct CoSimParams
{
    PlatformParams platform;
    std::vector<DragonheadParams> emulators;

    /**
     * Host threads emulating Dragonheads; 0 = serial inline emulation.
     * More threads than emulators is clamped (a worker per emulator).
     */
    unsigned emulationThreads = 0;

    /**
     * FSB batch-chunk size in transactions; 0 picks a default (4096)
     * in parallel mode and immediate delivery in serial mode. Values
     * > 1 enable batched delivery even for serial emulation, which
     * amortizes the per-transaction virtual snooper dispatch.
     */
    std::size_t fsbBatchTxns = 0;

    /**
     * Parallel mode: when an emulation worker dies, fall back to
     * serial emulation of its emulators on the workload thread
     * instead of failing the run (EmulatorBankParams::degradeToSerial).
     */
    bool degradeToSerial = false;
};

/** See file comment. */
class CoSimulation
{
  public:
    explicit CoSimulation(const CoSimParams& params);
    ~CoSimulation();

    CoSimulation(const CoSimulation&) = delete;
    CoSimulation& operator=(const CoSimulation&) = delete;

    /**
     * Run @p workload once; every attached emulator observes the same
     * execution. Emulators are reset at run entry. In parallel mode the
     * call returns only after every worker has drained, so emulator
     * results are settled; the drain time is folded into
     * RunResult::hostSeconds (the emulation window is not over until
     * the last chunk is emulated).
     */
    RunResult run(Workload& workload, const WorkloadConfig& cfg);

    /**
     * Feed a recorded FSB stream through the attached emulators instead
     * of executing a guest. Emulators are reset at entry and observe
     * the exact live sequence, so their counters and CB samples are
     * bit-identical to the run that was captured. The returned result
     * carries the captured run's totalInsts/verified plus a
     * `replayedFrom` provenance tag; CPU-side counters stay zero.
     * @throws std::runtime_error on an unreadable or corrupt stream,
     * so a sweep cell replaying a bad capture can be isolated instead
     * of killing the whole run. @p details (optional) receives the
     * replay's stream statistics.
     */
    RunResult replayFile(const std::string& path,
                         ReplayResult* details = nullptr);

    /** Replay an in-memory stream (a capture writer's share()). */
    RunResult replayBuffer(
        std::shared_ptr<const std::vector<std::uint8_t>> stream,
        const std::string& source, ReplayResult* details = nullptr);

    /**
     * Sampled replay: deliver only @p plan's representative intervals
     * (plus warm-up) through the emulators in detail, functionally
     * warming (or, with @p warming false, fast-forwarding past) the
     * rest (trace/sampled_replay.hh). Message transactions are always
     * delivered, so CB totals and the sample-window clock stay exact;
     * the caller reconstructs whole-run metrics from the emulator's
     * per-window samples and the plan weights. Error contract matches
     * replayFile(). @p sstats (optional) receives the delivery-gate
     * counters. @p warm_stride dilutes warming to every Nth
     * fast-forwarded data transaction (trace/sampled_replay.hh).
     */
    RunResult replaySampledFile(const std::string& path,
                                const SamplingPlan& plan,
                                SampledReplayStats* sstats = nullptr,
                                ReplayResult* details = nullptr,
                                bool warming = true,
                                unsigned warm_stride = 1);

    /** Sampled replay of an in-memory stream. */
    RunResult replaySampledBuffer(
        std::shared_ptr<const std::vector<std::uint8_t>> stream,
        const std::string& source, const SamplingPlan& plan,
        SampledReplayStats* sstats = nullptr,
        ReplayResult* details = nullptr, bool warming = true,
        unsigned warm_stride = 1);

    unsigned nEmulators() const
    {
        return bank_ ? bank_->nEmulators()
                     : static_cast<unsigned>(emulators_.size());
    }

    /** Host worker threads emulating; 0 in serial mode. */
    unsigned emulationThreads() const
    {
        return bank_ ? bank_->nThreads() : 0;
    }

    const Dragonhead& emulator(unsigned i) const;

    /** The bank, or nullptr in serial mode (diagnostics/tests). */
    const AsyncEmulatorBank* bank() const { return bank_.get(); }

    /** MPKI of every emulator, in configuration order. */
    std::vector<double> mpkis() const;

    /**
     * Register the whole rig's stats into @p registry: the platform's
     * groups plus one "dragonhead<i>" group per emulator (with
     * "batches" / "queue_peak" delivery counters in parallel mode).
     */
    void registerStats(obs::StatsRegistry& registry) const;

    VirtualPlatform& platform() { return platform_; }

    /**
     * Publish liveness/progress into @p slot: the DEX scheduler beats
     * per quantum, the platform pulses across setup boundaries, and
     * (in parallel mode) the bank reports queue depth and worker
     * activity. Set before run()/replay; nullptr disables.
     */
    void setHeartbeat(obs::HeartbeatSlot* slot);

  private:
    /** Reset emulators and bus counters before a replay pass. */
    void prepareReplay();
    /** Drain workers and assemble a replay-mode RunResult. */
    RunResult finishReplay(const ReplayResult& rr,
                           const std::string& source,
                           ReplayResult* details);

    VirtualPlatform platform_;
    /** Serial mode: directly attached emulators. */
    std::vector<std::unique_ptr<Dragonhead>> emulators_;
    /** Parallel mode: emulators owned by the worker bank. */
    std::unique_ptr<AsyncEmulatorBank> bank_;
};

} // namespace cosim

#endif // COSIM_CORE_COSIM_HH
