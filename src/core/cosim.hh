/**
 * @file
 * The hardware-software co-simulation rig: SoftSDV (virtual platform)
 * plus Dragonhead (passive cache emulation) on one bus.
 *
 * This is the paper's primary contribution, assembled: the DEX scheduler
 * time-slices virtual cores while one *or several* Dragonhead instances
 * snoop the FSB. Because the emulation is passive, attaching several
 * emulators with different LLC configurations evaluates a whole design
 * sweep in a single workload execution.
 */

#ifndef COSIM_CORE_COSIM_HH
#define COSIM_CORE_COSIM_HH

#include <memory>
#include <vector>

#include "dragonhead/dragonhead.hh"
#include "softsdv/virtual_platform.hh"

namespace cosim {

/** Configuration of a co-simulation. */
struct CoSimParams
{
    PlatformParams platform;
    std::vector<DragonheadParams> emulators;
};

/** See file comment. */
class CoSimulation
{
  public:
    explicit CoSimulation(const CoSimParams& params);
    ~CoSimulation();

    CoSimulation(const CoSimulation&) = delete;
    CoSimulation& operator=(const CoSimulation&) = delete;

    /**
     * Run @p workload once; every attached emulator observes the same
     * execution. Emulators are reset at run entry.
     */
    RunResult run(Workload& workload, const WorkloadConfig& cfg);

    unsigned nEmulators() const
    {
        return static_cast<unsigned>(emulators_.size());
    }

    const Dragonhead& emulator(unsigned i) const;

    /** MPKI of every emulator, in configuration order. */
    std::vector<double> mpkis() const;

    /**
     * Register the whole rig's stats into @p registry: the platform's
     * groups plus one "dragonhead<i>" group per emulator.
     */
    void registerStats(obs::StatsRegistry& registry) const;

    VirtualPlatform& platform() { return platform_; }

  private:
    VirtualPlatform platform_;
    std::vector<std::unique_ptr<Dragonhead>> emulators_;
};

} // namespace cosim

#endif // COSIM_CORE_COSIM_HH
