/**
 * @file
 * Standard experiment configurations from the paper's methodology.
 *
 * Section 4.1: SCMP (8 cores), MCMP (16 cores), LCMP (32 cores),
 * single-threaded cores; LLC sweep 4 MB - 256 MB at 64 B lines
 * (Figures 4-6); line sweep 64 B - 4 KB at 32 MB (Figure 7); Table 2 on
 * a Pentium 4 (8 KB L1, 512 KB L2); Figure 8 on a 16-way 3.0 GHz Xeon
 * with a stride hardware prefetcher.
 */

#ifndef COSIM_CORE_EXPERIMENT_HH
#define COSIM_CORE_EXPERIMENT_HH

#include <cstdint>
#include <string>
#include <vector>

#include "core/cosim.hh"

namespace cosim {
namespace presets {

/** Pentium 4-like core used for the Table 2 characterization. */
CpuParams pentium4Cpu();

/**
 * A CMP core for Figures 4-7: private 32 KB L1D filtering the FSB, no
 * private L2, passive LLC emulation beyond (co-simulation mode).
 */
CpuParams cmpCoreCpu();

/**
 * Xeon-like core for the Figure 8 prefetching study: L1 + 1 MB L2 in
 * timing mode, optional stride prefetcher.
 */
CpuParams xeonCpu(bool prefetch_enabled);

/** The paper's three CMP scales. @p name is "SCMP"/"MCMP"/"LCMP". */
PlatformParams cmpPlatform(const std::string& name, unsigned n_cores);
PlatformParams scmp(); ///< 8 cores
PlatformParams mcmp(); ///< 16 cores
PlatformParams lcmp(); ///< 32 cores

/** The 16-way Unisys Xeon SMP stand-in for Figure 8. */
PlatformParams unisysSmp(unsigned n_cores, bool prefetch_enabled);

/** {4, 8, 16, 32, 64, 128, 256} MB. */
std::vector<std::uint64_t> llcSizeSweep();

/** {64, 128, 256, 512, 1024, 2048, 4096} bytes. */
std::vector<std::uint32_t> lineSizeSweep();

/** Dragonhead configured for one (size, line) point of the sweep. */
DragonheadParams llcConfig(std::uint64_t size, std::uint32_t line_size);

/** One emulator per entry of llcSizeSweep() at 64 B lines. */
std::vector<DragonheadParams> llcSizeSweepEmulators();

/** One emulator per entry of lineSizeSweep() at 32 MB. */
std::vector<DragonheadParams> lineSizeSweepEmulators();

} // namespace presets
} // namespace cosim

#endif // COSIM_CORE_EXPERIMENT_HH
