#include "core/cosim.hh"

#include <chrono>
#include <stdexcept>

#include "base/logging.hh"
#include "obs/host_profiler.hh"

namespace cosim {

namespace {

/** Chunk size when parallel mode is on and the user did not pick one. */
constexpr std::size_t kDefaultBatchTxns = 4096;

} // namespace

CoSimulation::CoSimulation(const CoSimParams& params)
    : platform_(params.platform)
{
    fatal_if(!params.platform.cpu.emitFsbTraffic,
             "co-simulation requires cores that emit FSB traffic "
             "(set CpuParams::emitFsbTraffic)");

    if (params.emulationThreads > 0 && !params.emulators.empty()) {
        EmulatorBankParams bp;
        bp.emulators = params.emulators;
        bp.nThreads = params.emulationThreads;
        bp.chunkTxns = params.fsbBatchTxns > 0 ? params.fsbBatchTxns
                                               : kDefaultBatchTxns;
        bp.degradeToSerial = params.degradeToSerial;
        bank_ = std::make_unique<AsyncEmulatorBank>(bp);
        platform_.fsb().attach(bank_.get());
        // Batch the bus itself so the bank receives whole chunks instead
        // of paying a buffered copy per transaction.
        platform_.fsb().setBatchCapacity(bp.chunkTxns);
        obs::HostProfiler::global().noteEmulationThreads(
            bank_->nThreads());
        return;
    }

    for (const DragonheadParams& dh : params.emulators) {
        emulators_.push_back(std::make_unique<Dragonhead>(dh));
        platform_.fsb().attach(emulators_.back().get());
    }
    if (params.fsbBatchTxns > 1)
        platform_.fsb().setBatchCapacity(params.fsbBatchTxns);
}

CoSimulation::~CoSimulation()
{
    if (bank_) {
        platform_.fsb().flush();
        platform_.fsb().detach(bank_.get());
        return;
    }
    platform_.fsb().flush();
    for (auto& dh : emulators_)
        platform_.fsb().detach(dh.get());
}

RunResult
CoSimulation::run(Workload& workload, const WorkloadConfig& cfg)
{
    if (bank_)
        bank_->reset();
    for (auto& dh : emulators_)
        dh->reset();

    RunResult result = platform_.run(workload, cfg);

    if (bank_) {
        // The platform flushed the bus, but workers may still be
        // emulating queued chunks; the emulation window only closes when
        // the last one drains, so that time belongs to the run.
        auto t0 = std::chrono::steady_clock::now();
        bank_->sync();
        double drain = std::chrono::duration<double>(
                           std::chrono::steady_clock::now() - t0)
                           .count();
        result.hostSeconds += drain;
        obs::HostProfiler::global().accumulate("run.drain", drain);
        obs::HostProfiler::global().addSimulated(0, drain);
    }
    return result;
}

void
CoSimulation::prepareReplay()
{
    if (bank_)
        bank_->reset();
    for (auto& dh : emulators_)
        dh->reset();
    platform_.fsb().resetStats();
}

RunResult
CoSimulation::finishReplay(const ReplayResult& rr,
                           const std::string& source,
                           ReplayResult* details)
{
    // Throw rather than fatal(): a sweep cell replaying a corrupt
    // stream is isolatable under --keep-going; standalone callers get
    // a clean fatal from their own catch (see the header contract).
    if (!rr.ok) {
        throw std::runtime_error("cannot replay FSB stream (" + source +
                                 "): " + rr.error);
    }

    RunResult result;
    result.hostSeconds = rr.seconds;
    if (bank_) {
        // Same accounting as run(): the emulation window closes when
        // the last queued chunk drains.
        auto t0 = std::chrono::steady_clock::now();
        bank_->sync();
        double drain = std::chrono::duration<double>(
                           std::chrono::steady_clock::now() - t0)
                           .count();
        result.hostSeconds += drain;
        obs::HostProfiler::global().accumulate("run.drain", drain);
    }

    result.workload = rr.meta.workload;
    result.platform = platform_.params().name;
    result.nThreads = rr.meta.nCores;
    result.totalInsts = rr.meta.totalInsts;
    result.verified = rr.meta.verified;
    result.replayedFrom = source;
    obs::HostProfiler::global().addSimulated(0, result.hostSeconds);
    if (details != nullptr)
        *details = rr;
    return result;
}

RunResult
CoSimulation::replayFile(const std::string& path, ReplayResult* details)
{
    prepareReplay();
    ReplayDriver driver;
    return finishReplay(driver.replayFile(path, platform_.fsb()),
                        "file:" + path, details);
}

RunResult
CoSimulation::replayBuffer(
    std::shared_ptr<const std::vector<std::uint8_t>> stream,
    const std::string& source, ReplayResult* details)
{
    prepareReplay();
    ReplayDriver driver;
    return finishReplay(
        driver.replayBuffer(std::move(stream), platform_.fsb()), source,
        details);
}

RunResult
CoSimulation::replaySampledFile(const std::string& path,
                                const SamplingPlan& plan,
                                SampledReplayStats* sstats,
                                ReplayResult* details, bool warming,
                                unsigned warm_stride)
{
    prepareReplay();
    SampledReplayDriver driver;
    auto t0 = std::chrono::steady_clock::now();
    ReplayResult rr = driver.replayFile(path, plan, platform_.fsb(),
                                        sstats, warming, warm_stride);
    // The driver never reads the host clock (interval selection must
    // stay a pure function of the stream); the pass is timed here.
    rr.seconds = std::chrono::duration<double>(
                     std::chrono::steady_clock::now() - t0)
                     .count();
    obs::HostProfiler::global().accumulate("replay.sampled", rr.seconds);
    return finishReplay(rr, "sampled:file:" + path, details);
}

RunResult
CoSimulation::replaySampledBuffer(
    std::shared_ptr<const std::vector<std::uint8_t>> stream,
    const std::string& source, const SamplingPlan& plan,
    SampledReplayStats* sstats, ReplayResult* details, bool warming,
    unsigned warm_stride)
{
    prepareReplay();
    SampledReplayDriver driver;
    auto t0 = std::chrono::steady_clock::now();
    ReplayResult rr = driver.replayBuffer(std::move(stream), plan,
                                          platform_.fsb(), sstats,
                                          warming, warm_stride);
    rr.seconds = std::chrono::duration<double>(
                     std::chrono::steady_clock::now() - t0)
                     .count();
    obs::HostProfiler::global().accumulate("replay.sampled", rr.seconds);
    return finishReplay(rr, "sampled:" + source, details);
}

const Dragonhead&
CoSimulation::emulator(unsigned i) const
{
    if (bank_)
        return bank_->emulator(i);
    panic_if(i >= emulators_.size(), "emulator index %u out of range", i);
    return *emulators_[i];
}

void
CoSimulation::registerStats(obs::StatsRegistry& registry) const
{
    platform_.registerStats(registry);
    for (unsigned i = 0; i < nEmulators(); ++i) {
        stats::Group& g = emulator(i).registerStats(
            registry, "dragonhead" + std::to_string(i));
        if (!bank_)
            continue;
        const AsyncEmulatorBank* bank = bank_.get();
        g.add("batches", [bank, i] {
            return double(bank->emulatorStats(i).batches);
        });
        g.add("queue_peak", [bank, i] {
            return double(bank->queuePeak(i));
        });
    }
}

void
CoSimulation::setHeartbeat(obs::HeartbeatSlot* slot)
{
    platform_.setHeartbeat(slot);
    if (bank_)
        bank_->setHeartbeat(slot);
}

std::vector<double>
CoSimulation::mpkis() const
{
    std::vector<double> out;
    const unsigned n = nEmulators();
    out.reserve(n);
    for (unsigned i = 0; i < n; ++i)
        out.push_back(emulator(i).results().mpki());
    return out;
}

} // namespace cosim
