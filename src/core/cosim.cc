#include "core/cosim.hh"

#include "base/logging.hh"

namespace cosim {

CoSimulation::CoSimulation(const CoSimParams& params)
    : platform_(params.platform)
{
    fatal_if(!params.platform.cpu.emitFsbTraffic,
             "co-simulation requires cores that emit FSB traffic "
             "(set CpuParams::emitFsbTraffic)");
    for (const DragonheadParams& dh : params.emulators) {
        emulators_.push_back(std::make_unique<Dragonhead>(dh));
        platform_.fsb().attach(emulators_.back().get());
    }
}

CoSimulation::~CoSimulation()
{
    for (auto& dh : emulators_)
        platform_.fsb().detach(dh.get());
}

RunResult
CoSimulation::run(Workload& workload, const WorkloadConfig& cfg)
{
    for (auto& dh : emulators_)
        dh->reset();
    return platform_.run(workload, cfg);
}

const Dragonhead&
CoSimulation::emulator(unsigned i) const
{
    panic_if(i >= emulators_.size(), "emulator index %u out of range", i);
    return *emulators_[i];
}

void
CoSimulation::registerStats(obs::StatsRegistry& registry) const
{
    platform_.registerStats(registry);
    for (std::size_t i = 0; i < emulators_.size(); ++i) {
        emulators_[i]->registerStats(registry,
                                     "dragonhead" + std::to_string(i));
    }
}

std::vector<double>
CoSimulation::mpkis() const
{
    std::vector<double> out;
    out.reserve(emulators_.size());
    for (const auto& dh : emulators_)
        out.push_back(dh->results().mpki());
    return out;
}

} // namespace cosim
