/**
 * @file
 * Result records shared by the sweep harness and the benches.
 */

#ifndef COSIM_CORE_RESULTS_HH
#define COSIM_CORE_RESULTS_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "base/types.hh"

namespace cosim {

/** One measured point of an LLC sweep. */
struct SweepPoint
{
    std::string workload;
    unsigned nCores = 0;
    std::uint64_t llcSize = 0;
    std::uint32_t lineSize = 0;

    std::uint64_t llcAccesses = 0;
    std::uint64_t llcMisses = 0;
    InstCount insts = 0;

    double mpki() const
    {
        return insts == 0 ? 0.0
                          : 1000.0 * static_cast<double>(llcMisses) /
                                static_cast<double>(insts);
    }
};

/**
 * A figure's worth of sweep points: one named series per workload over a
 * common x axis (cache sizes or line sizes).
 */
class FigureData
{
  public:
    FigureData(std::string figure_id, std::string x_label,
               std::vector<std::string> x_ticks);

    /** Append a workload's series (must match the x-axis length). */
    void addSeries(const std::string& workload,
                   const std::vector<double>& values,
                   std::vector<SweepPoint> points = {});

    /**
     * Record a workload whose sweep cell failed (see --keep-going):
     * it keeps its figure row, rendered with "-" placeholders and an
     * empty CSV row, tagged with @p status ("failed").
     */
    void addFailedSeries(const std::string& workload,
                         const std::string& status = "failed");

    const std::string& figureId() const { return figureId_; }
    const std::vector<std::string>& xTicks() const { return xTicks_; }
    const std::vector<std::string>& seriesNames() const { return names_; }
    const std::vector<double>& series(const std::string& workload) const;
    const std::vector<SweepPoint>& points(const std::string& workload)
        const;

    /** Cell outcome for @p workload: "ok", "retried", or "failed". */
    const std::string& status(const std::string& workload) const;

    /** Override the recorded outcome (e.g. "retried") of a series. */
    void setStatus(const std::string& workload, const std::string& status);

    /**
     * Record a sampled run's relative MPKI error vs its full-run
     * reference for @p workload. Once any series carries one, the CSV
     * gains a trailing "sampling_err" column (empty for series
     * without).
     */
    void setSamplingError(const std::string& workload, double rel_error);

    /** The recorded sampling error; negative when none was set. */
    double samplingError(const std::string& workload) const;

    /** Paper-style printout: one row per workload, one column per tick. */
    std::string render(const std::string& value_label) const;

    /**
     * Persist to CSV: one row per workload, plus a trailing "status"
     * column so downstream tooling can tell a failed cell's empty row
     * from a real zero.
     */
    void writeCsv(const std::string& path) const;

  private:
    std::string figureId_;
    std::string xLabel_;
    std::vector<std::string> xTicks_;
    std::vector<std::string> names_;
    std::map<std::string, std::vector<double>> series_;
    std::map<std::string, std::vector<SweepPoint>> points_;
    std::map<std::string, std::string> status_;
    std::map<std::string, double> samplingErr_;
};

} // namespace cosim

#endif // COSIM_CORE_RESULTS_HH
