#include "core/emulator_bank.hh"

#include "base/logging.hh"

namespace cosim {

AsyncEmulatorBank::AsyncEmulatorBank(const EmulatorBankParams& params)
    : params_(params)
{
    fatal_if(params_.emulators.empty(),
             "emulator bank needs at least one Dragonhead");
    if (params_.chunkTxns == 0)
        params_.chunkTxns = 1;
    if (params_.queueChunks == 0)
        params_.queueChunks = 1;

    const auto n_emus = static_cast<unsigned>(params_.emulators.size());
    unsigned n_threads = params_.nThreads == 0 ? n_emus : params_.nThreads;
    // More workers than emulators would just idle.
    if (n_threads > n_emus)
        n_threads = n_emus;

    emulators_.reserve(n_emus);
    for (const DragonheadParams& p : params_.emulators)
        emulators_.push_back(std::make_unique<Dragonhead>(p));
    {
        // No worker exists yet, but the analysis (rightly) has no way
        // to know that; the uncontended lock documents and proves it.
        LockGuard lock(syncMutex_);
        stats_.resize(n_emus);
        chunksDone_.resize(n_threads, 0);
    }

    workers_.reserve(n_threads);
    for (unsigned w = 0; w < n_threads; ++w)
        workers_.push_back(std::make_unique<Worker>(params_.queueChunks));
    for (unsigned i = 0; i < n_emus; ++i)
        workers_[i % n_threads]->emulators.push_back(i);

    pending_.reserve(params_.chunkTxns);

    for (unsigned w = 0; w < n_threads; ++w)
        workers_[w]->thread = std::thread([this, w] { workerLoop(w); });
}

AsyncEmulatorBank::~AsyncEmulatorBank()
{
    // Deliver anything still buffered so a bank that is destroyed without
    // an explicit sync() leaves its emulators in the same state serial
    // snooping would have.
    publishPending();
    for (auto& worker : workers_)
        worker->queue.close();
    for (auto& worker : workers_)
        worker->thread.join();
}

void
AsyncEmulatorBank::observe(const BusTransaction& txn)
{
    pending_.push_back(txn);
    if (pending_.size() >= params_.chunkTxns)
        publishPending();
}

void
AsyncEmulatorBank::observeBatch(const BusTransaction* txns, std::size_t n)
{
    pending_.insert(pending_.end(), txns, txns + n);
    if (pending_.size() >= params_.chunkTxns)
        publishPending();
}

void
AsyncEmulatorBank::publishPending()
{
    if (pending_.empty())
        return;
    Chunk chunk = std::make_shared<const std::vector<BusTransaction>>(
        std::move(pending_));
    pending_ = {};
    pending_.reserve(params_.chunkTxns);
    for (auto& worker : workers_) {
        worker->queue.push(chunk);
        ++worker->chunksPushed;
    }
}

bool
AsyncEmulatorBank::drained() const
{
    for (std::size_t w = 0; w < workers_.size(); ++w) {
        // chunksPushed is producer-private; sync() runs on the producer.
        if (chunksDone_[w] != workers_[w]->chunksPushed)
            return false;
    }
    return true;
}

void
AsyncEmulatorBank::sync()
{
    publishPending();
    LockGuard lock(syncMutex_);
    while (!drained())
        syncCv_.wait(lock);
}

void
AsyncEmulatorBank::reset()
{
    sync();
    // Workers are parked in pop() after a sync, so emulator state is
    // exclusively ours here; the counters keep their lock discipline.
    for (auto& emu : emulators_)
        emu->reset();
    {
        LockGuard lock(syncMutex_);
        for (auto& s : stats_)
            s = EmulatorWorkerStats{};
    }
    for (auto& worker : workers_)
        worker->queue.resetPeak();
}

Dragonhead&
AsyncEmulatorBank::emulator(unsigned i)
{
    panic_if(i >= emulators_.size(), "emulator index %u out of range", i);
    return *emulators_[i];
}

const Dragonhead&
AsyncEmulatorBank::emulator(unsigned i) const
{
    panic_if(i >= emulators_.size(), "emulator index %u out of range", i);
    return *emulators_[i];
}

EmulatorWorkerStats
AsyncEmulatorBank::emulatorStats(unsigned i) const
{
    // Returned by value under the lock: handing out a reference into
    // stats_ would escape the capability (exactly the pattern
    // -Wthread-safety exists to reject).
    LockGuard lock(syncMutex_);
    panic_if(i >= stats_.size(), "emulator index %u out of range", i);
    return stats_[i];
}

std::size_t
AsyncEmulatorBank::queuePeak(unsigned i) const
{
    panic_if(i >= emulators_.size(), "emulator index %u out of range", i);
    return workers_[i % workers_.size()]->queue.peakDepth();
}

void
AsyncEmulatorBank::workerLoop(unsigned w)
{
    Worker& worker = *workers_[w];
    Chunk chunk;
    while (worker.queue.pop(chunk)) {
        const std::vector<BusTransaction>& txns = *chunk;
        for (unsigned idx : worker.emulators) {
            Dragonhead& emu = *emulators_[idx];
            for (const BusTransaction& txn : txns)
                emu.observe(txn);
        }
        const std::size_t n_txns = txns.size();
        chunk.reset();
        {
            LockGuard lock(syncMutex_);
            for (unsigned idx : worker.emulators) {
                ++stats_[idx].batches;
                stats_[idx].txns += n_txns;
            }
            ++chunksDone_[w];
        }
        syncCv_.notifyAll();
    }
}

} // namespace cosim
