#include "core/emulator_bank.hh"

#include "base/fault.hh"
#include "base/flight_recorder.hh"
#include "base/logging.hh"
#include "obs/host_profiler.hh"
#include "obs/metrics.hh"

namespace cosim {

AsyncEmulatorBank::AsyncEmulatorBank(const EmulatorBankParams& params)
    : params_(params)
{
    fatal_if(params_.emulators.empty(),
             "emulator bank needs at least one Dragonhead");
    if (params_.chunkTxns == 0)
        params_.chunkTxns = 1;
    if (params_.queueChunks == 0)
        params_.queueChunks = 1;

    const auto n_emus = static_cast<unsigned>(params_.emulators.size());
    unsigned n_threads = params_.nThreads == 0 ? n_emus : params_.nThreads;
    // More workers than emulators would just idle.
    if (n_threads > n_emus)
        n_threads = n_emus;

    emulators_.reserve(n_emus);
    for (const DragonheadParams& p : params_.emulators)
        emulators_.push_back(std::make_unique<Dragonhead>(p));
    {
        // No worker exists yet, but the analysis (rightly) has no way
        // to know that; the uncontended lock documents and proves it.
        LockGuard lock(syncMutex_);
        stats_.resize(n_emus);
        chunksDone_.resize(n_threads, 0);
        workerFailed_.resize(n_threads, 0);
        failedChunks_.resize(n_threads);
    }
    degraded_.resize(n_threads, 0);

    workers_.reserve(n_threads);
    for (unsigned w = 0; w < n_threads; ++w)
        workers_.push_back(std::make_unique<Worker>(params_.queueChunks));
    for (unsigned i = 0; i < n_emus; ++i)
        workers_[i % n_threads]->emulators.push_back(i);

    pending_.reserve(params_.chunkTxns);

    for (unsigned w = 0; w < n_threads; ++w)
        workers_[w]->thread = std::thread([this, w] { workerLoop(w); });
}

AsyncEmulatorBank::~AsyncEmulatorBank()
{
    // Deliver anything still buffered so a bank that is destroyed without
    // an explicit sync() leaves its emulators in the same state serial
    // snooping would have. Never let an exception escape the dtor: a
    // failed bank must still join its threads.
    try {
        publishPending();
    } catch (const std::exception& e) {
        warn("emulator bank teardown dropped pending chunk: %s",
             e.what());
    }
    for (auto& worker : workers_)
        worker->queue.close();
    for (auto& worker : workers_)
        worker->thread.join();
}

void
AsyncEmulatorBank::observe(const BusTransaction& txn)
{
    pending_.push_back(txn);
    if (pending_.size() >= params_.chunkTxns)
        publishPending();
}

void
AsyncEmulatorBank::observeBatch(const BusTransaction* txns, std::size_t n)
{
    pending_.insert(pending_.end(), txns, txns + n);
    if (pending_.size() >= params_.chunkTxns)
        publishPending();
}

void
AsyncEmulatorBank::publishPending()
{
    if (pending_.empty())
        return;
    Chunk chunk = std::make_shared<const std::vector<BusTransaction>>(
        std::move(pending_));
    pending_ = {};
    pending_.reserve(params_.chunkTxns);
    if (obs::metrics::enabled()) {
        static const obs::metrics::Histogram chunk_txns =
            obs::metrics::histogram("emu.chunk_txns",
                                    "transactions per published chunk");
        chunk_txns.record(chunk->size());
    }
    FlightRecorder::note(FrKind::ChunkPublished, "emu.bank",
                         chunk->size());
    obs::HeartbeatSlot* beat =
        heartbeat_.load(std::memory_order_relaxed);
    for (unsigned w = 0; w < workers_.size(); ++w) {
        Worker& worker = *workers_[w];
        if (degraded_[w]) {
            emulateInline(w, chunk);
            continue;
        }
        // A false return means the worker poisoned its queue (died);
        // the poison-aware wait is what keeps a full queue from
        // deadlocking this thread against a dead consumer.
        if (worker.queue.push(chunk)) {
            ++worker.chunksPushed;
            if (beat != nullptr || obs::metrics::enabled()) {
                const std::uint64_t depth = worker.queue.size();
                if (beat != nullptr)
                    beat->noteQueueDepth(depth);
                if (obs::metrics::enabled()) {
                    static const obs::metrics::Histogram queue_depth =
                        obs::metrics::histogram(
                            "emu.queue_depth",
                            "SPSC chunk-queue depth after push");
                    queue_depth.record(depth);
                }
            }
        } else {
            handleDeadWorker(w, chunk);
        }
    }
}

void
AsyncEmulatorBank::emulateInline(unsigned w, const Chunk& chunk)
{
    Worker& worker = *workers_[w];
    const std::vector<BusTransaction>& txns = *chunk;
    for (unsigned idx : worker.emulators) {
        Dragonhead& emu = *emulators_[idx];
        for (const BusTransaction& txn : txns)
            emu.observe(txn);
    }
    LockGuard lock(syncMutex_);
    for (unsigned idx : worker.emulators) {
        ++stats_[idx].batches;
        stats_[idx].txns += txns.size();
    }
}

void
AsyncEmulatorBank::handleDeadWorker(unsigned w, const Chunk& chunk)
{
    if (!params_.degradeToSerial) {
        // Drop the chunk for this worker; the recorded exception
        // surfaces at the next sync(), which is what fails the run.
        return;
    }
    takeOverWorker(w);
    emulateInline(w, chunk);
}

void
AsyncEmulatorBank::takeOverWorker(unsigned w)
{
    Worker& worker = *workers_[w];
    Chunk failed;
    std::string what;
    {
        LockGuard lock(syncMutex_);
        failed = failedChunks_[w];
        failedChunks_[w] = nullptr;
        what = workerErrorText_;
    }
    warn("emulation worker %u died (%s); degrading its %zu "
         "emulator(s) to serial emulation on the workload thread",
         w, what.c_str(), worker.emulators.size());
    if (failed) {
        // The worker died before touching this chunk, so re-running it
        // here keeps results bit-identical to serial snooping.
        emulateInline(w, failed);
    } else {
        warn("worker %u died mid-chunk; its emulators may have "
             "partially observed a chunk (results tainted)", w);
    }
    for (Chunk& c : worker.queue.drainNow())
        emulateInline(w, c);
    degraded_[w] = 1;
    obs::HostProfiler::global().noteDegradedToSerial(1);
}

bool
AsyncEmulatorBank::drained() const
{
    for (std::size_t w = 0; w < workers_.size(); ++w) {
        // A dead worker never catches up; its chunks were either
        // dropped (error path) or emulated inline (degrade path).
        if (workerFailed_[w])
            continue;
        // chunksPushed is producer-private; sync() runs on the producer.
        if (chunksDone_[w] != workers_[w]->chunksPushed)
            return false;
    }
    return true;
}

void
AsyncEmulatorBank::sync()
{
    publishPending();
    std::exception_ptr err;
    {
        LockGuard lock(syncMutex_);
        while (!drained())
            syncCv_.wait(lock);
        err = workerError_;
    }
    if (!err)
        return;
    if (params_.degradeToSerial) {
        // Adopt any failed worker the producer has not pushed to since
        // the death (sync() may be the first to observe it).
        for (unsigned w = 0; w < workers_.size(); ++w) {
            bool dead = false;
            {
                LockGuard lock(syncMutex_);
                dead = workerFailed_[w] != 0;
            }
            if (dead && !degraded_[w]) {
                takeOverWorker(w);
                degraded_[w] = 1;
            }
        }
        return;
    }
    std::rethrow_exception(err);
}

void
AsyncEmulatorBank::reset()
{
    sync();
    // Workers are parked in pop() after a sync, so emulator state is
    // exclusively ours here; the counters keep their lock discipline.
    for (auto& emu : emulators_)
        emu->reset();
    {
        LockGuard lock(syncMutex_);
        for (auto& s : stats_)
            s = EmulatorWorkerStats{};
    }
    for (auto& worker : workers_)
        worker->queue.resetPeak();
}

Dragonhead&
AsyncEmulatorBank::emulator(unsigned i)
{
    panic_if(i >= emulators_.size(), "emulator index %u out of range", i);
    return *emulators_[i];
}

const Dragonhead&
AsyncEmulatorBank::emulator(unsigned i) const
{
    panic_if(i >= emulators_.size(), "emulator index %u out of range", i);
    return *emulators_[i];
}

EmulatorWorkerStats
AsyncEmulatorBank::emulatorStats(unsigned i) const
{
    // Returned by value under the lock: handing out a reference into
    // stats_ would escape the capability (exactly the pattern
    // -Wthread-safety exists to reject).
    LockGuard lock(syncMutex_);
    panic_if(i >= stats_.size(), "emulator index %u out of range", i);
    return stats_[i];
}

std::size_t
AsyncEmulatorBank::queuePeak(unsigned i) const
{
    panic_if(i >= emulators_.size(), "emulator index %u out of range", i);
    return workers_[i % workers_.size()]->queue.peakDepth();
}

unsigned
AsyncEmulatorBank::failedWorkers() const
{
    LockGuard lock(syncMutex_);
    unsigned n = 0;
    for (unsigned char failed : workerFailed_)
        n += failed != 0;
    return n;
}

unsigned
AsyncEmulatorBank::degradedWorkers() const
{
    unsigned n = 0;
    for (unsigned char degraded : degraded_)
        n += degraded != 0;
    return n;
}

void
AsyncEmulatorBank::workerLoop(unsigned w)
{
    FlightRecorder::setThreadLabel("emu.worker/" + std::to_string(w));
    Worker& worker = *workers_[w];
    Chunk chunk;
    while (worker.queue.pop(chunk)) {
        // Set once emulator state may have changed: a chunk that died
        // before this point is clean and can be re-run elsewhere.
        bool touched = false;
        try {
            COSIM_FAULT_POINT("emu.worker.crash");
            const std::vector<BusTransaction>& txns = *chunk;
            touched = true;
            for (unsigned idx : worker.emulators) {
                Dragonhead& emu = *emulators_[idx];
                for (const BusTransaction& txn : txns)
                    emu.observe(txn);
            }
            const std::size_t n_txns = txns.size();
            {
                LockGuard lock(syncMutex_);
                for (unsigned idx : worker.emulators) {
                    ++stats_[idx].batches;
                    stats_[idx].txns += n_txns;
                }
                ++chunksDone_[w];
            }
            FlightRecorder::note(FrKind::ChunkEmulated, "emu.worker",
                                 n_txns, w);
            obs::HeartbeatSlot* beat =
                heartbeat_.load(std::memory_order_relaxed);
            if (beat != nullptr)
                beat->pulse();
            chunk.reset();
            syncCv_.notifyAll();
        } catch (...) {
            const std::exception_ptr err = std::current_exception();
            std::string what = "unknown exception";
            try {
                std::rethrow_exception(err);
            } catch (const std::exception& e) {
                what = e.what();
            } catch (...) {
            }
            {
                LockGuard lock(syncMutex_);
                if (!workerError_) {
                    workerError_ = err;
                    workerErrorText_ = what;
                }
                workerFailed_[w] = 1;
                failedChunks_[w] = touched ? nullptr : chunk;
            }
            FlightRecorder::note(FrKind::WorkerDied, "emu.worker", w);
            // Unblock a producer waiting on a full queue and a sync()
            // waiting on chunksDone_ -- this worker will never catch up.
            worker.queue.poison();
            syncCv_.notifyAll();
            return;
        }
    }
}

} // namespace cosim
