#include "core/results.hh"

#include <cstdio>

#include "base/csv.hh"
#include "base/logging.hh"
#include "base/str.hh"
#include "base/table.hh"

namespace cosim {

FigureData::FigureData(std::string figure_id, std::string x_label,
                       std::vector<std::string> x_ticks)
    : figureId_(std::move(figure_id)), xLabel_(std::move(x_label)),
      xTicks_(std::move(x_ticks))
{
    fatal_if(xTicks_.empty(), "%s: figure needs a non-empty x axis",
             figureId_.c_str());
}

void
FigureData::addSeries(const std::string& workload,
                      const std::vector<double>& values,
                      std::vector<SweepPoint> points)
{
    fatal_if(values.size() != xTicks_.size(),
             "%s: series '%s' has %zu values for %zu ticks",
             figureId_.c_str(), workload.c_str(), values.size(),
             xTicks_.size());
    if (series_.find(workload) == series_.end())
        names_.push_back(workload);
    series_[workload] = values;
    points_[workload] = std::move(points);
    if (status_.find(workload) == status_.end())
        status_[workload] = "ok";
}

void
FigureData::addFailedSeries(const std::string& workload,
                            const std::string& status)
{
    if (series_.find(workload) == series_.end())
        names_.push_back(workload);
    series_[workload] = {};
    points_[workload] = {};
    status_[workload] = status;
}

const std::string&
FigureData::status(const std::string& workload) const
{
    static const std::string kOk = "ok";
    auto it = status_.find(workload);
    return it == status_.end() ? kOk : it->second;
}

void
FigureData::setStatus(const std::string& workload,
                      const std::string& status)
{
    fatal_if(series_.find(workload) == series_.end(),
             "%s: no series for workload '%s'", figureId_.c_str(),
             workload.c_str());
    status_[workload] = status;
}

void
FigureData::setSamplingError(const std::string& workload,
                             double rel_error)
{
    fatal_if(series_.find(workload) == series_.end(),
             "%s: no series for workload '%s'", figureId_.c_str(),
             workload.c_str());
    samplingErr_[workload] = rel_error;
}

double
FigureData::samplingError(const std::string& workload) const
{
    auto it = samplingErr_.find(workload);
    return it == samplingErr_.end() ? -1.0 : it->second;
}

const std::vector<double>&
FigureData::series(const std::string& workload) const
{
    auto it = series_.find(workload);
    fatal_if(it == series_.end(), "%s: no series for workload '%s'",
             figureId_.c_str(), workload.c_str());
    return it->second;
}

const std::vector<SweepPoint>&
FigureData::points(const std::string& workload) const
{
    auto it = points_.find(workload);
    fatal_if(it == points_.end(), "%s: no points for workload '%s'",
             figureId_.c_str(), workload.c_str());
    return it->second;
}

std::string
FigureData::render(const std::string& value_label) const
{
    TableWriter table(figureId_ + " -- " + value_label + " vs " + xLabel_);
    std::vector<std::string> header;
    header.push_back("Workload");
    for (const auto& tick : xTicks_)
        header.push_back(tick);
    table.setHeader(header);

    for (const auto& name : names_) {
        std::vector<std::string> row;
        row.push_back(name);
        const std::vector<double>& values = series_.at(name);
        if (values.empty()) {
            // A failed cell keeps its row; "-" placeholders make the
            // hole visible instead of faking zeros.
            for (std::size_t i = 0; i < xTicks_.size(); ++i)
                row.push_back("-");
        } else {
            for (double v : values)
                row.push_back(formatFixed(v, 3));
        }
        table.addRow(row);
    }
    return table.renderAscii();
}

void
FigureData::writeCsv(const std::string& path) const
{
    CsvWriter csv(path);
    const bool sampled = !samplingErr_.empty();
    std::vector<std::string> header;
    header.push_back("workload");
    for (const auto& tick : xTicks_)
        header.push_back(tick);
    header.push_back("status");
    if (sampled)
        header.push_back("sampling_err");
    csv.writeRow(header);
    for (const auto& name : names_) {
        std::vector<std::string> row;
        row.push_back(name);
        const std::vector<double>& values = series_.at(name);
        for (double v : values) {
            char buf[64];
            std::snprintf(buf, sizeof(buf), "%.10g", v);
            row.emplace_back(buf);
        }
        // A failed series is empty: pad so every row has a field per
        // tick and the status lands in the status column.
        for (std::size_t i = values.size(); i < xTicks_.size(); ++i)
            row.emplace_back("");
        row.push_back(status(name));
        if (sampled) {
            const double err = samplingError(name);
            if (err < 0.0) {
                row.emplace_back("");
            } else {
                char buf[64];
                std::snprintf(buf, sizeof(buf), "%.10g", err);
                row.emplace_back(buf);
            }
        }
        csv.writeRow(row);
    }
}

} // namespace cosim
