#include "core/experiment.hh"

#include "base/units.hh"

namespace cosim {
namespace presets {

CpuParams
pentium4Cpu()
{
    CpuParams cpu;
    cpu.baseCpi = 0.85;
    cpu.caches.l1 = {"dl1", 8 * KiB, 64, 4, ReplPolicy::LRU};
    cpu.caches.hasL2 = true;
    cpu.caches.l2 = {"l2", 512 * KiB, 64, 8, ReplPolicy::LRU};
    cpu.l2HitLatency = 18;
    cpu.useDramLatency = true;
    cpu.emitFsbTraffic = false;
    cpu.prefetchEnabled = false;
    return cpu;
}

CpuParams
cmpCoreCpu()
{
    CpuParams cpu;
    cpu.baseCpi = 0.85;
    cpu.caches.l1 = {"dl1", 32 * KiB, 64, 8, ReplPolicy::LRU};
    cpu.caches.hasL2 = false;
    cpu.useDramLatency = false;
    cpu.beyondLatency = 100;
    cpu.emitFsbTraffic = true;
    cpu.prefetchEnabled = false;
    return cpu;
}

CpuParams
xeonCpu(bool prefetch_enabled)
{
    CpuParams cpu;
    cpu.baseCpi = 0.85;
    cpu.caches.l1 = {"dl1", 8 * KiB, 64, 4, ReplPolicy::LRU};
    cpu.caches.hasL2 = true;
    cpu.caches.l2 = {"l2", 512 * KiB, 64, 8, ReplPolicy::LRU};
    cpu.l2HitLatency = 18;
    cpu.useDramLatency = true;
    cpu.emitFsbTraffic = false;
    cpu.prefetchEnabled = prefetch_enabled;
    cpu.prefetch.degree = 2;
    cpu.prefetch.threshold = 2;
    return cpu;
}

PlatformParams
cmpPlatform(const std::string& name, unsigned n_cores)
{
    PlatformParams p;
    p.name = name;
    p.nCores = n_cores;
    p.cpu = cmpCoreCpu();
    p.dex.quantumInsts = 50000;
    p.dex.emitMessages = true;
    return p;
}

PlatformParams
scmp()
{
    return cmpPlatform("SCMP", 8);
}

PlatformParams
mcmp()
{
    return cmpPlatform("MCMP", 16);
}

PlatformParams
lcmp()
{
    return cmpPlatform("LCMP", 32);
}

PlatformParams
unisysSmp(unsigned n_cores, bool prefetch_enabled)
{
    PlatformParams p;
    p.name = "UnisysXeon";
    p.nCores = n_cores;
    p.cpu = xeonCpu(prefetch_enabled);
    // Shared memory system of the era: generous for one core, tight for
    // sixteen memory-bound ones.
    p.dram.baseLatency = 300;
    p.dram.peakBytesPerCycle = 6.0;
    p.dram.prefetchThrottleStart = 0.45;
    p.dram.prefetchThrottleFull = 0.80;
    p.dram.maxLatencyInflation = 4.0;
    p.dex.quantumInsts = 50000;
    p.dex.emitMessages = true;
    return p;
}

std::vector<std::uint64_t>
llcSizeSweep()
{
    return {4 * MiB, 8 * MiB, 16 * MiB, 32 * MiB,
            64 * MiB, 128 * MiB, 256 * MiB};
}

std::vector<std::uint32_t>
lineSizeSweep()
{
    return {64, 128, 256, 512, 1024, 2048, 4096};
}

DragonheadParams
llcConfig(std::uint64_t size, std::uint32_t line_size)
{
    DragonheadParams dh;
    dh.llc.name = "llc" + formatSize(size) + "x" +
                  std::to_string(line_size);
    dh.llc.size = size;
    dh.llc.lineSize = line_size;
    dh.llc.assoc = 16;
    dh.llc.repl = ReplPolicy::LRU;
    dh.nSlices = 4;
    dh.maxCores = 64;
    dh.cb.samplePeriodUs = 500;
    dh.cb.coreFreqGhz = 3.0;
    return dh;
}

std::vector<DragonheadParams>
llcSizeSweepEmulators()
{
    std::vector<DragonheadParams> out;
    for (std::uint64_t size : llcSizeSweep())
        out.push_back(llcConfig(size, 64));
    return out;
}

std::vector<DragonheadParams>
lineSizeSweepEmulators()
{
    std::vector<DragonheadParams> out;
    for (std::uint32_t line : lineSizeSweep())
        out.push_back(llcConfig(32 * MiB, line));
    return out;
}

} // namespace presets
} // namespace cosim
