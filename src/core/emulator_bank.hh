/**
 * @file
 * Host-parallel bank of passive Dragonhead emulators.
 *
 * The physical Dragonhead board emulated its cache slices on four CC
 * FPGAs *concurrently with* the workload's execution; the serial software
 * reproduction lost that, paying every emulator's cache-model cost on the
 * one host thread that runs the workload. The AsyncEmulatorBank restores
 * the overlap: it attaches to the front-side bus as a single snooper,
 * accumulates transactions into fixed-size chunks, and ships each chunk
 * through a bounded SPSC queue to worker threads that own the Dragonhead
 * instances. Emulation is passive and the emulators share no state, so
 * every emulator still sees the complete transaction sequence in issue
 * order -- results are bit-identical to serial snooping (a test suite
 * enforces this), only the host wall-clock changes.
 *
 * With more emulators than workers, emulator i is pinned to worker
 * i % nThreads; a worker runs its emulators sequentially per chunk.
 * Backpressure: bounded queues block the producing (workload) thread when
 * a worker falls behind, capping buffered history.
 *
 * Failure containment: a worker that throws (including an injected
 * "emu.worker.crash" fault, see base/fault.hh) records the exception,
 * poisons its queue so the producer can never deadlock against it, and
 * exits. The error surfaces as one clean exception from the next
 * sync()/reset() on the workload thread -- never std::terminate. With
 * EmulatorBankParams::degradeToSerial set, the bank instead adopts the
 * dead worker's emulators onto the workload thread (counted in the
 * host.degraded_to_serial stat) and the run continues; results stay
 * bit-identical to serial snooping when the failure happened at a chunk
 * boundary (always true for the injected crash site), and the bank
 * warns when a mid-chunk death may have tainted the dead worker's
 * emulators.
 */

#ifndef COSIM_CORE_EMULATOR_BANK_HH
#define COSIM_CORE_EMULATOR_BANK_HH

#include <atomic>
#include <cstdint>
#include <exception>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "base/annotations.hh"
#include "base/mutex.hh"
#include "base/spsc_queue.hh"
#include "dragonhead/dragonhead.hh"
#include "mem/fsb.hh"
#include "obs/progress.hh"

namespace cosim {

/** Static configuration of the bank. */
struct EmulatorBankParams
{
    /** One passive emulator per entry. */
    std::vector<DragonheadParams> emulators;

    /** Worker threads; 0 = one per emulator. */
    unsigned nThreads = 0;

    /** Transactions per delivery chunk. */
    std::size_t chunkTxns = 4096;

    /** Chunks in flight per worker before the producer blocks. */
    std::size_t queueChunks = 64;

    /**
     * When a worker dies, re-run its emulators serially on the
     * workload thread instead of failing the run at sync().
     */
    bool degradeToSerial = false;
};

/** Per-emulator delivery counters (read after sync()). */
struct EmulatorWorkerStats
{
    std::uint64_t batches = 0; ///< chunks emulated
    std::uint64_t txns = 0;    ///< transactions emulated
};

/** See file comment. */
class AsyncEmulatorBank : public BusSnooper
{
  public:
    explicit AsyncEmulatorBank(const EmulatorBankParams& params);
    ~AsyncEmulatorBank() override;

    AsyncEmulatorBank(const AsyncEmulatorBank&) = delete;
    AsyncEmulatorBank& operator=(const AsyncEmulatorBank&) = delete;

    /** BusSnooper: buffer one transaction into the pending chunk. */
    void observe(const BusTransaction& txn) override;

    /** BusSnooper: buffer a chunk (the batched-FSB delivery path). */
    void observeBatch(const BusTransaction* txns, std::size_t n) override;

    /**
     * Publish the pending partial chunk and block until every worker has
     * drained its queue. Emulator results are only meaningful afterwards.
     *
     * @throws whatever a worker thread threw, rethrown here on the
     * workload thread (unless degradeToSerial absorbed the failure).
     * The bank stays poisoned: every later sync() rethrows too.
     */
    void sync();

    /** sync(), then return every emulator to power-on state. */
    void reset();

    unsigned nEmulators() const
    {
        return static_cast<unsigned>(emulators_.size());
    }

    unsigned nThreads() const
    {
        return static_cast<unsigned>(workers_.size());
    }

    /** Emulator access; call sync() first for settled results. */
    Dragonhead& emulator(unsigned i);
    const Dragonhead& emulator(unsigned i) const;

    /** Delivery counters of emulator @p i (settled after sync()). */
    EmulatorWorkerStats emulatorStats(unsigned i) const;

    /** Queue-depth high-water of the worker owning emulator @p i. */
    std::size_t queuePeak(unsigned i) const;

    /** Workers that died (exception escaped the worker loop). */
    unsigned failedWorkers() const;

    /**
     * Dead workers whose emulators now run on the workload thread.
     * Producer-thread-only, like observe().
     */
    unsigned degradedWorkers() const;

    /**
     * Publish liveness into @p slot: the producer reports SPSC queue
     * depth as chunks are queued, workers pulse after each emulated
     * chunk. Call only while the bank is quiescent (no run in flight);
     * nullptr disables.
     */
    void
    setHeartbeat(obs::HeartbeatSlot* slot)
    {
        heartbeat_.store(slot, std::memory_order_release);
    }

  private:
    /** One immutable chunk, shared by every worker's queue. */
    using Chunk = std::shared_ptr<const std::vector<BusTransaction>>;

    struct Worker
    {
        explicit Worker(std::size_t queue_chunks) : queue(queue_chunks) {}

        SpscQueue<Chunk> queue;
        std::vector<unsigned> emulators; ///< indices into emulators_
        /** Chunks pushed; written and read by the producer thread only. */
        std::uint64_t chunksPushed = 0;
        std::thread thread;
    };

    void publishPending();
    void workerLoop(unsigned w);

    /** Run @p chunk through worker @p w's emulators on this thread. */
    void emulateInline(unsigned w, const Chunk& chunk);

    /**
     * Producer-side response to a dead worker w: degrade it (reclaim
     * its failed + queued chunks, emulate inline from now on) when
     * degradeToSerial is set; otherwise leave the error for sync().
     */
    void handleDeadWorker(unsigned w, const Chunk& chunk);

    /** Degrade worker @p w: adopt its emulators onto this thread. */
    void takeOverWorker(unsigned w);

    /** True once every live worker drained all chunks pushed to it. */
    bool drained() const REQUIRES(syncMutex_);

    EmulatorBankParams params_;
    std::vector<std::unique_ptr<Dragonhead>> emulators_;
    std::vector<std::unique_ptr<Worker>> workers_;
    /** Per-emulator delivery counters, written by the owning workers. */
    std::vector<EmulatorWorkerStats> stats_ GUARDED_BY(syncMutex_);
    /** chunksDone_[w]: chunks fully emulated by worker w. (Lives here,
     * not in Worker, so the analysis can tie it to syncMutex_.) */
    std::vector<std::uint64_t> chunksDone_ GUARDED_BY(syncMutex_);
    /** First worker exception; never cleared, so the bank stays
     * poisoned in non-degrade mode. */
    std::exception_ptr workerError_ GUARDED_BY(syncMutex_);
    /** Rendered workerError_ message, for the degrade-path warning. */
    std::string workerErrorText_ GUARDED_BY(syncMutex_);
    /** workerFailed_[w]: worker w's thread exited on an exception. */
    std::vector<unsigned char> workerFailed_ GUARDED_BY(syncMutex_);
    /** failedChunks_[w]: the chunk worker w held when it died, iff it
     * died *before* emulating any of it (clean chunk boundary); null
     * for a mid-chunk death, where re-running would double-count. */
    std::vector<Chunk> failedChunks_ GUARDED_BY(syncMutex_);
    /** degraded_[w]: producer emulates worker w's chunks inline.
     * Producer-thread-only, like pending_. */
    std::vector<unsigned char> degraded_;
    /** Producer-thread-only staging buffer (observe/observeBatch and
     * sync/reset are called from the one snooping thread). */
    std::vector<BusTransaction> pending_;

    /** Heartbeat target; read by producer and workers (relaxed). */
    std::atomic<obs::HeartbeatSlot*> heartbeat_{nullptr};

    mutable Mutex syncMutex_;
    CondVar syncCv_;
};

} // namespace cosim

#endif // COSIM_CORE_EMULATOR_BANK_HH
