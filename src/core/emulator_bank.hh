/**
 * @file
 * Host-parallel bank of passive Dragonhead emulators.
 *
 * The physical Dragonhead board emulated its cache slices on four CC
 * FPGAs *concurrently with* the workload's execution; the serial software
 * reproduction lost that, paying every emulator's cache-model cost on the
 * one host thread that runs the workload. The AsyncEmulatorBank restores
 * the overlap: it attaches to the front-side bus as a single snooper,
 * accumulates transactions into fixed-size chunks, and ships each chunk
 * through a bounded SPSC queue to worker threads that own the Dragonhead
 * instances. Emulation is passive and the emulators share no state, so
 * every emulator still sees the complete transaction sequence in issue
 * order -- results are bit-identical to serial snooping (a test suite
 * enforces this), only the host wall-clock changes.
 *
 * With more emulators than workers, emulator i is pinned to worker
 * i % nThreads; a worker runs its emulators sequentially per chunk.
 * Backpressure: bounded queues block the producing (workload) thread when
 * a worker falls behind, capping buffered history.
 */

#ifndef COSIM_CORE_EMULATOR_BANK_HH
#define COSIM_CORE_EMULATOR_BANK_HH

#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include "base/annotations.hh"
#include "base/mutex.hh"
#include "base/spsc_queue.hh"
#include "dragonhead/dragonhead.hh"
#include "mem/fsb.hh"

namespace cosim {

/** Static configuration of the bank. */
struct EmulatorBankParams
{
    /** One passive emulator per entry. */
    std::vector<DragonheadParams> emulators;

    /** Worker threads; 0 = one per emulator. */
    unsigned nThreads = 0;

    /** Transactions per delivery chunk. */
    std::size_t chunkTxns = 4096;

    /** Chunks in flight per worker before the producer blocks. */
    std::size_t queueChunks = 64;
};

/** Per-emulator delivery counters (read after sync()). */
struct EmulatorWorkerStats
{
    std::uint64_t batches = 0; ///< chunks emulated
    std::uint64_t txns = 0;    ///< transactions emulated
};

/** See file comment. */
class AsyncEmulatorBank : public BusSnooper
{
  public:
    explicit AsyncEmulatorBank(const EmulatorBankParams& params);
    ~AsyncEmulatorBank() override;

    AsyncEmulatorBank(const AsyncEmulatorBank&) = delete;
    AsyncEmulatorBank& operator=(const AsyncEmulatorBank&) = delete;

    /** BusSnooper: buffer one transaction into the pending chunk. */
    void observe(const BusTransaction& txn) override;

    /** BusSnooper: buffer a chunk (the batched-FSB delivery path). */
    void observeBatch(const BusTransaction* txns, std::size_t n) override;

    /**
     * Publish the pending partial chunk and block until every worker has
     * drained its queue. Emulator results are only meaningful afterwards.
     */
    void sync();

    /** sync(), then return every emulator to power-on state. */
    void reset();

    unsigned nEmulators() const
    {
        return static_cast<unsigned>(emulators_.size());
    }

    unsigned nThreads() const
    {
        return static_cast<unsigned>(workers_.size());
    }

    /** Emulator access; call sync() first for settled results. */
    Dragonhead& emulator(unsigned i);
    const Dragonhead& emulator(unsigned i) const;

    /** Delivery counters of emulator @p i (settled after sync()). */
    EmulatorWorkerStats emulatorStats(unsigned i) const;

    /** Queue-depth high-water of the worker owning emulator @p i. */
    std::size_t queuePeak(unsigned i) const;

  private:
    /** One immutable chunk, shared by every worker's queue. */
    using Chunk = std::shared_ptr<const std::vector<BusTransaction>>;

    struct Worker
    {
        explicit Worker(std::size_t queue_chunks) : queue(queue_chunks) {}

        SpscQueue<Chunk> queue;
        std::vector<unsigned> emulators; ///< indices into emulators_
        /** Chunks pushed; written and read by the producer thread only. */
        std::uint64_t chunksPushed = 0;
        std::thread thread;
    };

    void publishPending();
    void workerLoop(unsigned w);

    /** True once every worker drained all chunks pushed to it. */
    bool drained() const REQUIRES(syncMutex_);

    EmulatorBankParams params_;
    std::vector<std::unique_ptr<Dragonhead>> emulators_;
    std::vector<std::unique_ptr<Worker>> workers_;
    /** Per-emulator delivery counters, written by the owning workers. */
    std::vector<EmulatorWorkerStats> stats_ GUARDED_BY(syncMutex_);
    /** chunksDone_[w]: chunks fully emulated by worker w. (Lives here,
     * not in Worker, so the analysis can tie it to syncMutex_.) */
    std::vector<std::uint64_t> chunksDone_ GUARDED_BY(syncMutex_);
    /** Producer-thread-only staging buffer (observe/observeBatch and
     * sync/reset are called from the one snooping thread). */
    std::vector<BusTransaction> pending_;

    mutable Mutex syncMutex_;
    CondVar syncCv_;
};

} // namespace cosim

#endif // COSIM_CORE_EMULATOR_BANK_HH
