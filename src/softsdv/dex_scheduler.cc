#include "softsdv/dex_scheduler.hh"

#include <algorithm>
#include <string>

#include "base/logging.hh"
#include "dragonhead/fsb_messages.hh"
#include "obs/trace_session.hh"

namespace cosim {

DexScheduler::DexScheduler(const DexParams& params, FrontSideBus* fsb,
                           DramModel* dram)
    : params_(params), fsb_(fsb), dram_(dram)
{
    fatal_if(params_.quantumInsts == 0, "DEX quantum must be nonzero");
    fatal_if(params_.coreFreqGhz <= 0.0,
             "DEX trace frequency must be positive");
}

void
DexScheduler::run(std::vector<CoreSlot>& slots)
{
    fatal_if(slots.empty(), "DEX scheduler needs at least one core slot");
    for (const CoreSlot& slot : slots) {
        fatal_if(slot.cpu == nullptr, "core slot without a CPU model");
        fatal_if(slot.task == nullptr, "core slot without a task");
    }

    bool messages = params_.emitMessages && fsb_ != nullptr;

    auto emit = [&](msg::Type type, std::uint64_t payload) {
        if (messages)
            fsb_->issue(msg::encode(type, payload));
    };

    // One relaxed atomic load when no trace session is collecting; the
    // per-quantum span goes on the simulated-time axis (pid "simulated",
    // tid = virtual core id).
    obs::TraceSession& trace = obs::TraceSession::global();
    const double cycles_to_us = 1.0 / (params_.coreFreqGhz * 1000.0);

    emit(msg::Type::StartEmulation, 0);

    std::uint64_t total_insts_base = 0;
    for (CoreSlot& slot : slots)
        total_insts_base += slot.cpu->insts();

    bool any_alive = true;
    while (any_alive) {
        any_alive = false;
        Cycles max_round_cycles = 0;

        for (CoreSlot& slot : slots) {
            if (slot.done)
                continue;

            emit(msg::Type::SetCoreId, slot.cpu->id());

            slot.instsAtSliceStart = slot.cpu->insts();
            slot.cyclesAtSliceStart = slot.cpu->cycles();
            CoreContext ctx(slot.cpu);

            InstCount target = slot.instsAtSliceStart + params_.quantumInsts;
            while (slot.cpu->insts() < target) {
                if (!slot.task->step(ctx)) {
                    slot.done = true;
                    break;
                }
                if (ctx.yielded()) {
                    // The guest thread blocked (barrier / dependency);
                    // hand the processor to the next virtual core.
                    ctx.clearYield();
                    break;
                }
            }

            InstCount inst_delta =
                slot.cpu->insts() - slot.instsAtSliceStart;
            Cycles cycle_delta =
                slot.cpu->cycles() - slot.cyclesAtSliceStart;
            emit(msg::Type::InstRetired, inst_delta);
            emit(msg::Type::CyclesCompleted, cycle_delta);

            if (trace.active()) {
                trace.recordComplete(
                    obs::TraceDomain::Simulated,
                    static_cast<std::uint32_t>(slot.cpu->id()), "dex",
                    "quantum",
                    static_cast<double>(slot.cyclesAtSliceStart) *
                        cycles_to_us,
                    static_cast<double>(cycle_delta) * cycles_to_us,
                    static_cast<double>(inst_delta), true);
            }

            if (heartbeat_ != nullptr) {
                // One beat per quantum: relaxed stores only, so the
                // watchdog and the progress sampler see liveness
                // without the scheduler ever blocking.
                heartbeat_->beat(
                    inst_delta,
                    static_cast<std::uint64_t>(
                        static_cast<double>(cycle_delta) /
                        params_.coreFreqGhz));
            }

            max_round_cycles = std::max(max_round_cycles, cycle_delta);
            ++slices_;
            if (!slot.done)
                any_alive = true;
        }

        if (dram_ != nullptr)
            dram_->endRound(max_round_cycles);
        ++rounds_;

        if (params_.maxTotalInsts != 0) {
            std::uint64_t executed = 0;
            for (CoreSlot& slot : slots)
                executed += slot.cpu->insts();
            panic_if(executed - total_insts_base > params_.maxTotalInsts,
                     "workload exceeded the %llu-instruction safety cap",
                     static_cast<unsigned long long>(
                         params_.maxTotalInsts));
        }
    }

    emit(msg::Type::StopEmulation, 0);
}

void
DexScheduler::addStats(stats::Group& group) const
{
    group.add("rounds", [this] { return double(rounds_); });
    group.add("slices", [this] { return double(slices_); });
    group.add("quantum_insts",
              [this] { return double(params_.quantumInsts); });
}

} // namespace cosim
