#include "softsdv/dex_scheduler.hh"

#include <algorithm>
#include <stdexcept>
#include <string>

#include "base/fault.hh"
#include "base/host_clock.hh"
#include "base/logging.hh"
#include "dragonhead/fsb_messages.hh"
#include "obs/metrics.hh"
#include "obs/trace_session.hh"

namespace cosim {

DexScheduler::DexScheduler(const DexParams& params, FrontSideBus* fsb,
                           DramModel* dram)
    : params_(params), fsb_(fsb), dram_(dram)
{
    fatal_if(params_.quantumInsts == 0, "DEX quantum must be nonzero");
    fatal_if(params_.coreFreqGhz <= 0.0,
             "DEX trace frequency must be positive");
}

void
DexScheduler::run(std::vector<CoreSlot>& slots)
{
    fatal_if(slots.empty(), "DEX scheduler needs at least one core slot");
    for (const CoreSlot& slot : slots) {
        fatal_if(slot.cpu == nullptr, "core slot without a CPU model");
        fatal_if(slot.task == nullptr, "core slot without a task");
    }

    if (params_.hostThreads == 0) {
        runClassic(slots);
        return;
    }
    unsigned n_workers = static_cast<unsigned>(
        std::min<std::size_t>(params_.hostThreads, slots.size()));
    runSharded(slots, n_workers);
}

void
DexScheduler::runClassic(std::vector<CoreSlot>& slots)
{
    bool messages = params_.emitMessages && fsb_ != nullptr;

    auto emit = [&](msg::Type type, std::uint64_t payload) {
        if (messages)
            // The classic scheduler IS the delivery path (no
            // recorders). cosim-analyze: allow(fsb-direct-issue)
            fsb_->issue(msg::encode(type, payload));
    };

    // One relaxed atomic load when no trace session is collecting; the
    // per-quantum span goes on the simulated-time axis (pid "simulated",
    // tid = virtual core id).
    obs::TraceSession& trace = obs::TraceSession::global();
    const double cycles_to_us = 1.0 / (params_.coreFreqGhz * 1000.0);

    emit(msg::Type::StartEmulation, 0);

    std::uint64_t total_insts_base = 0;
    for (CoreSlot& slot : slots)
        total_insts_base += slot.cpu->insts();

    bool any_alive = true;
    while (any_alive) {
        any_alive = false;
        Cycles max_round_cycles = 0;

        for (CoreSlot& slot : slots) {
            if (slot.done)
                continue;

            emit(msg::Type::SetCoreId, slot.cpu->id());

            slot.instsAtSliceStart = slot.cpu->insts();
            slot.cyclesAtSliceStart = slot.cpu->cycles();
            CoreContext ctx(slot.cpu);

            InstCount target = slot.instsAtSliceStart + params_.quantumInsts;
            while (slot.cpu->insts() < target) {
                if (!slot.task->step(ctx)) {
                    slot.done = true;
                    break;
                }
                if (ctx.yielded()) {
                    // The guest thread blocked (barrier / dependency);
                    // hand the processor to the next virtual core.
                    ctx.clearYield();
                    break;
                }
            }

            InstCount inst_delta =
                slot.cpu->insts() - slot.instsAtSliceStart;
            Cycles cycle_delta =
                slot.cpu->cycles() - slot.cyclesAtSliceStart;
            emit(msg::Type::InstRetired, inst_delta);
            emit(msg::Type::CyclesCompleted, cycle_delta);

            if (trace.active()) {
                trace.recordComplete(
                    obs::TraceDomain::Simulated,
                    static_cast<std::uint32_t>(slot.cpu->id()), "dex",
                    "quantum",
                    static_cast<double>(slot.cyclesAtSliceStart) *
                        cycles_to_us,
                    static_cast<double>(cycle_delta) * cycles_to_us,
                    static_cast<double>(inst_delta), true);
            }

            if (heartbeat_ != nullptr) {
                // One beat per quantum: relaxed stores only, so the
                // watchdog and the progress sampler see liveness
                // without the scheduler ever blocking.
                heartbeat_->beat(
                    inst_delta,
                    static_cast<std::uint64_t>(
                        static_cast<double>(cycle_delta) /
                        params_.coreFreqGhz));
            }

            max_round_cycles = std::max(max_round_cycles, cycle_delta);
            ++slices_;
            if (!slot.done)
                any_alive = true;
        }

        if (dram_ != nullptr)
            dram_->endRound(max_round_cycles);
        ++rounds_;

        if (params_.maxTotalInsts != 0) {
            std::uint64_t executed = 0;
            for (CoreSlot& slot : slots)
                executed += slot.cpu->insts();
            panic_if(executed - total_insts_base > params_.maxTotalInsts,
                     "workload exceeded the %llu-instruction safety cap",
                     static_cast<unsigned long long>(
                         params_.maxTotalInsts));
        }
    }

    emit(msg::Type::StopEmulation, 0);
}

void
DexScheduler::runSlice(CoreSlot& slot, SlotState& state, bool concurrent)
{
    state.ran = true;
    state.fenced = false;

    if (params_.emitMessages && fsb_ != nullptr) {
        state.recorder.issue(
            msg::encode(msg::Type::SetCoreId, slot.cpu->id()));
    }

    slot.instsAtSliceStart = slot.cpu->insts();
    slot.cyclesAtSliceStart = slot.cpu->cycles();
    CoreContext ctx(slot.cpu);
    if (concurrent)
        ctx.armFence();

    InstCount target = slot.instsAtSliceStart + params_.quantumInsts;
    while (slot.cpu->insts() < target) {
        InstCount insts_before = slot.cpu->insts();
        bool more = slot.task->step(ctx);
        if (ctx.fenced()) {
            // The step was about to touch a shared sync primitive and
            // paused instead. The fence contract says it charged
            // nothing, which is what makes the in-order re-run on the
            // scheduling thread reproduce the serial slice exactly.
            panic_if(slot.cpu->insts() != insts_before,
                     "core %u charged work before its sync fence",
                     static_cast<unsigned>(slot.cpu->id()));
            panic_if(!more, "core %u finished while sync-fenced",
                     static_cast<unsigned>(slot.cpu->id()));
            state.fenced = true;
            return; // suspended; resumeSlice() completes the quantum
        }
        if (!more) {
            slot.done = true;
            break;
        }
        if (ctx.yielded()) {
            ctx.clearYield();
            break;
        }
    }

    finishSlice(slot, state);
}

void
DexScheduler::resumeSlice(CoreSlot& slot, SlotState& state)
{
    // Fence disarmed: the sync primitive runs directly, and because
    // fenced slots resume in slot-id order after every concurrent
    // quantum finished, barrier arrivals/releases interleave exactly as
    // the serial scheduler's in-round slice order would have them.
    CoreContext ctx(slot.cpu);
    InstCount target = slot.instsAtSliceStart + params_.quantumInsts;
    while (slot.cpu->insts() < target) {
        if (!slot.task->step(ctx)) {
            slot.done = true;
            break;
        }
        if (ctx.yielded()) {
            ctx.clearYield();
            break;
        }
    }

    state.fenced = false;
    ++fencedSlices_;
    finishSlice(slot, state);
}

void
DexScheduler::finishSlice(CoreSlot& slot, SlotState& state)
{
    InstCount inst_delta = slot.cpu->insts() - slot.instsAtSliceStart;
    Cycles cycle_delta = slot.cpu->cycles() - slot.cyclesAtSliceStart;

    if (params_.emitMessages && fsb_ != nullptr) {
        state.recorder.issue(
            msg::encode(msg::Type::InstRetired, inst_delta));
        state.recorder.issue(
            msg::encode(msg::Type::CyclesCompleted, cycle_delta));
    }

    if (heartbeat_ != nullptr) {
        // Relaxed stores only; safe from whichever host thread ran the
        // quantum, and liveness is all the consumers read from it.
        heartbeat_->beat(
            inst_delta,
            static_cast<std::uint64_t>(
                static_cast<double>(cycle_delta) / params_.coreFreqGhz));
    }
}

void
DexScheduler::runShard(std::vector<CoreSlot>& slots,
                       std::vector<SlotState>& states, unsigned worker,
                       unsigned n_workers, bool* dirty)
{
    for (std::size_t i = worker; i < slots.size(); i += n_workers) {
        if (slots[i].done)
            continue;
        // An exception escaping runSlice leaves this slot's guest state
        // partially advanced; the flag stays true so the death is
        // classified unrecoverable.
        if (dirty != nullptr)
            *dirty = true;
        runSlice(slots[i], states[i], /*concurrent=*/true);
        if (dirty != nullptr)
            *dirty = false;
    }
}

void
DexScheduler::runSharded(std::vector<CoreSlot>& slots, unsigned n_workers)
{
    bool messages = params_.emitMessages && fsb_ != nullptr;
    obs::TraceSession& trace = obs::TraceSession::global();
    const double cycles_to_us = 1.0 / (params_.coreFreqGhz * 1000.0);

    if (messages)
        // Scheduling-thread control message, before any round.
        // cosim-analyze: allow(fsb-direct-issue)
        fsb_->issue(msg::encode(msg::Type::StartEmulation, 0));

    std::uint64_t total_insts_base = 0;
    for (CoreSlot& slot : slots)
        total_insts_base += slot.cpu->insts();

    std::vector<SlotState> states(slots.size());

    // Destruction order on unwind: crew guard joins the workers first,
    // then the binder restores the sinks, then states dies -- so no
    // worker can touch a recorder or a rebound sink after it is gone.
    struct StateRecorders
    {
        std::vector<SlotState>& states;
        std::vector<CoreSlot>& slots;
        std::vector<TxnSink*> originals;

        StateRecorders(std::vector<CoreSlot>& s,
                       std::vector<SlotState>& st)
            : states(st), slots(s)
        {
            originals.reserve(s.size());
            for (std::size_t i = 0; i < s.size(); ++i) {
                TxnSink* orig = s[i].cpu->sink();
                originals.push_back(orig);
                if (orig != nullptr)
                    s[i].cpu->bindSink(&st[i].recorder);
            }
        }
        ~StateRecorders()
        {
            for (std::size_t i = 0; i < slots.size(); ++i)
                slots[i].cpu->bindSink(originals[i]);
        }
        StateRecorders(const StateRecorders&) = delete;
        StateRecorders& operator=(const StateRecorders&) = delete;
    } binder(slots, states);

    // Spawn workers 1..W-1 (worker 0 is this thread). All Worker
    // objects exist before any thread starts, so workers_[w-1] never
    // races vector growth.
    workers_.clear();
    for (unsigned w = 1; w < n_workers; ++w)
        workers_.push_back(std::make_unique<Worker>());
    for (unsigned w = 1; w < n_workers; ++w) {
        Worker* self = workers_[w - 1].get();
        workers_[w - 1]->thread = std::thread([this, self, w] {
            std::uint64_t seen = 0;
            for (;;) {
                std::vector<CoreSlot>* round_slots = nullptr;
                std::vector<SlotState>* round_states = nullptr;
                unsigned width = 0;
                {
                    LockGuard lock(crewMutex_);
                    while (roundGen_ == seen && !crewShutdown_)
                        crewWorkCv_.wait(lock);
                    if (crewShutdown_)
                        return;
                    seen = roundGen_;
                    round_slots = crewSlots_;
                    round_states = crewStates_;
                    width = crewWidth_;
                }
                bool failed = false;
                try {
                    // Fires before any slice: an injected crash is
                    // always a *clean* death (no guest state touched),
                    // the recoverable kind.
                    COSIM_FAULT_POINT("dex.worker.crash");
                    runShard(*round_slots, *round_states, w, width,
                             &self->dirty);
                } catch (...) {
                    self->error = std::current_exception();
                    failed = true;
                }
                {
                    LockGuard lock(crewMutex_);
                    if (--pendingWorkers_ == 0)
                        crewDoneCv_.notifyAll();
                }
                if (failed)
                    return; // dead workers take no further rounds
            }
        });
    }

    struct CrewGuard
    {
        DexScheduler& sched;
        explicit CrewGuard(DexScheduler& s) : sched(s) {}
        ~CrewGuard()
        {
            {
                LockGuard lock(sched.crewMutex_);
                sched.crewShutdown_ = true;
            }
            sched.crewWorkCv_.notifyAll();
            for (auto& worker : sched.workers_) {
                if (worker->thread.joinable())
                    worker->thread.join();
            }
            sched.workers_.clear();
            {
                LockGuard lock(sched.crewMutex_);
                sched.crewShutdown_ = false;
                sched.crewSlots_ = nullptr;
                sched.crewStates_ = nullptr;
            }
        }
        CrewGuard(const CrewGuard&) = delete;
        CrewGuard& operator=(const CrewGuard&) = delete;
    } crew_guard(*this);

    bool any_alive = true;
    while (any_alive) {
        bool round_safe = true;
        for (CoreSlot& slot : slots) {
            if (!slot.done && !slot.task->parallelStepSafe())
                round_safe = false;
        }

        unsigned alive_spawned = 0;
        for (auto& worker : workers_) {
            if (!worker->dead)
                ++alive_spawned;
        }

        if (round_safe && alive_spawned > 0) {
            // Concurrent pass: publish the round, run our own shard
            // (plus any shard adopted from a degraded worker), then
            // wait at the round barrier.
            {
                LockGuard lock(crewMutex_);
                crewSlots_ = &slots;
                crewStates_ = &states;
                crewWidth_ = n_workers;
                pendingWorkers_ = alive_spawned;
                ++roundGen_;
            }
            crewWorkCv_.notifyAll();

            {
                // If our own shard throws (a workload bug on the
                // scheduling thread), quiesce the crew before the
                // exception unwinds past the round's state.
                struct RoundQuiesce
                {
                    DexScheduler& sched;
                    explicit RoundQuiesce(DexScheduler& s) : sched(s) {}
                    ~RoundQuiesce()
                    {
                        LockGuard lock(sched.crewMutex_);
                        while (sched.pendingWorkers_ > 0)
                            sched.crewDoneCv_.wait(lock);
                    }
                } quiesce(*this);

                runShard(slots, states, 0, n_workers);
                for (unsigned w = 1; w < n_workers; ++w) {
                    if (workers_[w - 1]->dead)
                        runShard(slots, states, w, n_workers);
                }

                std::uint64_t wait_from_us = hostClockNowUs();
                {
                    LockGuard lock(crewMutex_);
                    while (pendingWorkers_ > 0)
                        crewDoneCv_.wait(lock);
                }
                if (obs::metrics::enabled()) {
                    static const obs::metrics::Histogram merge_wait =
                        obs::metrics::histogram(
                            "dex.merge_wait_us",
                            "scheduling thread's wait at the DEX round "
                            "barrier before merging");
                    merge_wait.record(hostClockNowUs() - wait_from_us);
                }
            }

            // Round quiescent: handle worker deaths before touching
            // slot state.
            for (unsigned w = 1; w < n_workers; ++w) {
                Worker& worker = *workers_[w - 1];
                if (worker.dead || !worker.error)
                    continue;
                std::string reason = "unknown error";
                try {
                    std::rethrow_exception(worker.error);
                } catch (const std::exception& e) {
                    reason = e.what();
                } catch (...) {
                }
                std::string shard;
                for (std::size_t i = w; i < slots.size();
                     i += n_workers) {
                    if (!shard.empty())
                        shard += ",";
                    shard += std::to_string(slots[i].cpu->id());
                }
                worker.dead = true;
                if (worker.dirty || !params_.degradeSerial) {
                    throw std::runtime_error(
                        "DEX worker " + std::to_string(w) + " (shard: cores " +
                        shard + ") died at round " +
                        std::to_string(rounds_) +
                        (worker.dirty ? " mid-slice (unrecoverable)"
                                      : "") +
                        ": " + reason);
                }
                // Clean death + --degrade-serial: the shard is
                // untouched this round; run it here with the fence
                // armed, exactly as the worker would have, and keep
                // the run bit-identical.
                warn("DEX worker %u died cleanly (%s); degrading its "
                     "shard (cores %s) to the scheduling thread",
                     w, reason.c_str(), shard.c_str());
                ++degradedWorkers_;
                runShard(slots, states, w, n_workers);
            }

            ++parallelRounds_;
        } else {
            // Serial round (parallel-unsafe task alive, or no live
            // workers): same record/merge path, fence unarmed, slices
            // in slot order on this thread -- delivery below is
            // identical either way.
            for (std::size_t i = 0; i < slots.size(); ++i) {
                if (slots[i].done)
                    continue;
                runSlice(slots[i], states[i], /*concurrent=*/false);
            }
            if (!round_safe)
                ++serialFallbackRounds_;
        }

        // In-order resume of sync-fenced slices: barrier arrivals and
        // releases happen here, in slot-id order, on this thread.
        for (std::size_t i = 0; i < slots.size(); ++i) {
            if (states[i].fenced)
                resumeSlice(slots[i], states[i]);
        }

        // Merge: deliver every slice's buffered stream in slot-id
        // order -- the serial emission order -- onto the real bus.
        Cycles max_round_cycles = 0;
        std::uint64_t round_insts_min = 0;
        std::uint64_t round_insts_max = 0;
        for (std::size_t i = 0; i < slots.size(); ++i) {
            if (!states[i].ran)
                continue;
            panic_if(states[i].fenced,
                     "slot %zu still fenced at merge", i);

            if (fsb_ != nullptr) {
                for (const BusTransaction& txn :
                     states[i].recorder.txns()) {
                    // The one sanctioned delivery point: everything
                    // upstream went through a TxnSink recorder.
                    // cosim-analyze: allow(fsb-direct-issue)
                    fsb_->issue(txn);
                }
            }

            InstCount inst_delta =
                slots[i].cpu->insts() - slots[i].instsAtSliceStart;
            Cycles cycle_delta =
                slots[i].cpu->cycles() - slots[i].cyclesAtSliceStart;
            if (trace.active()) {
                trace.recordComplete(
                    obs::TraceDomain::Simulated,
                    static_cast<std::uint32_t>(slots[i].cpu->id()),
                    "dex", "quantum",
                    static_cast<double>(slots[i].cyclesAtSliceStart) *
                        cycles_to_us,
                    static_cast<double>(cycle_delta) * cycles_to_us,
                    static_cast<double>(inst_delta), true);
            }

            max_round_cycles = std::max(max_round_cycles, cycle_delta);
            round_insts_min = round_insts_min == 0
                ? inst_delta
                : std::min<std::uint64_t>(round_insts_min, inst_delta);
            round_insts_max =
                std::max<std::uint64_t>(round_insts_max, inst_delta);
            ++slices_;
            states[i].recorder.clear();
            states[i].ran = false;
        }

        if (obs::metrics::enabled() && round_insts_max > 0) {
            static const obs::metrics::Histogram imbalance =
                obs::metrics::histogram(
                    "dex.round_imbalance_pct",
                    "spread between the lightest and heaviest DEX "
                    "slice of a round, percent of the heaviest");
            imbalance.record((round_insts_max - round_insts_min) * 100 /
                             round_insts_max);
        }

        if (dram_ != nullptr)
            dram_->endRound(max_round_cycles);
        ++rounds_;

        if (params_.maxTotalInsts != 0) {
            std::uint64_t executed = 0;
            for (CoreSlot& slot : slots)
                executed += slot.cpu->insts();
            panic_if(executed - total_insts_base > params_.maxTotalInsts,
                     "workload exceeded the %llu-instruction safety cap",
                     static_cast<unsigned long long>(
                         params_.maxTotalInsts));
        }

        any_alive = false;
        for (CoreSlot& slot : slots) {
            if (!slot.done)
                any_alive = true;
        }
    }

    if (obs::metrics::enabled()) {
        static const obs::metrics::Counter parallel_rounds =
            obs::metrics::counter(
                "dex.parallel_rounds",
                "DEX rounds whose quanta ran on multiple host threads");
        static const obs::metrics::Counter serial_fallback =
            obs::metrics::counter(
                "dex.serial_fallback_rounds",
                "DEX rounds forced serial by a parallel-unsafe task");
        static const obs::metrics::Counter fenced =
            obs::metrics::counter(
                "dex.fenced_slices",
                "DEX slices paused at a sync fence and resumed in "
                "slot order");
        static const obs::metrics::Counter degraded =
            obs::metrics::counter(
                "dex.degraded_workers",
                "DEX workers that died cleanly and had their shard "
                "adopted by the scheduling thread");
        parallel_rounds.add(parallelRounds_);
        serial_fallback.add(serialFallbackRounds_);
        fenced.add(fencedSlices_);
        degraded.add(degradedWorkers_);
    }

    if (messages)
        // Scheduling-thread control message, after the last round.
        // cosim-analyze: allow(fsb-direct-issue)
        fsb_->issue(msg::encode(msg::Type::StopEmulation, 0));
}

void
DexScheduler::addStats(stats::Group& group) const
{
    group.add("rounds", [this] { return double(rounds_); });
    group.add("slices", [this] { return double(slices_); });
    group.add("quantum_insts",
              [this] { return double(params_.quantumInsts); });
}

} // namespace cosim
