/**
 * @file
 * The virtual multi-core platform: N CPU models, a shared bus, a shared
 * memory model, and the DEX scheduler that runs workloads to completion.
 *
 * This is the software stand-in for "SoftSDV DEX runs on this system to
 * provide a virtual platform of cores scaled from 1 to 32" (Section 3.3).
 */

#ifndef COSIM_SOFTSDV_VIRTUAL_PLATFORM_HH
#define COSIM_SOFTSDV_VIRTUAL_PLATFORM_HH

#include <memory>
#include <string>
#include <vector>

#include "cache/cache.hh"
#include "mem/address_space.hh"
#include "mem/dram.hh"
#include "mem/fsb.hh"
#include "obs/stats_registry.hh"
#include "softsdv/cpu_model.hh"
#include "softsdv/dex_scheduler.hh"
#include "softsdv/guest.hh"

namespace cosim {

/** Static description of a simulated platform. */
struct PlatformParams
{
    std::string name = "platform";
    unsigned nCores = 8;
    CpuParams cpu;
    DramParams dram;
    DexParams dex;
};

/** Everything a completed run reports. */
struct RunResult
{
    std::string workload;
    std::string platform;
    unsigned nThreads = 0;

    InstCount totalInsts = 0;
    InstCount memInsts = 0;
    InstCount loads = 0;
    InstCount stores = 0;

    /** Wall-clock of the parallel run: the slowest core's cycles. */
    Cycles maxCoreCycles = 0;
    /** Sum of all cores' cycles (serial work). */
    Cycles totalCycles = 0;

    /** Aggregated private cache stats (all cores). */
    CacheStats l1;
    CacheStats l2;
    bool hasL2 = false;

    /** Aggregated prefetch stats (all cores). */
    CpuPrefetchStats prefetch;
    std::uint64_t usefulPrefetches = 0;

    std::uint64_t schedulerRounds = 0;
    std::uint64_t schedulerSlices = 0;

    /**
     * @name Sharded-DEX host diagnostics.
     * How the scheduler ran, not what the guest computed: these depend
     * on DexParams::hostThreads and are deliberately excluded from
     * bit-identity comparisons (all zero under the classic scheduler).
     * @{ */
    std::uint64_t dexParallelRounds = 0;
    std::uint64_t dexSerialFallbackRounds = 0;
    std::uint64_t dexFencedSlices = 0;
    std::uint64_t dexDegradedWorkers = 0;
    /** @} */

    /** Simulated footprint allocated by the workload, in bytes. */
    std::uint64_t footprintBytes = 0;

    bool verified = false;

    /**
     * Provenance: empty for a live guest execution; the stream source
     * ("file:<path>" or "memory:<workload>") when the emulator results
     * come from replaying a recorded FSB stream. Replayed results carry
     * the captured run's totalInsts/verified, but no CPU-side counters
     * (l1/l2/cycles stay zero -- the guest did not execute).
     */
    std::string replayedFrom;

    /** Host-side execution time and derived simulation speed. */
    double hostSeconds = 0.0;
    double simMips() const;

    /** Single-core IPC measure used by Table 2. */
    double ipc() const;

    /** Parallel IPC: instructions over the slowest core's cycles. */
    double parallelIpc() const;

    double memInstPercent() const;
    double memReadPercent() const;
    double l1AccessesPerKiloInst() const;
    double l1MissesPerKiloInst() const;
    double l2MissesPerKiloInst() const;
};

/** See file comment. */
class VirtualPlatform
{
  public:
    explicit VirtualPlatform(const PlatformParams& params);
    ~VirtualPlatform();

    VirtualPlatform(const VirtualPlatform&) = delete;
    VirtualPlatform& operator=(const VirtualPlatform&) = delete;

    /**
     * Run @p workload to completion with cfg.nThreads threads, one per
     * core (cfg.nThreads must not exceed nCores()). Resets all platform
     * state first, so a platform can be reused across runs.
     */
    RunResult run(Workload& workload, const WorkloadConfig& cfg);

    FrontSideBus& fsb() { return fsb_; }
    DramModel& dram() { return dram_; }
    SimAllocator& allocator() { return allocator_; }

    unsigned nCores() const { return static_cast<unsigned>(cpus_.size()); }
    CpuModel& cpu(unsigned i);
    const PlatformParams& params() const { return params_; }

    /**
     * Register the platform's component stats into @p registry:
     * one "cpu<i>" group per core (plus "cpu<i>.l1"/".l2"), "dram",
     * and "fsb". Idempotent across runs (names replace).
     */
    void registerStats(obs::StatsRegistry& registry) const;

    /**
     * Publish liveness/progress into @p slot for subsequent run()
     * calls: the scheduler beats per quantum, and the platform itself
     * pulses across the setup/run boundaries so long workload setUp()
     * phases also count as liveness. nullptr disables.
     */
    void setHeartbeat(obs::HeartbeatSlot* slot) { heartbeat_ = slot; }

  private:
    PlatformParams params_;
    FrontSideBus fsb_;
    DramModel dram_;
    SimAllocator allocator_;
    std::vector<std::unique_ptr<CpuModel>> cpus_;
    obs::HeartbeatSlot* heartbeat_ = nullptr;
};

} // namespace cosim

#endif // COSIM_SOFTSDV_VIRTUAL_PLATFORM_HH
