#include "softsdv/virtual_platform.hh"

#include <algorithm>
#include <chrono>

#include "base/logging.hh"
#include "base/stats.hh"
#include "obs/host_profiler.hh"
#include "obs/trace_session.hh"

namespace cosim {

double
RunResult::simMips()
const
{
    return hostSeconds <= 0.0
        ? 0.0
        : static_cast<double>(totalInsts) / 1e6 / hostSeconds;
}

double
RunResult::ipc()
const
{
    return totalCycles == 0
        ? 0.0
        : static_cast<double>(totalInsts) /
              static_cast<double>(totalCycles);
}

double
RunResult::parallelIpc()
const
{
    return maxCoreCycles == 0
        ? 0.0
        : static_cast<double>(totalInsts) /
              static_cast<double>(maxCoreCycles);
}

double
RunResult::memInstPercent()
const
{
    return 100.0 * stats::safeRatio(static_cast<double>(memInsts),
                                    static_cast<double>(totalInsts));
}

double
RunResult::memReadPercent()
const
{
    return 100.0 * stats::safeRatio(static_cast<double>(loads),
                                    static_cast<double>(totalInsts));
}

double
RunResult::l1AccessesPerKiloInst()
const
{
    // The paper derives DL1 accesses from the memory-instruction count
    // (Table 2 shows exactly 10 x %mem), so we report the same measure;
    // l1.accesses counts line-level references after block coalescing.
    return stats::perKiloInst(memInsts, totalInsts);
}

double
RunResult::l1MissesPerKiloInst()
const
{
    return stats::perKiloInst(l1.misses, totalInsts);
}

double
RunResult::l2MissesPerKiloInst()
const
{
    return stats::perKiloInst(l2.misses, totalInsts);
}

VirtualPlatform::VirtualPlatform(const PlatformParams& params)
    : params_(params), dram_(params.dram)
{
    fatal_if(params_.nCores == 0, "platform needs at least one core");
    cpus_.reserve(params_.nCores);
    for (unsigned i = 0; i < params_.nCores; ++i) {
        cpus_.push_back(std::make_unique<CpuModel>(
            static_cast<CoreId>(i), params_.cpu, &dram_, &fsb_));
    }
}

VirtualPlatform::~VirtualPlatform() = default;

CpuModel&
VirtualPlatform::cpu(unsigned i)
{
    panic_if(i >= cpus_.size(), "core index %u out of range", i);
    return *cpus_[i];
}

RunResult
VirtualPlatform::run(Workload& workload, const WorkloadConfig& cfg)
{
    fatal_if(cfg.nThreads == 0, "workload needs at least one thread");
    fatal_if(cfg.nThreads > nCores(),
             "%u threads exceed the platform's %u cores (the paper maps "
             "one thread per core)",
             cfg.nThreads, nCores());

    // Fresh platform state for this run.
    allocator_.reset();
    dram_.reset();
    fsb_.resetStats();
    for (auto& cpu : cpus_)
        cpu->reset();

    // Input generation happens outside the emulation window.
    if (heartbeat_ != nullptr)
        heartbeat_->pulse();
    {
        TRACE_SPAN("platform", "workload.setUp");
        obs::ProfileScope prof("setup");
        workload.setUp(cfg, allocator_);
    }
    if (heartbeat_ != nullptr)
        heartbeat_->pulse();

    std::vector<std::unique_ptr<ThreadTask>> tasks;
    tasks.reserve(cfg.nThreads);
    for (unsigned tid = 0; tid < cfg.nThreads; ++tid)
        tasks.push_back(workload.createThread(tid));

    std::vector<CoreSlot> slots(cfg.nThreads);
    for (unsigned tid = 0; tid < cfg.nThreads; ++tid) {
        slots[tid].cpu = cpus_[tid].get();
        slots[tid].task = tasks[tid].get();
    }

    DexScheduler scheduler(params_.dex, &fsb_, &dram_);
    scheduler.setHeartbeat(heartbeat_);

    auto t0 = std::chrono::steady_clock::now();
    {
        TRACE_SPAN("platform", "scheduler.run");
        scheduler.run(slots);
        // When the bus runs batched, a partial chunk may still be
        // buffered; deliver it inside the timed window -- snoopers must
        // see the complete run before anyone reads their results.
        fsb_.flush();
    }
    auto t1 = std::chrono::steady_clock::now();

    RunResult result;
    result.workload = workload.name();
    result.platform = params_.name;
    result.nThreads = cfg.nThreads;
    result.hostSeconds =
        std::chrono::duration<double>(t1 - t0).count();
    result.schedulerRounds = scheduler.rounds();
    result.schedulerSlices = scheduler.slices();
    result.dexParallelRounds = scheduler.parallelRounds();
    result.dexSerialFallbackRounds = scheduler.serialFallbackRounds();
    result.dexFencedSlices = scheduler.fencedSlices();
    result.dexDegradedWorkers = scheduler.degradedWorkers();
    result.footprintBytes = allocator_.footprint();
    result.hasL2 = params_.cpu.caches.hasL2;

    for (unsigned tid = 0; tid < cfg.nThreads; ++tid) {
        const CpuModel& cpu = *cpus_[tid];
        result.totalInsts += cpu.insts();
        result.memInsts += cpu.memInsts();
        result.loads += cpu.loads();
        result.stores += cpu.stores();
        result.totalCycles += cpu.cycles();
        result.maxCoreCycles = std::max(result.maxCoreCycles, cpu.cycles());
        result.l1 += cpu.caches().l1().stats();
        if (result.hasL2) {
            result.l2 += cpu.caches().l2().stats();
            result.usefulPrefetches +=
                cpu.caches().l2().stats().usefulPrefetches;
        } else {
            result.usefulPrefetches +=
                cpu.caches().l1().stats().usefulPrefetches;
        }
        const CpuPrefetchStats& pf = cpu.prefetchStats();
        result.prefetch.candidates += pf.candidates;
        result.prefetch.admitted += pf.admitted;
        result.prefetch.dropped += pf.dropped;
        result.prefetch.installed += pf.installed;
    }

    result.verified = workload.verify();
    workload.tearDown();
    if (heartbeat_ != nullptr)
        heartbeat_->pulse();

    // Feed the host-side gauge: every run contributes to the process-
    // wide simulated-MIPS measure regardless of which harness ran it.
    obs::HostProfiler::global().accumulate("run", result.hostSeconds);
    obs::HostProfiler::global().addSimulated(result.totalInsts,
                                             result.hostSeconds);
    return result;
}

void
VirtualPlatform::registerStats(obs::StatsRegistry& registry) const
{
    for (std::size_t i = 0; i < cpus_.size(); ++i) {
        const CpuModel& cpu = *cpus_[i];
        std::string prefix = "cpu" + std::to_string(i);

        stats::Group core(prefix);
        cpu.addStats(core);
        registry.add(std::move(core));

        stats::Group l1(prefix + ".l1");
        cpu.caches().l1().addStats(l1);
        registry.add(std::move(l1));

        if (cpu.caches().hasL2()) {
            stats::Group l2(prefix + ".l2");
            cpu.caches().l2().addStats(l2);
            registry.add(std::move(l2));
        }
    }

    stats::Group dram("dram");
    dram_.addStats(dram);
    registry.add(std::move(dram));

    stats::Group fsb("fsb");
    fsb_.addStats(fsb);
    registry.add(std::move(fsb));
}

} // namespace cosim
