#include "softsdv/cpu_model.hh"

#include <algorithm>

#include "base/logging.hh"
#include "obs/metrics.hh"

namespace cosim {

CpuModel::CpuModel(CoreId id, const CpuParams& params, DramModel* dram,
                   TxnSink* sink)
    : id_(id), params_(params), dram_(dram), sink_(sink),
      l1LineMask_(params.caches.l1.lineSize - 1),
      caches_(params.caches),
      pfAdmitRng_(0xA11CE5EEDull + id) // deterministic stream per core
{
    fatal_if(params_.baseCpi <= 0.0, "base CPI must be positive");
    fatal_if(params_.useDramLatency && dram_ == nullptr,
             "timing mode requires a DramModel");
    if (params_.prefetchEnabled)
        prefetcher_ = std::make_unique<StridePrefetcher>(params_.prefetch);
}

double
CpuModel::ipc()
const
{
    return cyclesAcc_ <= 0.0
        ? 0.0
        : static_cast<double>(insts_) / cyclesAcc_;
}

void
CpuModel::handleBeyond(Addr fetch_line, bool l1_was_write)
{
    std::uint32_t bus_line = caches_.busLineSize();

    std::uint64_t beyond_cycles;
    if (params_.useDramLatency) {
        beyond_cycles = dram_->demandLatency();
        dram_->addDemandTraffic(bus_line);
    } else {
        beyond_cycles = params_.beyondLatency;
        if (dram_ != nullptr)
            dram_->addDemandTraffic(bus_line);
    }
    cyclesAcc_ += static_cast<double>(beyond_cycles);
    if (obs::metrics::enabled()) {
        // One relaxed load + branch when telemetry is off; the handle
        // registers once per process.
        static const obs::metrics::Histogram miss_latency =
            obs::metrics::histogram(
                "mem.miss_latency_cycles",
                "beyond-LLC demand miss latency in core cycles");
        miss_latency.record(beyond_cycles);
    }

    if (sink_ != nullptr && params_.emitFsbTraffic) {
        BusTransaction txn;
        txn.addr = fetch_line;
        txn.size = bus_line;
        // The FSB sees a line fill either way; under write-allocate a
        // store miss still reads the line. Tag the original intent so
        // snoopers can classify traffic.
        txn.kind = l1_was_write ? TxnKind::WriteLine : TxnKind::ReadLine;
        txn.core = id_;
        sink_->issue(txn);
    }
}

void
CpuModel::issuePrefetches(Addr trigger, bool was_beyond)
{
    if (!prefetcher_)
        return;

    pfProposals_.clear();
    prefetcher_->observe(trigger, was_beyond, pfProposals_);
    if (pfProposals_.empty())
        return;

    double admit = dram_ != nullptr ? dram_->prefetchAdmitFraction() : 1.0;
    std::uint32_t bus_line = caches_.busLineSize();

    for (Addr target : pfProposals_) {
        ++pfStats_.candidates;
        bool admitted = admit >= 1.0 ||
                        (admit > 0.0 && pfAdmitRng_.nextDouble() < admit);
        if (!admitted) {
            ++pfStats_.dropped;
            continue;
        }
        ++pfStats_.admitted;
        if (!caches_.prefetchFill(target))
            continue; // already present, no traffic
        ++pfStats_.installed;
        if (dram_ != nullptr)
            dram_->addPrefetchTraffic(bus_line);
        if (sink_ != nullptr && params_.emitFsbTraffic) {
            BusTransaction txn;
            txn.addr = target & ~static_cast<Addr>(bus_line - 1);
            txn.size = bus_line;
            txn.kind = TxnKind::Prefetch;
            txn.core = id_;
            sink_->issue(txn);
        }
    }
}

void
CpuModel::dataAccess(Addr addr, std::uint32_t size, bool write,
                     InstCount n_insts)
{
    panic_if(size == 0, "zero-size access at %#llx",
             static_cast<unsigned long long>(addr));

    // Instruction accounting: by default a reference moves at most 8
    // bytes per instruction; instrumented containers override with
    // their element count.
    InstCount n = n_insts != 0 ? n_insts
                               : std::max<InstCount>(1, size / 8);
    insts_ += n;
    memInsts_ += n;
    if (write)
        stores_ += n;
    else
        loads_ += n;
    cyclesAcc_ += params_.baseCpi * static_cast<double>(n);

    // Fast path: an access contained in one L1 line that hits as a
    // plain LRU hit -- by far the dominant case -- completes here with
    // no virtual dispatch and none of the miss/writeback plumbing.
    // tryL1Hit leaves no trace when it declines.
    if ((addr & l1LineMask_) + size - 1 <= l1LineMask_ &&
        caches_.tryL1Hit(addr, write)) {
        return;
    }

    // Split at L1 line boundaries.
    std::uint32_t l1_line = caches_.l1().params().lineSize;
    Addr cur = addr;
    std::uint64_t remaining = size;
    while (remaining > 0) {
        Addr line_end = (cur | (l1_line - 1)) + 1;
        std::uint64_t chunk = std::min<std::uint64_t>(remaining,
                                                      line_end - cur);

        PrivateHierarchy::Result r = caches_.access(cur, write);

        switch (r.servicedBy) {
          case ServiceLevel::L1:
            break;
          case ServiceLevel::L2:
            cyclesAcc_ += static_cast<double>(params_.l2HitLatency);
            if (r.l2PrefetchHit && params_.useDramLatency) {
                // Late prefetch: part of the memory access is exposed.
                cyclesAcc_ += params_.prefetchLateFraction *
                              static_cast<double>(dram_->demandLatency());
            }
            break;
          case ServiceLevel::Beyond:
            handleBeyond(*r.fetchLine, write);
            break;
        }

        for (unsigned i = 0; i < r.nWritebacks; ++i) {
            std::uint32_t bus_line = caches_.busLineSize();
            if (dram_ != nullptr)
                dram_->addDemandTraffic(bus_line);
            if (sink_ != nullptr && params_.emitFsbTraffic) {
                BusTransaction txn;
                txn.addr = r.writebacks[i];
                txn.size = bus_line;
                txn.kind = TxnKind::WriteLine;
                txn.core = id_;
                sink_->issue(txn);
            }
        }

        // The prefetcher watches the stream entering the L2 (the L1 miss
        // stream), as the Xeon's L2 stride prefetcher did.
        if (r.servicedBy != ServiceLevel::L1)
            issuePrefetches(cur, r.servicedBy == ServiceLevel::Beyond);

        cur += chunk;
        remaining -= chunk;
    }
}

void
CpuModel::computeOps(std::uint64_t n)
{
    insts_ += n;
    cyclesAcc_ += params_.baseCpi * static_cast<double>(n);
}

void
CpuModel::addStats(stats::Group& group) const
{
    group.add("insts", [this] { return double(insts_); });
    group.add("mem_insts", [this] { return double(memInsts_); });
    group.add("loads", [this] { return double(loads_); });
    group.add("stores", [this] { return double(stores_); });
    group.add("cycles", [this] { return double(cycles()); });
    group.add("ipc", [this] { return ipc(); });
    group.add("pf_candidates",
              [this] { return double(pfStats_.candidates); });
    group.add("pf_admitted", [this] { return double(pfStats_.admitted); });
    group.add("pf_dropped", [this] { return double(pfStats_.dropped); });
    group.add("pf_installed",
              [this] { return double(pfStats_.installed); });
}

void
CpuModel::reset()
{
    insts_ = memInsts_ = loads_ = stores_ = 0;
    cyclesAcc_ = 0.0;
    pfStats_.reset();
    caches_.flush();
    caches_.resetStats();
    if (prefetcher_) {
        prefetcher_->reset();
        prefetcher_->resetStats();
    }
}

} // namespace cosim
