#include "softsdv/core_context.hh"

#include "base/logging.hh"

namespace cosim {

CoreContext::CoreContext(CpuModel* cpu) : cpu_(cpu)
{
    panic_if(cpu_ == nullptr, "CoreContext needs a core");
}

} // namespace cosim
