/**
 * @file
 * DEX-style time-slice scheduler.
 *
 * SoftSDV's DEX mode runs N virtual cores on one physical processor by
 * letting each run natively for a slice, then saving state and switching.
 * Dragonhead, snooping the bus, is told which core owns each slice via
 * SetCoreId messages, and gets InstRetired / CyclesCompleted deltas at
 * slice boundaries so it can compute instruction-synchronized statistics.
 * This class reproduces that loop: round-robin over the live tasks, one
 * quantum of retired instructions per slice, messages on the bus at every
 * boundary, and a shared-memory round boundary for the DRAM contention
 * model.
 *
 * With hostThreads > 0 the round itself is sharded across host worker
 * threads (slot i -> worker i mod W, main thread is worker 0): each
 * slot's quantum runs concurrently and records its bus traffic into a
 * per-slot TxnRecorder instead of issuing live; at the round barrier the
 * buffers are merged onto the real bus in slot-id order, which is
 * exactly the serial emission order, so every artifact stays
 * bit-identical. Tasks whose steps are not parallel-safe (see
 * ThreadTask::parallelStepSafe) force their rounds through the same
 * record/merge path but executed serially, and sync primitives pause
 * concurrent tasks via CoreContext::syncFence for an in-order resume on
 * the scheduling thread. DESIGN.md "Parallel guest execution" carries
 * the full determinism argument.
 */

#ifndef COSIM_SOFTSDV_DEX_SCHEDULER_HH
#define COSIM_SOFTSDV_DEX_SCHEDULER_HH

#include <cstdint>
#include <exception>
#include <memory>
#include <thread>
#include <vector>

#include "base/annotations.hh"
#include "base/mutex.hh"
#include "base/stats.hh"
#include "mem/dram.hh"
#include "mem/fsb.hh"
#include "obs/progress.hh"
#include "softsdv/core_context.hh"
#include "softsdv/guest.hh"

namespace cosim {

/** Scheduler tuning. */
struct DexParams
{
    /** Retired instructions per slice before switching cores. */
    std::uint64_t quantumInsts = 50000;

    /** Emit Start/Stop/SetCoreId/InstRetired/Cycles messages. */
    bool emitMessages = true;

    /**
     * Safety cap on total retired instructions (0 = none). A workload
     * that fails to terminate trips a panic instead of hanging the run.
     */
    std::uint64_t maxTotalInsts = 0;

    /**
     * Emulated core frequency used to place quantum spans on the trace's
     * simulated-time axis (matches ControlBlockParams::coreFreqGhz).
     */
    double coreFreqGhz = 3.0;

    /**
     * Host threads sharing the guest execution of one round (--dex-threads).
     * 0 = the classic single-thread path with live bus issue; N >= 1 runs
     * the record/merge engine with min(N, nSlots) workers (1 = merge
     * engine without concurrency, useful for isolating the seam).
     * Results are bit-identical for every value.
     */
    unsigned hostThreads = 0;

    /**
     * When a spawned DEX worker dies *cleanly* (before touching any of
     * its slots this round, e.g. the dex.worker.crash fault point), adopt
     * its shard on the scheduling thread and keep going instead of
     * failing the run (--degrade-serial). Dirty deaths -- mid-slice, with
     * guest state partially advanced -- always fail: the quantum cannot
     * be replayed.
     */
    bool degradeSerial = false;
};

/** One virtual core with the task currently bound to it. */
struct CoreSlot
{
    CpuModel* cpu = nullptr;
    ThreadTask* task = nullptr;

    // Scheduler-private bookkeeping.
    bool done = false;
    InstCount instsAtSliceStart = 0;
    Cycles cyclesAtSliceStart = 0;
};

/** See file comment. */
class DexScheduler
{
  public:
    /**
     * @param params scheduler tuning
     * @param fsb bus for message emission (may be nullptr)
     * @param dram shared memory model for round boundaries (may be null)
     */
    DexScheduler(const DexParams& params, FrontSideBus* fsb,
                 DramModel* dram);

    /** Run every slot's task to completion. */
    void run(std::vector<CoreSlot>& slots);

    /** Completed scheduling rounds (all live cores ran one slice). */
    std::uint64_t rounds() const { return rounds_; }

    /** Total slices executed. */
    std::uint64_t slices() const { return slices_; }

    /** @name Sharded-engine introspection (all 0 on the classic path) @{ */
    /** Rounds whose quanta actually ran on >1 host thread. */
    std::uint64_t parallelRounds() const { return parallelRounds_; }
    /** Rounds forced serial by a parallel-unsafe task. */
    std::uint64_t serialFallbackRounds() const { return serialFallbackRounds_; }
    /** Slices paused at a sync fence and resumed in slot order. */
    std::uint64_t fencedSlices() const { return fencedSlices_; }
    /** Workers that died cleanly and had their shard adopted. */
    unsigned degradedWorkers() const { return degradedWorkers_; }
    /** @} */

    /** Register scheduler activity counters into @p group. */
    void addStats(stats::Group& group) const;

    /**
     * Publish liveness/progress into @p slot: one beat per completed
     * slice (every quantum, so a healthy run beats every few
     * milliseconds of host time). nullptr (the default) disables --
     * the per-slice cost is then a single pointer test.
     */
    void setHeartbeat(obs::HeartbeatSlot* slot) { heartbeat_ = slot; }

  private:
    /** Per-slot sharded-engine state, parallel to the slots vector. */
    struct SlotState
    {
        /** Slice buffer; merged onto the bus in slot-id order. */
        TxnRecorder recorder;
        /** Slot ran a slice this round (merge/trace bookkeeping). */
        bool ran = false;
        /** Slice paused at a sync fence, pending an in-order resume. */
        bool fenced = false;
    };

    /** One spawned worker (workers 1..W-1; worker 0 is the caller). */
    struct Worker
    {
        std::thread thread;
        /** Set once when the worker dies; read after round quiescence. */
        std::exception_ptr error;
        /** Worker died mid-slice: guest state is unrecoverable. */
        bool dirty = false;
        /** Dead workers take no further rounds; their shard moves to
         *  the scheduling thread (degrade) or the run fails. */
        bool dead = false;
    };

    void runClassic(std::vector<CoreSlot>& slots);
    void runSharded(std::vector<CoreSlot>& slots, unsigned n_workers);

    /** Record SetCoreId + run the quantum into the slot's recorder.
     *  @p concurrent arms the sync fence (worker context). */
    void runSlice(CoreSlot& slot, SlotState& state, bool concurrent);
    /** Resume a fenced slice on the scheduling thread (fence disarmed). */
    void resumeSlice(CoreSlot& slot, SlotState& state);
    /** Close a slice: record InstRetired/CyclesCompleted, beat. */
    void finishSlice(CoreSlot& slot, SlotState& state);
    /** Worker w's slots of this round, executed with the fence armed.
     *  @p dirty (worker context) is left true iff an exception escaped
     *  mid-slice, i.e. guest state is partially advanced. */
    void runShard(std::vector<CoreSlot>& slots,
                  std::vector<SlotState>& states, unsigned worker,
                  unsigned n_workers, bool* dirty = nullptr);

    DexParams params_;
    FrontSideBus* fsb_;
    DramModel* dram_;
    obs::HeartbeatSlot* heartbeat_ = nullptr;
    std::uint64_t rounds_ = 0;
    std::uint64_t slices_ = 0;
    std::uint64_t parallelRounds_ = 0;
    std::uint64_t serialFallbackRounds_ = 0;
    std::uint64_t fencedSlices_ = 0;
    unsigned degradedWorkers_ = 0;

    /** @name Round hand-off between the scheduler and its crew
     * Workers sleep until roundGen_ advances, run their shard of the
     * slots/states arrays published in crewSlots_/crewStates_, then
     * decrement pendingWorkers_. The scheduler only inspects worker
     * errors after pendingWorkers_ reaches zero, so slot state is
     * quiescent whenever it is read. @{ */
    Mutex crewMutex_;
    CondVar crewWorkCv_;
    CondVar crewDoneCv_;
    std::uint64_t roundGen_ GUARDED_BY(crewMutex_) = 0;
    unsigned pendingWorkers_ GUARDED_BY(crewMutex_) = 0;
    bool crewShutdown_ GUARDED_BY(crewMutex_) = false;
    std::vector<CoreSlot>* crewSlots_ GUARDED_BY(crewMutex_) = nullptr;
    std::vector<SlotState>* crewStates_ GUARDED_BY(crewMutex_) = nullptr;
    unsigned crewWidth_ GUARDED_BY(crewMutex_) = 0;
    /** @} */

    std::vector<std::unique_ptr<Worker>> workers_;
};

} // namespace cosim

#endif // COSIM_SOFTSDV_DEX_SCHEDULER_HH
