/**
 * @file
 * DEX-style time-slice scheduler.
 *
 * SoftSDV's DEX mode runs N virtual cores on one physical processor by
 * letting each run natively for a slice, then saving state and switching.
 * Dragonhead, snooping the bus, is told which core owns each slice via
 * SetCoreId messages, and gets InstRetired / CyclesCompleted deltas at
 * slice boundaries so it can compute instruction-synchronized statistics.
 * This class reproduces that loop: round-robin over the live tasks, one
 * quantum of retired instructions per slice, messages on the bus at every
 * boundary, and a shared-memory round boundary for the DRAM contention
 * model.
 */

#ifndef COSIM_SOFTSDV_DEX_SCHEDULER_HH
#define COSIM_SOFTSDV_DEX_SCHEDULER_HH

#include <cstdint>
#include <vector>

#include "base/stats.hh"
#include "mem/dram.hh"
#include "mem/fsb.hh"
#include "obs/progress.hh"
#include "softsdv/core_context.hh"
#include "softsdv/guest.hh"

namespace cosim {

/** Scheduler tuning. */
struct DexParams
{
    /** Retired instructions per slice before switching cores. */
    std::uint64_t quantumInsts = 50000;

    /** Emit Start/Stop/SetCoreId/InstRetired/Cycles messages. */
    bool emitMessages = true;

    /**
     * Safety cap on total retired instructions (0 = none). A workload
     * that fails to terminate trips a panic instead of hanging the run.
     */
    std::uint64_t maxTotalInsts = 0;

    /**
     * Emulated core frequency used to place quantum spans on the trace's
     * simulated-time axis (matches ControlBlockParams::coreFreqGhz).
     */
    double coreFreqGhz = 3.0;
};

/** One virtual core with the task currently bound to it. */
struct CoreSlot
{
    CpuModel* cpu = nullptr;
    ThreadTask* task = nullptr;

    // Scheduler-private bookkeeping.
    bool done = false;
    InstCount instsAtSliceStart = 0;
    Cycles cyclesAtSliceStart = 0;
};

/** See file comment. */
class DexScheduler
{
  public:
    /**
     * @param params scheduler tuning
     * @param fsb bus for message emission (may be nullptr)
     * @param dram shared memory model for round boundaries (may be null)
     */
    DexScheduler(const DexParams& params, FrontSideBus* fsb,
                 DramModel* dram);

    /** Run every slot's task to completion. */
    void run(std::vector<CoreSlot>& slots);

    /** Completed scheduling rounds (all live cores ran one slice). */
    std::uint64_t rounds() const { return rounds_; }

    /** Total slices executed. */
    std::uint64_t slices() const { return slices_; }

    /** Register scheduler activity counters into @p group. */
    void addStats(stats::Group& group) const;

    /**
     * Publish liveness/progress into @p slot: one beat per completed
     * slice (every quantum, so a healthy run beats every few
     * milliseconds of host time). nullptr (the default) disables --
     * the per-slice cost is then a single pointer test.
     */
    void setHeartbeat(obs::HeartbeatSlot* slot) { heartbeat_ = slot; }

  private:
    DexParams params_;
    FrontSideBus* fsb_;
    DramModel* dram_;
    obs::HeartbeatSlot* heartbeat_ = nullptr;
    std::uint64_t rounds_ = 0;
    std::uint64_t slices_ = 0;
};

} // namespace cosim

#endif // COSIM_SOFTSDV_DEX_SCHEDULER_HH
