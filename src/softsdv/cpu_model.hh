/**
 * @file
 * In-order core model: instruction accounting, private caches, optional
 * hardware prefetcher, and a CPI-accumulation timing model.
 *
 * Two usage modes, matching the paper's two measurement rigs:
 *
 *  - *Timing mode* (Table 2, Figure 8): the private hierarchy is
 *    L1 + L2; misses beyond L2 are charged the shared DramModel's current
 *    effective latency, and all off-chip traffic is reported to it so
 *    bandwidth contention feeds back into latency and prefetch admission.
 *
 *  - *Co-simulation mode* (Figures 4-7): the private hierarchy is the L1
 *    filter in front of the FSB; every beyond-L1 fetch/writeback is
 *    emitted on the bus where Dragonhead instances snoop it. Latency is a
 *    fixed nominal value because the emulation is passive.
 */

#ifndef COSIM_SOFTSDV_CPU_MODEL_HH
#define COSIM_SOFTSDV_CPU_MODEL_HH

#include <memory>
#include <vector>

#include "base/random.hh"
#include "base/types.hh"
#include "cache/hierarchy.hh"
#include "mem/dram.hh"
#include "mem/fsb.hh"
#include "prefetch/stride_prefetcher.hh"

namespace cosim {

/** Static configuration of one core. */
struct CpuParams
{
    /** CPI of compute instructions and L1-hitting memory instructions. */
    double baseCpi = 0.75;

    /** Private cache stack. */
    HierarchyParams caches;

    /** Latency of an L2 hit, in cycles. */
    Cycles l2HitLatency = 18;

    /**
     * In co-simulation mode (useDramLatency == false): nominal latency
     * charged for each beyond-private-caches access.
     */
    Cycles beyondLatency = 100;

    /** Charge DramModel latency (timing mode) for beyond accesses. */
    bool useDramLatency = true;

    /** Emit beyond-traffic on the front-side bus (co-simulation mode). */
    bool emitFsbTraffic = false;

    /** Enable the stride hardware prefetcher. */
    bool prefetchEnabled = false;

    /** Prefetcher tuning (used when prefetchEnabled). */
    StridePrefetcherParams prefetch;

    /**
     * Timeliness of prefetching: the first demand hit on a prefetched
     * line still pays this fraction of the current memory latency (a
     * degree-2 stride prefetcher cannot fully hide a several-hundred-
     * cycle memory access at streaming rates).
     */
    double prefetchLateFraction = 0.7;
};

/** Prefetch bookkeeping of one core. */
struct CpuPrefetchStats
{
    std::uint64_t candidates = 0; ///< proposals from the prefetcher
    std::uint64_t admitted = 0;   ///< issued to memory (bandwidth allowed)
    std::uint64_t dropped = 0;    ///< throttled by bandwidth pressure
    std::uint64_t installed = 0;  ///< actually brought a new line in

    void reset() { *this = CpuPrefetchStats(); }
};

/**
 * One virtual core. Not a micro-architectural model: the paper measured
 * IPC on real machines; we reproduce the first-order behaviour (base CPI
 * plus stall cycles per miss level) that makes the cross-workload
 * comparison meaningful.
 */
class CpuModel
{
  public:
    /**
     * @param id this core's id (tagged on bus transactions)
     * @param params static configuration
     * @param dram shared memory model (may be nullptr in pure co-sim mode)
     * @param sink where beyond-L1 traffic goes (the FrontSideBus itself,
     *        or a per-slot TxnRecorder under --dex-threads; may be
     *        nullptr in timing mode)
     */
    CpuModel(CoreId id, const CpuParams& params, DramModel* dram,
             TxnSink* sink);

    /**
     * Redirect subsequent traffic to @p sink (nullptr restores "no
     * emission"). The sharded DEX scheduler points each core at its
     * slot's recorder for the concurrent passes and back at the bus for
     * serial rounds; the traffic content is identical either way.
     */
    void bindSink(TxnSink* sink) { sink_ = sink; }
    TxnSink* sink() const { return sink_; }

    /**
     * A data memory reference of @p size bytes at @p addr.
     * @param n_insts how many load/store instructions this reference
     * represents; 0 derives the default max(1, size/8). Instrumented
     * containers pass their element count so scalar codes that walk a
     * byte or float array are charged one instruction per element while
     * the caches still see the same lines.
     */
    void dataAccess(Addr addr, std::uint32_t size, bool write,
                    InstCount n_insts = 0);

    /** @p n non-memory instructions. */
    void computeOps(std::uint64_t n);

    /** @name Instruction/cycle counters @{ */
    InstCount insts() const { return insts_; }
    InstCount memInsts() const { return memInsts_; }
    InstCount loads() const { return loads_; }
    InstCount stores() const { return stores_; }
    Cycles cycles() const { return static_cast<Cycles>(cyclesAcc_); }
    double ipc() const;
    /** @} */

    CoreId id() const { return id_; }
    const CpuParams& params() const { return params_; }

    PrivateHierarchy& caches() { return caches_; }
    const PrivateHierarchy& caches() const { return caches_; }

    const CpuPrefetchStats& prefetchStats() const { return pfStats_; }
    const Prefetcher* prefetcher() const { return prefetcher_.get(); }

    /** Register instruction/cycle/prefetch counters into @p group. */
    void addStats(stats::Group& group) const;

    /** Zero counters and empty the caches (used between runs). */
    void reset();

  private:
    void handleBeyond(Addr fetch_line, bool l1_was_write);
    void issuePrefetches(Addr trigger, bool was_beyond);

    CoreId id_;
    CpuParams params_;
    DramModel* dram_;
    TxnSink* sink_;
    /** L1 line size - 1, precomputed for the dataAccess fast path. */
    Addr l1LineMask_;

    PrivateHierarchy caches_;
    std::unique_ptr<StridePrefetcher> prefetcher_;
    std::vector<Addr> pfProposals_;
    Rng pfAdmitRng_;

    InstCount insts_ = 0;
    InstCount memInsts_ = 0;
    InstCount loads_ = 0;
    InstCount stores_ = 0;
    double cyclesAcc_ = 0.0;
    CpuPrefetchStats pfStats_;
};

} // namespace cosim

#endif // COSIM_SOFTSDV_CPU_MODEL_HH
