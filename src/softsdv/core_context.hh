/**
 * @file
 * The handle a workload thread uses to touch simulated memory.
 *
 * Every load/store/compute call flows into the virtual core the DEX
 * scheduler currently has the thread running on. The context also tracks
 * quantum consumption so the scheduler can preempt between step() calls.
 */

#ifndef COSIM_SOFTSDV_CORE_CONTEXT_HH
#define COSIM_SOFTSDV_CORE_CONTEXT_HH

#include "base/types.hh"
#include "softsdv/cpu_model.hh"

namespace cosim {

/** See file comment. */
class CoreContext
{
  public:
    explicit CoreContext(CpuModel* cpu);

    /**
     * Read @p size bytes at simulated address @p addr, counted as
     * @p n_insts load instructions (0 = max(1, size/8)).
     */
    void load(Addr addr, std::uint32_t size, InstCount n_insts = 0) {
        cpu_->dataAccess(addr, size, false, n_insts);
    }

    /** Write @p size bytes, counted as @p n_insts store instructions. */
    void store(Addr addr, std::uint32_t size, InstCount n_insts = 0) {
        cpu_->dataAccess(addr, size, true, n_insts);
    }

    /** Account @p n non-memory instructions. */
    void compute(std::uint64_t n) { cpu_->computeOps(n); }

    /**
     * Give up the rest of this DEX slice (a guest thread blocking on a
     * barrier or a not-yet-ready dependency). The scheduler moves on to
     * the next virtual core instead of letting the thread spin through
     * its quantum.
     */
    void yield() { yielded_ = true; }

    /** Scheduler-side: did the task yield during the last step? */
    bool yielded() const { return yielded_; }

    /** Scheduler-side: re-arm for the next step. */
    void clearYield() { yielded_ = false; }

    /**
     * Synchronization fence. Guest code calls this at the entry of any
     * step that is about to touch a shared sync primitive (see
     * BarrierWaiter::wait). In the serial scheduler the fence is unarmed
     * and returns false -- the step proceeds exactly as before. Under
     * --dex-threads the concurrent pass arms it: the call returns true,
     * the step must immediately return without simulating anything, and
     * the scheduler re-runs the slice from this point on the scheduling
     * thread where the primitive is safe to touch. The fence contract is
     * therefore: no load/store/compute may precede the syncFence() call
     * inside the fencing step, so the re-run charges identical work.
     */
    bool syncFence()
    {
        if (!fenceArmed_)
            return false;
        fenced_ = true;
        yielded_ = true;
        return true;
    }

    /** @name Scheduler-side fence control @{ */
    void armFence() { fenceArmed_ = true; fenced_ = false; }
    void disarmFence() { fenceArmed_ = false; fenced_ = false; }
    bool fenced() const { return fenced_; }
    /** @} */

    /** Virtual core this thread is currently scheduled on. */
    CoreId coreId() const { return cpu_->id(); }

    /** Instructions retired by this core so far. */
    InstCount instsExecuted() const { return cpu_->insts(); }

    /** The core model behind this context. */
    CpuModel& cpu() { return *cpu_; }

  private:
    CpuModel* cpu_;
    bool yielded_ = false;
    bool fenceArmed_ = false;
    bool fenced_ = false;
};

} // namespace cosim

#endif // COSIM_SOFTSDV_CORE_CONTEXT_HH
