/**
 * @file
 * Guest-side interfaces: what a workload must implement to run on the
 * virtual platform.
 *
 * SoftSDV ran unmodified guest binaries under VMX; our stand-in runs
 * instrumented C++ kernels. A Workload builds its data structures during
 * setUp() (outside the emulation window, like the OS boot and input
 * loading the paper excludes via start/stop messages), then exposes one
 * ThreadTask per software thread. The DEX scheduler time-slices the tasks
 * onto virtual cores; each task advances in small, bounded step() calls so
 * a quantum can end between steps, exactly as VMX preemption ended a
 * direct-execution slice.
 */

#ifndef COSIM_SOFTSDV_GUEST_HH
#define COSIM_SOFTSDV_GUEST_HH

#include <cstdint>
#include <memory>
#include <string>

#include "base/types.hh"

namespace cosim {

class CoreContext;
class SimAllocator;

/** Per-run workload configuration. */
struct WorkloadConfig
{
    /** Number of software threads (one per virtual core). */
    unsigned nThreads = 1;

    /**
     * Input scale factor: 1.0 is the default reproduction input (sized so
     * working-set knees land where the paper reports them); tests use
     * much smaller values.
     */
    double scale = 1.0;

    /** Seed for synthetic data generation. */
    std::uint64_t seed = 42;
};

/**
 * One software thread of a workload. step() performs a small bounded unit
 * of work (a few hundred to a few thousand instructions) against the
 * CoreContext it is handed, and returns false when the thread has
 * finished.
 */
class ThreadTask
{
  public:
    virtual ~ThreadTask() = default;

    /** Advance by one unit of work. @return true iff more work remains. */
    virtual bool step(CoreContext& ctx) = 0;

    /**
     * May step() run concurrently with the other tasks of the same
     * workload on different host threads? A task may answer true only
     * when every step either (a) touches exclusively task-private or
     * per-tid-disjoint host state plus stable shared reads, with any
     * commutative shared updates done atomically, or (b) begins with
     * ctx.syncFence() before touching a shared sync primitive, charging
     * nothing before the fence (see CoreContext::syncFence). Defaults to
     * false: the sharded DEX scheduler then runs every round of this
     * workload serially -- still through the record/merge path, so the
     * artifacts stay bit-identical either way.
     */
    virtual bool parallelStepSafe() const { return false; }
};

/** A complete benchmark program. */
class Workload
{
  public:
    virtual ~Workload() = default;

    /** Short identifier, e.g. "FIMI". */
    virtual std::string name() const = 0;

    /** One-line description for reports. */
    virtual std::string description() const = 0;

    /**
     * Generate input data and allocate simulated address ranges.
     * Runs outside the emulation window (no simulated accesses).
     */
    virtual void setUp(const WorkloadConfig& cfg, SimAllocator& alloc) = 0;

    /** Create the task for software thread @p tid (0-based). */
    virtual std::unique_ptr<ThreadTask> createThread(unsigned tid) = 0;

    /**
     * Check the computed result after every thread finished.
     * @return true iff the workload produced a correct/plausible answer.
     */
    virtual bool verify() { return true; }

    /** Release input data (optional). */
    virtual void tearDown() {}
};

} // namespace cosim

#endif // COSIM_SOFTSDV_GUEST_HH
