#include "harness/sweep_journal.hh"

#include <cstdlib>
#include <fstream>
#include <sstream>

#include "base/fault.hh"
#include "base/host_clock.hh"
#include "base/logging.hh"
#include "obs/json.hh"

namespace cosim {
namespace {

constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ull;
constexpr std::uint64_t kFnvPrime = 0x100000001b3ull;

/** Fetch a field as u64, accepting both JSON numbers (counts) and
 * decimal strings (64-bit digests). */
bool
fieldU64(const obs::json::Value& rec, const char* key,
         std::uint64_t* out)
{
    const obs::json::Value* v = rec.find(key);
    if (v == nullptr)
        return false;
    if (v->isNumber()) {
        *out = static_cast<std::uint64_t>(v->num);
        return true;
    }
    if (v->isString()) {
        char* end = nullptr;
        *out = std::strtoull(v->str.c_str(), &end, 10);
        return end != nullptr && *end == '\0' && !v->str.empty();
    }
    return false;
}

bool
fieldStr(const obs::json::Value& rec, const char* key, std::string* out)
{
    const obs::json::Value* v = rec.find(key);
    if (v == nullptr || !v->isString())
        return false;
    *out = v->str;
    return true;
}

} // namespace

std::uint64_t
fnv1a64(const void* data, std::size_t n)
{
    const unsigned char* p = static_cast<const unsigned char*>(data);
    std::uint64_t h = kFnvOffset;
    for (std::size_t i = 0; i < n; ++i) {
        h ^= p[i];
        h *= kFnvPrime;
    }
    return h;
}

bool
digestFileFnv(const std::string& path, std::uint64_t* digest,
              std::uint64_t* bytes)
{
    std::ifstream in(path, std::ios_base::binary);
    if (!in.is_open())
        return false;
    std::ostringstream body;
    body << in.rdbuf();
    if (in.bad())
        return false;
    const std::string text = body.str();
    *digest = fnv1a64(text.data(), text.size());
    *bytes = text.size();
    return true;
}

SweepJournal::SweepJournal(const std::string& path,
                           std::uint64_t next_seq)
    : file_(path, /*truncate=*/next_seq == 0), seq_(next_seq)
{}

bool
SweepJournal::append(const std::string& event, const std::string& fields)
{
    LockGuard lock(mutex_);
    if (failed_)
        return false;
    std::string line = "{\"seq\":" + std::to_string(seq_) +
                       ",\"t_us\":" + std::to_string(hostClockNowUs()) +
                       ",\"event\":" + obs::json::quote(event);
    if (!fields.empty())
        line += "," + fields;
    line += "}";
    // The seeded failure and a real one take the same path: warn once,
    // then run journal-less -- the journal must never kill the sweep
    // it protects.
    if (faultPending("journal.write.fail") || !file_.appendLine(line)) {
        failed_ = true;
        warn("journal: write to '%s' failed; journal disabled",
             file_.path().c_str());
        return false;
    }
    ++seq_;
    return true;
}

void
SweepJournal::sweepPlan(const std::string& figure,
                        std::uint64_t config_digest, std::size_t cells)
{
    append("sweep_plan",
           "\"schema\":" + obs::json::quote(kJournalSchema) +
               ",\"figure\":" + obs::json::quote(figure) +
               ",\"config_digest\":\"" + std::to_string(config_digest) +
               "\",\"cells\":" + std::to_string(cells));
}

void
SweepJournal::cellPlanned(const std::string& cell)
{
    append("planned", "\"cell\":" + obs::json::quote(cell));
}

void
SweepJournal::cellRunning(const std::string& cell, unsigned attempt,
                          int pid)
{
    append("running", "\"cell\":" + obs::json::quote(cell) +
                          ",\"attempt\":" + std::to_string(attempt) +
                          ",\"pid\":" + std::to_string(pid));
}

void
SweepJournal::cellDone(const std::string& cell, unsigned attempts,
                       const std::string& artifact, std::uint64_t bytes,
                       std::uint64_t digest)
{
    append("done", "\"cell\":" + obs::json::quote(cell) +
                       ",\"attempts\":" + std::to_string(attempts) +
                       ",\"artifact\":" + obs::json::quote(artifact) +
                       ",\"bytes\":" + std::to_string(bytes) +
                       ",\"digest\":\"" + std::to_string(digest) + "\"");
}

void
SweepJournal::cellFailed(const std::string& cell, unsigned attempts,
                         const std::string& error,
                         const JournalExit& how)
{
    append("failed", "\"cell\":" + obs::json::quote(cell) +
                         ",\"attempts\":" + std::to_string(attempts) +
                         ",\"error\":" + obs::json::quote(error) +
                         ",\"exit_kind\":" + obs::json::quote(how.kind) +
                         ",\"exit_code\":" + std::to_string(how.code));
}

void
SweepJournal::resumed(std::size_t skipped, std::size_t rerun)
{
    append("resume", "\"skipped\":" + std::to_string(skipped) +
                         ",\"rerun\":" + std::to_string(rerun));
}

void
SweepJournal::resumeSkip(const std::string& cell)
{
    append("resume_skip", "\"cell\":" + obs::json::quote(cell));
}

void
SweepJournal::sweepDone(std::size_t ok, std::size_t failed)
{
    append("sweep_done", "\"ok\":" + std::to_string(ok) +
                             ",\"failed\":" + std::to_string(failed));
}

bool
SweepJournal::healthy() const
{
    LockGuard lock(mutex_);
    return !failed_;
}

const JournalCell*
JournalState::find(const std::string& cell) const
{
    for (const auto& entry : cells) {
        if (entry.first == cell)
            return &entry.second;
    }
    return nullptr;
}

bool
JournalState::load(const std::string& path, JournalState* out,
                   std::string* error)
{
    std::ifstream in(path, std::ios_base::binary);
    if (!in.is_open()) {
        if (error != nullptr)
            *error = "cannot open '" + path + "'";
        return false;
    }
    std::ostringstream body;
    body << in.rdbuf();
    const std::string text = body.str();

    auto fail = [&](std::size_t lineno, const std::string& why) {
        if (error != nullptr) {
            *error = path + ":" + std::to_string(lineno) + ": " + why;
        }
        return false;
    };
    auto cellOf = [out](const std::string& name) -> JournalCell& {
        for (auto& entry : out->cells) {
            if (entry.first == name)
                return entry.second;
        }
        out->cells.emplace_back(name, JournalCell{});
        return out->cells.back().second;
    };

    std::size_t pos = 0;
    std::size_t lineno = 0;
    while (pos < text.size()) {
        const std::size_t nl = text.find('\n', pos);
        if (nl == std::string::npos) {
            // Torn final record: the append that a crash interrupted.
            // WAL semantics say it was never written.
            break;
        }
        const std::string line = text.substr(pos, nl - pos);
        pos = nl + 1;
        out->validBytes = pos;
        ++lineno;
        if (line.empty())
            return fail(lineno, "empty record");

        obs::json::Value rec;
        std::string jerr;
        if (!obs::json::parse(line, rec, &jerr) || !rec.isObject())
            return fail(lineno, "bad JSON: " + jerr);
        std::uint64_t seq = 0;
        if (!fieldU64(rec, "seq", &seq) || seq != out->nextSeq)
            return fail(lineno, "seq not dense");
        std::string event;
        if (!fieldStr(rec, "event", &event))
            return fail(lineno, "missing event");

        if (event == "sweep_plan") {
            std::string schema;
            if (!fieldStr(rec, "schema", &schema) ||
                schema != kJournalSchema) {
                return fail(lineno, "unsupported schema");
            }
            if (out->sawPlan)
                return fail(lineno, "duplicate sweep_plan");
            fieldStr(rec, "figure", &out->figure);
            if (!fieldU64(rec, "config_digest", &out->configDigest))
                return fail(lineno, "missing config_digest");
            out->sawPlan = true;
        } else if (event == "planned" || event == "running" ||
                   event == "done" || event == "failed" ||
                   event == "resume_skip") {
            std::string name;
            if (!fieldStr(rec, "cell", &name))
                return fail(lineno, "missing cell");
            JournalCell& cell = cellOf(name);
            if (event == "planned") {
                cell.state = "planned";
            } else if (event == "running") {
                cell.state = "running";
                std::uint64_t v = 0;
                fieldU64(rec, "attempt", &v);
                cell.attempts = static_cast<unsigned>(v);
                v = 0;
                fieldU64(rec, "pid", &v);
                cell.pid = static_cast<int>(v);
            } else if (event == "done") {
                cell.state = "done";
                std::uint64_t v = 0;
                fieldU64(rec, "attempts", &v);
                cell.attempts = static_cast<unsigned>(v);
                if (!fieldStr(rec, "artifact", &cell.artifact) ||
                    !fieldU64(rec, "bytes", &cell.artifactBytes) ||
                    !fieldU64(rec, "digest", &cell.artifactDigest)) {
                    return fail(lineno, "incomplete done record");
                }
            } else if (event == "failed") {
                cell.state = "failed";
                std::uint64_t v = 0;
                fieldU64(rec, "attempts", &v);
                cell.attempts = static_cast<unsigned>(v);
                fieldStr(rec, "error", &cell.error);
            } else {
                cell.state = "skipped";
            }
        } else if (event == "resume" || event == "sweep_done") {
            // Counters only; nothing to replay.
        } else {
            return fail(lineno, "unknown event '" + event + "'");
        }
        ++out->nextSeq;
    }
    if (!out->sawPlan) {
        if (error != nullptr)
            *error = path + ": no sweep_plan record";
        return false;
    }
    return true;
}

} // namespace cosim
