#include "harness/report.hh"

#include <cstdio>
#include <cstdlib>
#include <sys/stat.h>
#include <sys/types.h>

#include "base/fault.hh"
#include "base/logging.hh"
#include "base/str.hh"
#include "obs/metrics.hh"
#include "workloads/workload_factory.hh"

namespace cosim {

const char*
toString(CellMode mode)
{
    switch (mode) {
      case CellMode::Combined:
        return "combined";
      case CellMode::Exec:
        return "exec";
      case CellMode::Replay:
        return "replay";
      case CellMode::Sampled:
        return "sampled";
    }
    return "?";
}

std::string
fsbStreamPath(const std::string& base, const std::string& workload)
{
    const std::string ext = ".fsb";
    std::string stem = base;
    if (stem.size() >= ext.size() &&
        stem.compare(stem.size() - ext.size(), ext.size(), ext) == 0) {
        stem.resize(stem.size() - ext.size());
    }
    return stem + "." + workload + ext;
}

BenchOptions
parseBenchArgs(int argc, char** argv, const std::string& bench_description)
{
    BenchOptions opts;
    // Keep the exact argv around: --isolate-cells re-executes this
    // binary per cell (base/subprocess.hh) with a filtered copy.
    opts.selfArgv.reserve(static_cast<std::size_t>(argc));
    for (int i = 0; i < argc; ++i)
        opts.selfArgv.push_back(argv[i]);
    bool quick = false;
    bool sample_period_cli = false;
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--help" || arg == "-h") {
            std::printf(
                "%s\n\n"
                "options:\n"
                "  --scale=<f>      input scale factor (default 1.0)\n"
                "  --quick          shorthand for --scale=0.05\n"
                "  --seed=<n>       data generation seed (default 42)\n"
                "  --workloads=a,b  run a subset of the workloads\n"
                "  --out=<dir>      CSV output directory (default "
                "results)\n"
                "  --no-verify      continue when self-verification "
                "fails\n"
                "  --trace=<file>   record a Chrome trace-event JSON "
                "(chrome://tracing / Perfetto)\n"
                "  --stats=<file>   dump the stats registry "
                "(.json/.csv/.txt by extension)\n"
                "  --manifest=<f>   run manifest path (default "
                "<out>/run.json)\n"
                "  --jobs=<n>       run up to n sweep cells on parallel "
                "host threads (default 1)\n"
                "  --emu-threads=<n> emulate Dragonheads on n worker "
                "threads per rig (default 0 = inline)\n"
                "  --dex-threads=<n> shard guest (DEX) execution across "
                "n host threads per rig (default 0 =\n"
                "                   classic scheduler; results are "
                "bit-identical for every value)\n"
                "  --cells=<mode>   sweep cell decomposition: combined "
                "(default), exec (guest per config cell),\n"
                "                   replay (guest once per workload, "
                "replay per config cell), sampled\n"
                "                   (replay only a plan's representative "
                "intervals in detail)\n"
                "  --plan=<base>    load sampling plans from "
                "<base>.<workload>.plan.json (with --cells=sampled)\n"
                "  --plan-out=<base> write generated sampling plans to "
                "<base>.<workload>.plan.json\n"
                "  --warmup-windows=<n> warm-up windows per "
                "representative interval in generated plans "
                "(default 2)\n"
                "  --no-warming     drop fast-forwarded spans' data "
                "instead of functionally warming the LLC\n"
                "  --warm-stride=<n> deliver every nth fast-forwarded "
                "data transaction when warming (default 4)\n"
                "  --sample-period-us=<n> CB sample window in "
                "microseconds (default: preset 500, --quick 50)\n"
                "  --max-phases=<n> cap phases in generated sampling "
                "plans (default 0 = auto-scale)\n"
                "  --capture=<base> record each workload's FSB stream "
                "to <base>.<workload>.fsb\n"
                "  --replay=<base>  replay recorded streams instead of "
                "executing the guest\n"
                "  --digest=<file>  write per-workload FSB stream "
                "digests (golden-baseline format)\n"
                "  --faults=<spec>  arm a deterministic fault plan "
                "(site:nth=K or site:p=X, comma-separated)\n"
                "  --keep-going     finish the sweep despite failed "
                "cells (recorded with status \"failed\")\n"
                "  --retry-cells=<n> retry a failed cell up to n extra "
                "times (default 0)\n"
                "  --cell-timeout=<s> mark a cell failed after s "
                "wall-clock seconds (default off)\n"
                "  --degrade-serial adopt a dead emulation worker's "
                "Dragonheads onto the workload thread\n"
                "  --progress       live per-cell progress view on "
                "stderr\n"
                "  --progress-file=<f> machine-readable progress stream "
                "(JSON lines)\n"
                "  --metrics=<f>    dump telemetry histograms/counters "
                "(OpenMetrics text)\n"
                "  --isolate-cells  run each sweep cell in its own "
                "forked process (crash containment)\n"
                "  --journal[=<f>]  write-ahead journal of cell state "
                "transitions (default <out>/sweep.journal.jsonl)\n"
                "  --resume=<f>     resume an interrupted sweep from "
                "its journal, skipping verified cells\n",
                bench_description.c_str());
            std::exit(0);
        } else if (startsWith(arg, "--scale=")) {
            opts.scale = std::strtod(arg.c_str() + 8, nullptr);
            fatal_if(opts.scale <= 0.0, "bad --scale value '%s'",
                     arg.c_str());
        } else if (arg == "--quick") {
            opts.scale = 0.05;
            quick = true;
        } else if (startsWith(arg, "--seed=")) {
            opts.seed = std::strtoull(arg.c_str() + 7, nullptr, 10);
            opts.seedSource = "cli";
        } else if (startsWith(arg, "--workloads=")) {
            for (const std::string& w : split(arg.substr(12), ',')) {
                if (!trim(w).empty())
                    opts.workloads.push_back(trim(w));
            }
        } else if (startsWith(arg, "--out=")) {
            opts.outDir = arg.substr(6);
        } else if (arg == "--no-verify") {
            opts.strictVerify = false;
        } else if (startsWith(arg, "--trace=")) {
            opts.traceFile = arg.substr(8);
            fatal_if(opts.traceFile.empty(), "--trace needs a file path");
        } else if (startsWith(arg, "--stats=")) {
            opts.statsFile = arg.substr(8);
            fatal_if(opts.statsFile.empty(), "--stats needs a file path");
        } else if (startsWith(arg, "--manifest=")) {
            opts.manifestFile = arg.substr(11);
            fatal_if(opts.manifestFile.empty(),
                     "--manifest needs a file path");
        } else if (startsWith(arg, "--jobs=")) {
            opts.jobs = static_cast<unsigned>(
                std::strtoul(arg.c_str() + 7, nullptr, 10));
            fatal_if(opts.jobs == 0, "bad --jobs value '%s'", arg.c_str());
        } else if (startsWith(arg, "--emu-threads=")) {
            opts.emuThreads = static_cast<unsigned>(
                std::strtoul(arg.c_str() + 14, nullptr, 10));
        } else if (startsWith(arg, "--dex-threads=")) {
            opts.dexThreads = static_cast<unsigned>(
                std::strtoul(arg.c_str() + 14, nullptr, 10));
        } else if (startsWith(arg, "--cells=")) {
            std::string mode = arg.substr(8);
            if (mode == "combined") {
                opts.cells = CellMode::Combined;
            } else if (mode == "exec") {
                opts.cells = CellMode::Exec;
            } else if (mode == "replay") {
                opts.cells = CellMode::Replay;
            } else if (mode == "sampled") {
                opts.cells = CellMode::Sampled;
            } else {
                fatal("bad --cells mode '%s' (combined, exec, replay "
                      "or sampled)", mode.c_str());
            }
        } else if (startsWith(arg, "--capture=")) {
            opts.captureBase = arg.substr(10);
            fatal_if(opts.captureBase.empty(),
                     "--capture needs a file path");
        } else if (startsWith(arg, "--replay=")) {
            opts.replayBase = arg.substr(9);
            fatal_if(opts.replayBase.empty(), "--replay needs a file path");
        } else if (startsWith(arg, "--plan=")) {
            opts.planBase = arg.substr(7);
            fatal_if(opts.planBase.empty(), "--plan needs a file path");
        } else if (startsWith(arg, "--plan-out=")) {
            opts.planOutBase = arg.substr(11);
            fatal_if(opts.planOutBase.empty(),
                     "--plan-out needs a file path");
        } else if (startsWith(arg, "--warmup-windows=")) {
            opts.warmupWindows =
                std::strtoull(arg.c_str() + 17, nullptr, 10);
        } else if (arg == "--no-warming") {
            opts.sampledWarming = false;
        } else if (startsWith(arg, "--warm-stride=")) {
            opts.warmStride = static_cast<unsigned>(
                std::strtoul(arg.c_str() + 14, nullptr, 10));
            fatal_if(opts.warmStride == 0,
                     "bad --warm-stride value '%s' (1 delivers every "
                     "fast-forwarded transaction)", arg.c_str());
        } else if (startsWith(arg, "--sample-period-us=")) {
            opts.samplePeriodUs =
                std::strtoull(arg.c_str() + 19, nullptr, 10);
            fatal_if(opts.samplePeriodUs == 0,
                     "bad --sample-period-us value '%s'", arg.c_str());
            sample_period_cli = true;
        } else if (startsWith(arg, "--max-phases=")) {
            opts.maxPhases = static_cast<unsigned>(
                std::strtoul(arg.c_str() + 13, nullptr, 10));
        } else if (startsWith(arg, "--digest=")) {
            opts.digestFile = arg.substr(9);
            fatal_if(opts.digestFile.empty(), "--digest needs a file path");
        } else if (startsWith(arg, "--faults=")) {
            opts.faults = arg.substr(9);
            fatal_if(opts.faults.empty(), "--faults needs a fault spec");
        } else if (arg == "--keep-going") {
            opts.keepGoing = true;
        } else if (startsWith(arg, "--retry-cells=")) {
            opts.retryCells = static_cast<unsigned>(
                std::strtoul(arg.c_str() + 14, nullptr, 10));
        } else if (startsWith(arg, "--cell-timeout=")) {
            opts.cellTimeout = std::strtod(arg.c_str() + 15, nullptr);
            fatal_if(opts.cellTimeout <= 0.0,
                     "bad --cell-timeout value '%s'", arg.c_str());
        } else if (arg == "--degrade-serial") {
            opts.degradeSerial = true;
        } else if (arg == "--progress") {
            opts.progress = true;
        } else if (startsWith(arg, "--progress-file=")) {
            opts.progressFile = arg.substr(16);
            fatal_if(opts.progressFile.empty(),
                     "--progress-file needs a file path");
        } else if (startsWith(arg, "--metrics=")) {
            opts.metricsFile = arg.substr(10);
            fatal_if(opts.metricsFile.empty(),
                     "--metrics needs a file path");
        } else if (arg == "--isolate-cells") {
            opts.isolateCells = true;
        } else if (arg == "--journal") {
            opts.journalFile = "-"; // placeholder: default after --out
        } else if (startsWith(arg, "--journal=")) {
            opts.journalFile = arg.substr(10);
            fatal_if(opts.journalFile.empty(),
                     "--journal needs a file path");
        } else if (startsWith(arg, "--resume=")) {
            opts.resumeFrom = arg.substr(9);
            fatal_if(opts.resumeFrom.empty(),
                     "--resume needs a journal path");
        } else if (startsWith(arg, "--run-cell=")) {
            // Internal: --isolate-cells child re-entry.
            opts.runCell = arg.substr(11);
            fatal_if(opts.runCell.empty(), "--run-cell needs a label");
        } else if (startsWith(arg, "--cell-result=")) {
            opts.cellResultFile = arg.substr(14);
        } else if (startsWith(arg, "--heartbeat-fd=")) {
            opts.heartbeatFd = static_cast<int>(
                std::strtol(arg.c_str() + 15, nullptr, 10));
        } else if (startsWith(arg, "--self-destruct=")) {
            opts.selfDestruct = arg.substr(16);
        } else {
            fatal("unknown option '%s' (try --help)", arg.c_str());
        }
    }
    if (opts.workloads.empty())
        opts.workloads = workloadNames();
    if (opts.manifestFile.empty())
        opts.manifestFile = opts.outDir + "/run.json";
    // Quick runs are ~20x shorter; at the preset's 500 us window a run
    // collapses into a handful of CB windows and a sampling plan ends
    // up covering nearly all of them. A finer window restores enough
    // geometry for phase clustering to find fast-forwardable spans.
    if (quick && !sample_period_cli)
        opts.samplePeriodUs = 50;
    fatal_if(!opts.captureBase.empty() && !opts.replayBase.empty(),
             "--capture and --replay are mutually exclusive (a replay "
             "re-broadcasts the stream it reads)");
    fatal_if(opts.cells == CellMode::Exec && !opts.replayBase.empty(),
             "--cells=exec executes the guest per cell; it cannot "
             "consume --replay streams");
    fatal_if(!opts.planBase.empty() && opts.cells != CellMode::Sampled,
             "--plan only applies to --cells=sampled");
    fatal_if(!opts.planBase.empty() && !opts.planOutBase.empty(),
             "--plan and --plan-out are mutually exclusive (a loaded "
             "plan is not regenerated)");
    // Crash-safe sweep plumbing. A child (--run-cell) never isolates,
    // journals, or resumes itself -- the parent owns all of that.
    if (!opts.runCell.empty()) {
        opts.isolateCells = false;
        opts.journalFile.clear();
        opts.resumeFrom.clear();
    }
    if (opts.journalFile == "-")
        opts.journalFile = opts.outDir + "/sweep.journal.jsonl";
    if (!opts.resumeFrom.empty() && opts.journalFile.empty())
        opts.journalFile = opts.resumeFrom;
    if (opts.isolateCells && opts.journalFile.empty())
        opts.journalFile = opts.outDir + "/sweep.journal.jsonl";
    if (opts.isolateCells || !opts.journalFile.empty()) {
        // Isolation and resume both need every cell to be
        // reconstructable from disk (a self-contained child process /
        // a skipped re-run). Replay and sampled cells qualify only
        // when their streams and plans come from files; an in-memory
        // capture phase cannot cross a process boundary.
        fatal_if(opts.cells == CellMode::Replay &&
                     opts.replayBase.empty(),
                 "--isolate-cells/--journal with --cells=replay "
                 "requires --replay=<base> (file-backed streams)");
        fatal_if(opts.cells == CellMode::Sampled &&
                     (opts.replayBase.empty() || opts.planBase.empty()),
                 "--isolate-cells/--journal with --cells=sampled "
                 "requires --replay=<base> and --plan=<base> "
                 "(file-backed streams and plans)");
    }
    if (!opts.faults.empty()) {
        // Arm here so every bench binary gets fault injection without
        // per-main plumbing; the plan inherits the run seed so the
        // injected failure schedule replays with the experiment.
        FaultPlan plan;
        plan.seed = opts.seed;
        std::string error;
        fatal_if(!FaultPlan::parse(opts.faults, &plan, &error),
                 "bad --faults spec: %s", error.c_str());
        plan.seed = opts.seed;
        FaultInjector::global().arm(plan);
    }
    // Telemetry is opt-in: the histogram record paths stay a single
    // relaxed load when none of the three flags is given.
    if (opts.progress || !opts.progressFile.empty() ||
        !opts.metricsFile.empty()) {
        obs::metrics::setEnabled(true);
    }
    return opts;
}

void
ensureOutputDir(const std::string& dir)
{
    if (dir.empty())
        return;
    struct stat st{};
    if (stat(dir.c_str(), &st) == 0) {
        fatal_if(!S_ISDIR(st.st_mode), "'%s' exists and is not a "
                 "directory", dir.c_str());
        return;
    }
    fatal_if(mkdir(dir.c_str(), 0755) != 0,
             "cannot create output directory '%s'", dir.c_str());
}

void
printBanner(const std::string& title, const BenchOptions& opts)
{
    std::printf("== %s ==\n", title.c_str());
    std::printf("scale=%.3g seed=%llu workloads=", opts.scale,
                static_cast<unsigned long long>(opts.seed));
    for (std::size_t i = 0; i < opts.workloads.size(); ++i)
        std::printf("%s%s", i ? "," : "", opts.workloads[i].c_str());
    std::printf("\n");
    if (opts.cells != CellMode::Combined)
        std::printf("cells=%s\n", toString(opts.cells));
    if (!opts.captureBase.empty())
        std::printf("capture=%s.<workload>.fsb\n", opts.captureBase.c_str());
    if (!opts.replayBase.empty())
        std::printf("replay=%s.<workload>.fsb\n", opts.replayBase.c_str());
    if (!opts.planBase.empty())
        std::printf("plan=%s.<workload>.plan.json\n",
                    opts.planBase.c_str());
    if (!opts.planOutBase.empty())
        std::printf("plan-out=%s.<workload>.plan.json\n",
                    opts.planOutBase.c_str());
    if (!opts.faults.empty())
        std::printf("faults=%s (seed %llu)\n", opts.faults.c_str(),
                    static_cast<unsigned long long>(opts.seed));
    if (opts.isolateCells)
        std::printf("isolate-cells=on\n");
    if (!opts.journalFile.empty())
        std::printf("journal=%s%s\n", opts.journalFile.c_str(),
                    opts.resumeFrom.empty() ? "" : " (resuming)");
    std::printf("\n");
}

} // namespace cosim
