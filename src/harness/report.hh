/**
 * @file
 * Shared command-line handling and output conventions for the bench
 * binaries.
 */

#ifndef COSIM_HARNESS_REPORT_HH
#define COSIM_HARNESS_REPORT_HH

#include <cstdint>
#include <string>
#include <vector>

namespace cosim {

/** How a sweep figure is decomposed into cells (see sweep_runner.hh). */
enum class CellMode : std::uint8_t
{
    /** One cell per workload, every configuration passively attached to
     * the one execution (the paper's rig; the default). */
    Combined,
    /** One cell per (workload, configuration), each executing the guest
     * -- the execute-every-cell baseline replay is measured against. */
    Exec,
    /** One guest execution (or recorded stream) per workload, then one
     * replay cell per configuration. */
    Replay,
    /** Like replay, but each configuration cell simulates only a
     * sampling plan's representative intervals in detail and
     * reconstructs whole-run metrics by weight extrapolation
     * (trace/phase_cluster.hh, trace/sampled_replay.hh). */
    Sampled,
};

const char* toString(CellMode mode);

/** Options every bench binary accepts. */
struct BenchOptions
{
    /** Input scale; 1.0 reproduces the paper-shaped inputs. */
    double scale = 1.0;
    std::uint64_t seed = 42;
    /** Where the seed came from: "default" or "cli" (--seed=). */
    std::string seedSource = "default";
    /** Workload subset (empty = all eight). */
    std::vector<std::string> workloads;
    /** Directory CSV outputs are written into. */
    std::string outDir = "results";
    /** Abort the bench if a workload fails self-verification. */
    bool strictVerify = true;
    /** Chrome trace-event JSON output (empty = tracing disabled). */
    std::string traceFile;
    /** Stats-registry dump path (.json/.csv/.txt; empty = no dump). */
    std::string statsFile;
    /** Per-run manifest path; defaults to "<outDir>/run.json". */
    std::string manifestFile;
    /** Host threads running sweep cells in parallel (1 = serial). */
    unsigned jobs = 1;
    /** Host threads per rig emulating Dragonheads (0 = inline/serial). */
    unsigned emuThreads = 0;
    /** Host threads sharding guest (DEX) execution per rig (0 = the
     *  classic single-thread scheduler; results identical either way). */
    unsigned dexThreads = 0;

    /** @name FSB capture / replay @{ */
    /** Sweep cell decomposition. */
    CellMode cells = CellMode::Combined;
    /** Record each workload's FSB stream to "<base>.<workload>.fsb". */
    std::string captureBase;
    /** Replay recorded streams from "<base>.<workload>.fsb" instead of
     * executing the guest. */
    std::string replayBase;
    /** Write a per-workload stream-digest manifest to this path. */
    std::string digestFile;
    /** @} */

    /** @name Sampled simulation @{ */
    /** Load sampling plans from "<base>.<workload>.plan.json" instead
     * of clustering them from the profiling pass (--cells=sampled). */
    std::string planBase;
    /** Write the per-workload sampling plans generated from this run's
     * CB sample series to "<base>.<workload>.plan.json". */
    std::string planOutBase;
    /** Warm-up windows replayed (stats discarded) before each
     * representative interval when generating plans. */
    std::uint64_t warmupWindows = 2;
    /** Functionally warm the fast-forwarded spans (deliver their data
     * to the LLC without measuring it). Off trades cold-start bias in
     * the representative windows for a lighter replay pass. */
    bool sampledWarming = true;
    /** Warming dilution: deliver every Nth fast-forwarded data
     * transaction (1 = all of them). The detailed warm-up windows
     * ahead of each representative interval repair most of the
     * replacement-order drift, so moderate strides cut the dominant
     * cost of a warmed pass at little accuracy cost. */
    unsigned warmStride = 4;
    /** Override every emulator's CB sample window, in microseconds
     * (0 = keep the preset's 500 us). --quick defaults this to 50 so
     * its ~20x-shorter runs still decompose into enough windows for
     * phase clustering to find fast-forwardable spans. */
    std::uint64_t samplePeriodUs = 0;
    /** Upper bound on phases (representative intervals) in generated
     * plans; 0 = auto, scaling as ~sqrt of the profiled series length
     * (clamped to [6, 24]) so finer sample windows get proportionally
     * more representatives and per-phase homogeneity holds. */
    unsigned maxPhases = 0;
    /** @} */

    /** @name Robustness / fault injection @{ */
    /** Finish the sweep even when cells fail (they stay in run.json
     * and the CSV with status "failed"). */
    bool keepGoing = false;
    /** Re-run a failed cell up to this many extra times. */
    unsigned retryCells = 0;
    /** Mark a cell failed when it exceeds this many wall-clock
     * seconds (0 = no watchdog). */
    double cellTimeout = 0.0;
    /** Armed fault plan spec ("site:nth=K,..."); empty = none. */
    std::string faults;
    /** Degrade dead emulation workers to serial instead of failing. */
    bool degradeSerial = false;
    /** @} */

    /** @name Live telemetry @{ */
    /** Live one-line-per-cell progress view on stderr. */
    bool progress = false;
    /** Machine-readable progress stream (JSONL; empty = off). */
    std::string progressFile;
    /** OpenMetrics dump path for the metrics registry (empty = off). */
    std::string metricsFile;
    /** @} */

    /** @name Crash-safe sweeps (harness/sweep_journal.hh) @{ */
    /** Run every sweep cell in its own forked child process. */
    bool isolateCells = false;
    /** Write-ahead journal path; --isolate-cells and --resume default
     * it to "<outDir>/sweep.journal.jsonl" / the resumed journal. */
    std::string journalFile;
    /** Resume an interrupted sweep from this journal: cells whose done
     * records' artifact digests verify are loaded, the rest re-run. */
    std::string resumeFrom;
    /** argv this process was started with, for --isolate-cells
     * self-re-execution (captured by parseBenchArgs). */
    std::vector<std::string> selfArgv;
    /** @} */

    /** @name Internal: --run-cell child re-entry (not user-facing) @{ */
    /** Run exactly this cell, write cellResultFile, and exit. */
    std::string runCell;
    /** Where the child serializes its CellOutput. */
    std::string cellResultFile;
    /** Inherited heartbeat-pipe write fd (-1 = none). */
    int heartbeatFd = -1;
    /** Injected self-destruct: "segv" or "stall:<seconds>" (the parent
     * translates cell.proc.* fault sites into this, so sweep-wide nth
     * counting stays with the parent's injector). */
    std::string selfDestruct;
    /** @} */
};

/**
 * Resolve the per-workload stream file for a --capture/--replay base
 * path: "results/fig4.fsb" + "PLSA" -> "results/fig4.PLSA.fsb" (the
 * ".fsb" suffix is appended when the base does not end in it).
 */
std::string fsbStreamPath(const std::string& base,
                          const std::string& workload);

/**
 * Parse the common flags:
 *   --scale=<f>      input scale factor
 *   --quick          shorthand for --scale=0.05
 *   --seed=<n>       data-generation seed
 *   --workloads=a,b  comma-separated subset
 *   --out=<dir>      output directory for CSVs
 *   --no-verify      keep going when self-verification fails
 *   --trace=<file>   record a Chrome trace-event JSON of the run
 *   --stats=<file>   dump the stats registry (.json/.csv/.txt)
 *   --manifest=<f>   run manifest path (default <out>/run.json)
 *   --jobs=<n>       run up to n sweep cells on parallel host threads
 *   --emu-threads=<n> emulate Dragonheads on n worker threads per rig
 *   --dex-threads=<n> shard guest (DEX) execution across n host threads
 *                    per rig (0 = classic scheduler; bit-identical)
 *   --plan=<base>    load sampling plans from <base>.<workload>.plan.json
 *                    (requires --cells=sampled)
 *   --plan-out=<base> write generated sampling plans to
 *                    <base>.<workload>.plan.json
 *   --warmup-windows=<n> warm-up windows per representative interval
 *                    in generated plans (default 2)
 *   --no-warming     drop fast-forwarded spans' data instead of
 *                    functionally warming the LLC with it
 *   --warm-stride=<n> deliver every nth fast-forwarded data
 *                    transaction when warming (default 4; 1 = all)
 *   --sample-period-us=<n> CB sample window in microseconds (default:
 *                    the preset's 500, or 50 under --quick)
 *   --max-phases=<n> cap phases in generated sampling plans (default
 *                    0 = auto-scale with the series length)
 *   --faults=<spec>  arm a fault plan (site:nth=K / site:p=X, comma-
 *                    separated; see base/fault.hh)
 *   --keep-going     finish the sweep despite failed cells
 *   --retry-cells=<n> retry a failed cell up to n times
 *   --cell-timeout=<s> mark cells failed after s wall-clock seconds
 *   --degrade-serial adopt dead emulation workers onto the workload
 *                    thread instead of failing the run
 *   --progress       live per-cell progress view on stderr
 *   --progress-file=<f> machine-readable progress stream (JSONL)
 *   --metrics=<f>    dump telemetry histograms/counters (OpenMetrics)
 *   --isolate-cells  run each sweep cell in its own forked process
 *   --journal[=<f>]  write-ahead journal of cell state transitions
 *   --resume=<f>     resume an interrupted sweep from its journal
 *   --help           print usage (and exit 0)
 * Unknown flags are fatal. A --faults plan is parsed, seeded with the
 * run seed, and armed in the global FaultInjector before returning.
 * Any of the telemetry flags enables the (otherwise zero-cost) metrics
 * registry for the whole run.
 */
BenchOptions parseBenchArgs(int argc, char** argv,
                            const std::string& bench_description);

/** Create @p dir if needed; fatal() if that fails. */
void ensureOutputDir(const std::string& dir);

/** Print the standard bench banner. */
void printBanner(const std::string& title, const BenchOptions& opts);

} // namespace cosim

#endif // COSIM_HARNESS_REPORT_HH
