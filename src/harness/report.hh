/**
 * @file
 * Shared command-line handling and output conventions for the bench
 * binaries.
 */

#ifndef COSIM_HARNESS_REPORT_HH
#define COSIM_HARNESS_REPORT_HH

#include <cstdint>
#include <string>
#include <vector>

namespace cosim {

/** Options every bench binary accepts. */
struct BenchOptions
{
    /** Input scale; 1.0 reproduces the paper-shaped inputs. */
    double scale = 1.0;
    std::uint64_t seed = 42;
    /** Workload subset (empty = all eight). */
    std::vector<std::string> workloads;
    /** Directory CSV outputs are written into. */
    std::string outDir = "results";
    /** Abort the bench if a workload fails self-verification. */
    bool strictVerify = true;
    /** Chrome trace-event JSON output (empty = tracing disabled). */
    std::string traceFile;
    /** Stats-registry dump path (.json/.csv/.txt; empty = no dump). */
    std::string statsFile;
    /** Per-run manifest path; defaults to "<outDir>/run.json". */
    std::string manifestFile;
    /** Host threads running sweep cells in parallel (1 = serial). */
    unsigned jobs = 1;
    /** Host threads per rig emulating Dragonheads (0 = inline/serial). */
    unsigned emuThreads = 0;
};

/**
 * Parse the common flags:
 *   --scale=<f>      input scale factor
 *   --quick          shorthand for --scale=0.05
 *   --seed=<n>       data-generation seed
 *   --workloads=a,b  comma-separated subset
 *   --out=<dir>      output directory for CSVs
 *   --no-verify      keep going when self-verification fails
 *   --trace=<file>   record a Chrome trace-event JSON of the run
 *   --stats=<file>   dump the stats registry (.json/.csv/.txt)
 *   --manifest=<f>   run manifest path (default <out>/run.json)
 *   --jobs=<n>       run up to n sweep cells on parallel host threads
 *   --emu-threads=<n> emulate Dragonheads on n worker threads per rig
 *   --help           print usage (and exit 0)
 * Unknown flags are fatal.
 */
BenchOptions parseBenchArgs(int argc, char** argv,
                            const std::string& bench_description);

/** Create @p dir if needed; fatal() if that fails. */
void ensureOutputDir(const std::string& dir);

/** Print the standard bench banner. */
void printBanner(const std::string& title, const BenchOptions& opts);

} // namespace cosim

#endif // COSIM_HARNESS_REPORT_HH
