/**
 * @file
 * Runs the paper's sweep experiments: one workload execution per
 * (workload, CMP scale), with every cache configuration of the sweep
 * emulated simultaneously by passive Dragonhead instances.
 */

#ifndef COSIM_HARNESS_SWEEP_RUNNER_HH
#define COSIM_HARNESS_SWEEP_RUNNER_HH

#include <string>
#include <vector>

#include "core/experiment.hh"
#include "core/results.hh"
#include "harness/report.hh"

namespace cosim {

/** See file comment. */
class SweepRunner
{
  public:
    explicit SweepRunner(const BenchOptions& opts) : opts_(opts) {}

    /**
     * Figures 4-6: LLC misses per kilo-instruction vs cache size
     * (4-256 MB, 64 B lines) on the given platform.
     */
    FigureData runCacheSizeFigure(const std::string& figure_id,
                                  const PlatformParams& platform);

    /**
     * Figure 7: LLC misses per kilo-instruction vs line size
     * (64 B-4 KB) with a 32 MB LLC on the given platform.
     */
    FigureData runLineSizeFigure(const std::string& figure_id,
                                 const PlatformParams& platform);

  private:
    FigureData runFigure(const std::string& figure_id,
                         const PlatformParams& platform,
                         const std::vector<DragonheadParams>& emulators,
                         const std::vector<std::string>& ticks);

    BenchOptions opts_;
};

} // namespace cosim

#endif // COSIM_HARNESS_SWEEP_RUNNER_HH
