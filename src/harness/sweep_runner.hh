/**
 * @file
 * Runs the paper's sweep experiments. Three cell decompositions
 * (BenchOptions::cells):
 *
 *  - *combined* (default): one workload execution per (workload, CMP
 *    scale), every cache configuration of the sweep emulated
 *    simultaneously by passive Dragonhead instances -- the paper's rig.
 *  - *exec*: one guest execution per (workload, configuration) cell.
 *    This is the execute-every-cell baseline that capture/replay is
 *    measured against; it exists because it parallelizes trivially
 *    under --jobs but pays the guest W x C times.
 *  - *replay*: the guest executes once per workload (captured to an
 *    in-memory FSB stream, or not at all with --replay=<base>), and
 *    every configuration cell replays the recorded stream -- same
 *    results as exec, guest cost paid once.
 *
 * Orthogonally, --capture records each workload's bus stream to disk,
 * --replay feeds recorded streams back instead of executing the guest,
 * and --digest writes the per-workload stream fingerprints that CI
 * gates against tests/golden/.
 *
 * Every cell also snapshots its rig's statistics into the global
 * registry under "cell/<workload>/[<config>/]", so parallel cells'
 * stats coexist instead of only the final rig's surviving.
 */

#ifndef COSIM_HARNESS_SWEEP_RUNNER_HH
#define COSIM_HARNESS_SWEEP_RUNNER_HH

#include <string>
#include <vector>

#include "core/experiment.hh"
#include "core/results.hh"
#include "harness/report.hh"

namespace cosim {

/** See file comment. */
class SweepRunner
{
  public:
    explicit SweepRunner(const BenchOptions& opts) : opts_(opts) {}

    /**
     * Figures 4-6: LLC misses per kilo-instruction vs cache size
     * (4-256 MB, 64 B lines) on the given platform.
     */
    FigureData runCacheSizeFigure(const std::string& figure_id,
                                  const PlatformParams& platform);

    /**
     * Figure 7: LLC misses per kilo-instruction vs line size
     * (64 B-4 KB) with a 32 MB LLC on the given platform.
     */
    FigureData runLineSizeFigure(const std::string& figure_id,
                                 const PlatformParams& platform);

  private:
    FigureData runFigure(const std::string& figure_id,
                         const PlatformParams& platform,
                         const std::vector<DragonheadParams>& emulators,
                         const std::vector<std::string>& ticks);

    BenchOptions opts_;
};

} // namespace cosim

#endif // COSIM_HARNESS_SWEEP_RUNNER_HH
