#include "harness/sweep_runner.hh"

#include <cstdio>

#include "base/logging.hh"
#include "base/units.hh"
#include "obs/host_profiler.hh"
#include "obs/run_manifest.hh"
#include "obs/stats_registry.hh"
#include "obs/trace_session.hh"
#include "workloads/workload_factory.hh"

namespace cosim {

FigureData
SweepRunner::runFigure(const std::string& figure_id,
                       const PlatformParams& platform,
                       const std::vector<DragonheadParams>& emulators,
                       const std::vector<std::string>& ticks)
{
    FigureData figure(figure_id, "cache configuration", ticks);

    obs::TraceSession& trace = obs::TraceSession::global();
    bool own_trace = !opts_.traceFile.empty() && !trace.active();
    if (own_trace)
        trace.start();

    CoSimParams params;
    params.platform = platform;
    params.emulators = emulators;
    CoSimulation cosim(params);

    obs::RunManifest manifest;
    manifest.figureId = figure_id;
    manifest.platform = platform.name;
    manifest.nCores = platform.nCores;
    manifest.scale = opts_.scale;
    manifest.seed = opts_.seed;
    manifest.configTicks = ticks;

    std::size_t done = 0;
    for (const std::string& name : opts_.workloads) {
        TRACE_SPAN("sweep", "workload");
        TRACE_INSTANT("sweep", "workload.start");
        debug("sweep %s: starting %s (%zu/%zu)", figure_id.c_str(),
              name.c_str(), done + 1, opts_.workloads.size());

        auto workload = createWorkload(name, opts_.scale);

        WorkloadConfig cfg;
        cfg.nThreads = platform.nCores;
        cfg.scale = opts_.scale;
        cfg.seed = opts_.seed;

        RunResult result = cosim.run(*workload, cfg);
        if (!result.verified) {
            if (opts_.strictVerify) {
                fatal("%s failed self-verification on %s", name.c_str(),
                      platform.name.c_str());
            }
            warn("%s failed self-verification on %s", name.c_str(),
                 platform.name.c_str());
        }

        obs::ManifestWorkload mw;
        mw.name = workload->name();
        mw.totalInsts = result.totalInsts;
        mw.hostSeconds = result.hostSeconds;
        mw.simMips = result.simMips();
        mw.verified = result.verified;

        std::vector<double> series;
        std::vector<SweepPoint> points;
        for (unsigned e = 0; e < cosim.nEmulators(); ++e) {
            const Dragonhead& dh = cosim.emulator(e);
            LlcResults llc = dh.results();

            SweepPoint point;
            point.workload = workload->name();
            point.nCores = platform.nCores;
            point.llcSize = dh.params().llc.size;
            point.lineSize = dh.params().llc.lineSize;
            point.llcAccesses = llc.accesses;
            point.llcMisses = llc.misses;
            point.insts = llc.insts;
            series.push_back(point.mpki());
            points.push_back(point);
            mw.mpkiPerConfig.push_back(point.mpki());
        }
        // The CB 500 us series that used to be dropped: keep the first
        // emulated configuration's full-run MPKI samples.
        if (cosim.nEmulators() > 0) {
            for (const Sample& s : cosim.emulator(0).samples()) {
                mw.seriesTimeUs.push_back(s.timeUs);
                mw.seriesMpki.push_back(s.mpki());
            }
        }
        manifest.workloads.push_back(std::move(mw));
        figure.addSeries(workload->name(), series, std::move(points));

        ++done;
        std::printf("  %-9s %8.1fM inst  %6.2fs host  %5.1f MIPS  "
                    "verified=%s  [%zu/%zu]\n",
                    workload->name().c_str(),
                    static_cast<double>(result.totalInsts) / 1e6,
                    result.hostSeconds, result.simMips(),
                    result.verified ? "yes" : "NO", done,
                    opts_.workloads.size());
    }

    // Publish the rig's component stats and the host profile through the
    // uniform registry dumpers.
    obs::StatsRegistry& registry = obs::StatsRegistry::global();
    cosim.registerStats(registry);
    registry.add(obs::HostProfiler::global().statsGroup());
    if (!opts_.statsFile.empty()) {
        registry.writeFile(opts_.statsFile);
        inform("stats: %s", opts_.statsFile.c_str());
    }

    const obs::HostProfiler& prof = obs::HostProfiler::global();
    for (const auto& p : prof.phases())
        manifest.hostPhases.push_back({p.name, p.seconds, p.calls});
    manifest.hostSimMips = prof.simulatedMips();
    if (!opts_.manifestFile.empty()) {
        manifest.writeJson(opts_.manifestFile);
        inform("manifest: %s", opts_.manifestFile.c_str());
    }

    if (own_trace) {
        trace.stop();
        trace.writeJson(opts_.traceFile);
        inform("trace: %s (%zu events)", opts_.traceFile.c_str(),
               trace.eventCount());
    }
    return figure;
}

FigureData
SweepRunner::runCacheSizeFigure(const std::string& figure_id,
                                const PlatformParams& platform)
{
    std::vector<std::string> ticks;
    for (std::uint64_t size : presets::llcSizeSweep())
        ticks.push_back(formatSize(size));
    return runFigure(figure_id, platform,
                     presets::llcSizeSweepEmulators(), ticks);
}

FigureData
SweepRunner::runLineSizeFigure(const std::string& figure_id,
                               const PlatformParams& platform)
{
    std::vector<std::string> ticks;
    for (std::uint32_t line : presets::lineSizeSweep())
        ticks.push_back(formatSize(line));
    return runFigure(figure_id, platform,
                     presets::lineSizeSweepEmulators(), ticks);
}

} // namespace cosim
