#include "harness/sweep_runner.hh"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <future>
#include <memory>

#include "base/logging.hh"
#include "base/thread_pool.hh"
#include "base/units.hh"
#include "obs/host_profiler.hh"
#include "obs/run_manifest.hh"
#include "obs/stats_registry.hh"
#include "obs/trace_session.hh"
#include "workloads/workload_factory.hh"

namespace cosim {

namespace {

/** Everything one (workload) sweep cell produces. */
struct CellOutput
{
    obs::ManifestWorkload mw;
    std::vector<double> series;
    std::vector<SweepPoint> points;
    RunResult result;
};

/** Execute one workload on @p cosim and collect every emulator's data. */
CellOutput
runCell(CoSimulation& cosim, const std::string& name,
        const PlatformParams& platform, const BenchOptions& opts)
{
    TRACE_SPAN("sweep", "workload");
    TRACE_INSTANT("sweep", "workload.start");

    auto workload = createWorkload(name, opts.scale);

    WorkloadConfig cfg;
    cfg.nThreads = platform.nCores;
    cfg.scale = opts.scale;
    cfg.seed = opts.seed;

    CellOutput cell;
    cell.result = cosim.run(*workload, cfg);
    if (!cell.result.verified) {
        if (opts.strictVerify) {
            fatal("%s failed self-verification on %s", name.c_str(),
                  platform.name.c_str());
        }
        warn("%s failed self-verification on %s", name.c_str(),
             platform.name.c_str());
    }

    cell.mw.name = workload->name();
    cell.mw.totalInsts = cell.result.totalInsts;
    cell.mw.hostSeconds = cell.result.hostSeconds;
    cell.mw.simMips = cell.result.simMips();
    cell.mw.verified = cell.result.verified;

    for (unsigned e = 0; e < cosim.nEmulators(); ++e) {
        const Dragonhead& dh = cosim.emulator(e);
        LlcResults llc = dh.results();

        SweepPoint point;
        point.workload = workload->name();
        point.nCores = platform.nCores;
        point.llcSize = dh.params().llc.size;
        point.lineSize = dh.params().llc.lineSize;
        point.llcAccesses = llc.accesses;
        point.llcMisses = llc.misses;
        point.insts = llc.insts;
        cell.series.push_back(point.mpki());
        cell.points.push_back(point);
        cell.mw.mpkiPerConfig.push_back(point.mpki());
    }
    // The CB 500 us series that used to be dropped: keep the first
    // emulated configuration's full-run MPKI samples.
    if (cosim.nEmulators() > 0) {
        for (const Sample& s : cosim.emulator(0).samples()) {
            cell.mw.seriesTimeUs.push_back(s.timeUs);
            cell.mw.seriesMpki.push_back(s.mpki());
        }
    }
    return cell;
}

} // namespace

FigureData
SweepRunner::runFigure(const std::string& figure_id,
                       const PlatformParams& platform,
                       const std::vector<DragonheadParams>& emulators,
                       const std::vector<std::string>& ticks)
{
    FigureData figure(figure_id, "cache configuration", ticks);

    obs::TraceSession& trace = obs::TraceSession::global();
    bool own_trace = !opts_.traceFile.empty() && !trace.active();
    if (own_trace)
        trace.start();

    CoSimParams params;
    params.platform = platform;
    params.emulators = emulators;
    params.emulationThreads = opts_.emuThreads;

    const std::size_t n_cells = opts_.workloads.size();
    const unsigned jobs = static_cast<unsigned>(
        std::min<std::size_t>(opts_.jobs, std::max<std::size_t>(n_cells,
                                                                1)));

    // One rig per cell when cells run in parallel; a single reused rig
    // (the original behaviour) when serial. Workload executions never
    // share simulator state either way -- the platform resets per run --
    // so the two modes produce identical results.
    std::vector<std::unique_ptr<CoSimulation>> rigs;
    rigs.reserve(jobs > 1 ? n_cells : 1);
    if (jobs > 1) {
        for (std::size_t i = 0; i < n_cells; ++i)
            rigs.push_back(std::make_unique<CoSimulation>(params));
    } else {
        rigs.push_back(std::make_unique<CoSimulation>(params));
    }

    obs::RunManifest manifest;
    manifest.figureId = figure_id;
    manifest.platform = platform.name;
    manifest.nCores = platform.nCores;
    manifest.scale = opts_.scale;
    manifest.seed = opts_.seed;
    manifest.configTicks = ticks;
    manifest.hostJobs = jobs;
    manifest.emulationThreads = rigs.back()->emulationThreads();

    auto wall0 = std::chrono::steady_clock::now();
    std::vector<CellOutput> cells(n_cells);
    if (jobs > 1) {
        // Only the aggregation below touches shared state; each cell
        // owns its rig and its workload.
        ThreadPool pool(jobs);
        std::vector<std::future<CellOutput>> futures;
        futures.reserve(n_cells);
        for (std::size_t i = 0; i < n_cells; ++i) {
            CoSimulation* rig = rigs[i].get();
            const std::string& name = opts_.workloads[i];
            futures.push_back(pool.submit([this, rig, &name, &platform] {
                return runCell(*rig, name, platform, opts_);
            }));
        }
        for (std::size_t i = 0; i < n_cells; ++i)
            cells[i] = futures[i].get();
    } else {
        for (std::size_t i = 0; i < n_cells; ++i) {
            debug("sweep %s: starting %s (%zu/%zu)", figure_id.c_str(),
                  opts_.workloads[i].c_str(), i + 1, n_cells);
            cells[i] = runCell(*rigs[0], opts_.workloads[i], platform,
                               opts_);
        }
    }
    manifest.wallSeconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      wall0)
            .count();

    // Aggregate in workload order regardless of completion order, so the
    // figure and manifest are deterministic.
    double host_sum = 0.0;
    for (std::size_t i = 0; i < n_cells; ++i) {
        CellOutput& cell = cells[i];
        host_sum += cell.result.hostSeconds;
        manifest.workloads.push_back(cell.mw);
        figure.addSeries(cell.mw.name, cell.series,
                         std::move(cell.points));
        std::printf("  %-9s %8.1fM inst  %6.2fs host  %5.1f MIPS  "
                    "verified=%s  [%zu/%zu]\n", cell.mw.name.c_str(),
                    static_cast<double>(cell.result.totalInsts) / 1e6,
                    cell.result.hostSeconds, cell.result.simMips(),
                    cell.result.verified ? "yes" : "NO", i + 1, n_cells);
    }
    manifest.hostSpeedup = manifest.wallSeconds > 0.0
        ? host_sum / manifest.wallSeconds
        : 0.0;

    // Publish the rig's component stats and the host profile through the
    // uniform registry dumpers. With parallel cells, the last rig's
    // counters are registered -- the same "state after the final
    // workload" view the reused serial rig exposes.
    obs::StatsRegistry& registry = obs::StatsRegistry::global();
    rigs.back()->registerStats(registry);
    registry.add(obs::HostProfiler::global().statsGroup());
    if (!opts_.statsFile.empty()) {
        registry.writeFile(opts_.statsFile);
        inform("stats: %s", opts_.statsFile.c_str());
    }

    const obs::HostProfiler& prof = obs::HostProfiler::global();
    for (const auto& p : prof.phases())
        manifest.hostPhases.push_back({p.name, p.seconds, p.calls});
    manifest.hostSimMips = prof.simulatedMips();
    if (!opts_.manifestFile.empty()) {
        manifest.writeJson(opts_.manifestFile);
        inform("manifest: %s", opts_.manifestFile.c_str());
    }

    if (own_trace) {
        trace.stop();
        trace.writeJson(opts_.traceFile);
        inform("trace: %s (%zu events)", opts_.traceFile.c_str(),
               trace.eventCount());
    }
    return figure;
}

FigureData
SweepRunner::runCacheSizeFigure(const std::string& figure_id,
                                const PlatformParams& platform)
{
    std::vector<std::string> ticks;
    for (std::uint64_t size : presets::llcSizeSweep())
        ticks.push_back(formatSize(size));
    return runFigure(figure_id, platform,
                     presets::llcSizeSweepEmulators(), ticks);
}

FigureData
SweepRunner::runLineSizeFigure(const std::string& figure_id,
                               const PlatformParams& platform)
{
    std::vector<std::string> ticks;
    for (std::uint32_t line : presets::lineSizeSweep())
        ticks.push_back(formatSize(line));
    return runFigure(figure_id, platform,
                     presets::lineSizeSweepEmulators(), ticks);
}

} // namespace cosim
