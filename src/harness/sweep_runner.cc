#include "harness/sweep_runner.hh"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <functional>
#include <future>
#include <memory>
#include <stdexcept>
#include <thread>

#include "base/atomic_file.hh"
#include "base/fault.hh"
#include "base/flight_recorder.hh"
#include "base/host_clock.hh"
#include "base/logging.hh"
#include "base/str.hh"
#include "base/thread_pool.hh"
#include "base/units.hh"
#include "obs/host_profiler.hh"
#include "obs/json.hh"
#include "obs/metrics.hh"
#include "obs/postmortem.hh"
#include "obs/progress.hh"
#include "obs/run_manifest.hh"
#include "obs/stats_registry.hh"
#include "obs/trace_session.hh"
#include "trace/fsb_capture.hh"
#include "workloads/workload_factory.hh"

namespace cosim {

namespace {

/** Everything one sweep cell (or one workload's merged cells) produces. */
struct CellOutput
{
    obs::ManifestWorkload mw;
    std::vector<double> series;
    std::vector<SweepPoint> points;

    /** Cell outcome: true when every attempt failed. The manifest
     * entry (mw.status / mw.attempts / mw.error) carries the detail. */
    bool failed = false;

    /** Times the guest executed to produce this output. */
    std::uint64_t guestExecutions = 0;

    /** Stream fingerprint for the digest manifest (when observed). @{ */
    bool hasDigest = false;
    std::uint64_t streamTxns = 0;
    std::uint64_t streamDigest = 0;
    /** @} */

    /** Capture/replay bookkeeping for the run manifest. @{ */
    std::uint64_t captureTxns = 0;
    std::uint64_t captureBytes = 0;
    double captureSeconds = 0.0;
    std::uint64_t replayTxns = 0;
    std::uint64_t replayBytes = 0;
    double replaySeconds = 0.0;
    /** @} */
};

/** Stream-header provenance for a capture of @p name on @p platform. */
FsbStreamMeta
captureMeta(const std::string& name, const PlatformParams& platform,
            const BenchOptions& opts)
{
    FsbStreamMeta meta;
    meta.workload = name;
    meta.platform = platform.name;
    meta.nCores = platform.nCores;
    meta.seed = opts.seed;
    meta.scale = opts.scale;
    return meta;
}

void
checkVerified(const RunResult& result, const std::string& name,
              const PlatformParams& platform, const BenchOptions& opts)
{
    if (result.verified)
        return;
    if (opts.strictVerify) {
        fatal("%s failed self-verification on %s", name.c_str(),
              platform.name.c_str());
    }
    warn("%s failed self-verification on %s", name.c_str(),
         platform.name.c_str());
}

void
fillWorkloadResult(CellOutput& cell, const std::string& name,
                   const RunResult& result)
{
    cell.mw.name = name;
    cell.mw.totalInsts = result.totalInsts;
    cell.mw.hostSeconds = result.hostSeconds;
    cell.mw.simMips = result.simMips();
    cell.mw.verified = result.verified;
    cell.mw.replayedFrom = result.replayedFrom;
}

/** Append one emulated configuration's final counters to @p cell. */
void
collectEmulator(const Dragonhead& dh, const std::string& wname,
                unsigned n_cores, CellOutput& cell)
{
    LlcResults llc = dh.results();

    SweepPoint point;
    point.workload = wname;
    point.nCores = n_cores;
    point.llcSize = dh.params().llc.size;
    point.lineSize = dh.params().llc.lineSize;
    point.llcAccesses = llc.accesses;
    point.llcMisses = llc.misses;
    point.insts = llc.insts;
    cell.series.push_back(point.mpki());
    cell.points.push_back(point);
    cell.mw.mpkiPerConfig.push_back(point.mpki());
}

/** Keep the CB 500 us MPKI series of @p dh (the first configuration). */
void
collectSamples(const Dragonhead& dh, CellOutput& cell)
{
    for (const Sample& s : dh.samples()) {
        cell.mw.seriesTimeUs.push_back(s.timeUs);
        cell.mw.seriesMpki.push_back(s.mpki());
    }
}

/**
 * Freeze @p cosim's component stats into the global registry under
 * @p prefix, so every cell's counters survive -- not just the final
 * rig's live view.
 */
void
snapshotCellStats(const CoSimulation& cosim, const std::string& prefix)
{
    obs::StatsRegistry local;
    cosim.registerStats(local);
    obs::StatsRegistry::global().addSnapshotOf(local, prefix);
}

/** Record a sealed capture's stream/overhead numbers into @p cell. */
void
noteCapture(CellOutput& cell, FsbStreamWriter& writer,
            double encode_seconds)
{
    cell.hasDigest = true;
    cell.streamTxns = writer.txnCount();
    cell.streamDigest = writer.digest();
    cell.captureTxns = writer.txnCount();
    cell.captureBytes = writer.encodedBytes();
    cell.captureSeconds = encode_seconds;
    obs::HostProfiler::global().accumulate("capture.encode",
                                           encode_seconds);
}

/** Record a finished replay's stream numbers into @p cell. */
void
noteReplay(CellOutput& cell, const ReplayResult& details)
{
    cell.replayTxns = details.txns;
    cell.replayBytes = details.streamBytes;
    cell.replaySeconds = details.seconds;
}

void
warnStreamWorkload(const FsbStreamMeta& meta, const std::string& source,
                   const std::string& expected)
{
    if (meta.workload != expected) {
        warn("replay stream %s records workload '%s', expected '%s'",
             source.c_str(), meta.workload.c_str(), expected.c_str());
    }
}

/**
 * Run one sweep cell behind the failure-isolation boundary:
 *
 *  - retries: @p attempt runs up to opts.retryCells + 1 times; the
 *    attempt number is passed in so callers can rebuild a poisoned rig
 *  - fault points: "cell.throw" (throws FaultInjected) and "cell.hang"
 *    (naps past the watchdog) fire here, inside the guarded window
 *  - watchdog: with --cell-timeout, an attempt is marked failed when
 *    its heartbeat was *silent* longer than the budget (so a slow but
 *    beating cell is never killed while a wedged one still is); when
 *    no heartbeat exists -- telemetry off, or a path that never beats,
 *    like a serial replay -- the budget bounds total wall time as
 *    before. The check is cooperative (post-hoc), matching the repo's
 *    no-detached-threads rule: a cell stuck in a non-returning syscall
 *    still needs an external kill, but every in-simulator stall is
 *    caught on completion
 *  - telemetry: cell lifecycle events flow into @p progress (when
 *    non-null, with @p cell_idx addressing this cell's row), the
 *    flight recorder gets attempt markers, and every failed attempt
 *    drops "<outDir>/postmortem.json" naming the cell and -- via the
 *    fault injector's site report -- what was injected
 *  - stats hygiene: a failed attempt's @p stats_prefix namespace is
 *    dropped from the global registry, so run artifacts never carry a
 *    half-populated cell
 *
 * Success after a retry reports status "retried"; exhausted attempts
 * report a CellOutput with failed=true and the last error recorded.
 */
CellOutput
runGuardedCell(const std::string& label, const std::string& stats_prefix,
               const BenchOptions& opts, obs::SweepProgress* progress,
               std::size_t cell_idx,
               const std::function<CellOutput(unsigned,
                                              obs::HeartbeatSlot*)>& attempt)
{
    obs::HeartbeatSlot* slot =
        progress != nullptr ? progress->slot(cell_idx) : nullptr;
    const unsigned max_attempts = opts.retryCells + 1;
    std::string last_error;
    double last_secs = 0.0;
    for (unsigned a = 1; a <= max_attempts; ++a) {
        obs::setPostmortemContext(label, a);
        FlightRecorder::setThreadLabel("cell/" + label);
        FlightRecorder::note(FrKind::CellAttempt, "sweep.cell", a,
                             cell_idx);
        if (progress != nullptr)
            progress->cellStarted(cell_idx, a);
        const auto t0 = std::chrono::steady_clock::now();
        try {
            COSIM_FAULT_POINT("cell.throw");
            if (faultPending("cell.hang")) {
                const double nap = opts.cellTimeout > 0.0
                    ? opts.cellTimeout * 1.5
                    : 0.25;
                std::this_thread::sleep_for(
                    std::chrono::duration<double>(nap));
            }
            CellOutput cell = attempt(a, slot);
            const double secs = std::chrono::duration<double>(
                                    std::chrono::steady_clock::now() - t0)
                                    .count();
            if (opts.cellTimeout > 0.0) {
                if (slot != nullptr && slot->watch().beats() > 0) {
                    const double gap =
                        static_cast<double>(slot->watch().maxGapUs()) /
                        1e6;
                    if (gap > opts.cellTimeout) {
                        throw std::runtime_error(strFormat(
                            "cell exceeded --cell-timeout (silent for "
                            "%.2fs > %.2fs)", gap, opts.cellTimeout));
                    }
                } else if (secs > opts.cellTimeout) {
                    throw std::runtime_error(strFormat(
                        "cell exceeded --cell-timeout (%.2fs > %.2fs)",
                        secs, opts.cellTimeout));
                }
            }
            cell.mw.status = a > 1 ? "retried" : "ok";
            cell.mw.attempts = a;
            FlightRecorder::note(FrKind::CellDone, "sweep.cell", a,
                                 cell_idx);
            if (progress != nullptr)
                progress->cellFinished(cell_idx, true, secs, "");
            if (obs::metrics::enabled()) {
                static const obs::metrics::Histogram wall_ms =
                    obs::metrics::histogram(
                        "sweep.cell_wall_ms",
                        "wall-clock of successful cell attempts (ms)");
                static const obs::metrics::Counter cells_ok =
                    obs::metrics::counter("sweep.cells_ok",
                                          "cells that finished ok");
                static const obs::metrics::Counter cells_retried =
                    obs::metrics::counter(
                        "sweep.cells_retried",
                        "cells that finished after a retry");
                wall_ms.record(static_cast<std::uint64_t>(secs * 1e3));
                cells_ok.inc();
                if (a > 1)
                    cells_retried.inc();
            }
            return cell;
        } catch (const std::exception& e) {
            last_secs = std::chrono::duration<double>(
                            std::chrono::steady_clock::now() - t0)
                            .count();
            obs::StatsRegistry::global().removePrefix(stats_prefix);
            last_error = e.what();
            warn("sweep cell %s failed (attempt %u/%u): %s",
                 label.c_str(), a, max_attempts, e.what());
            if (progress != nullptr) {
                const auto* injected =
                    dynamic_cast<const FaultInjected*>(&e);
                if (injected != nullptr) {
                    progress->cellFault(cell_idx, injected->site(),
                                        injected->hit());
                }
                if (a < max_attempts)
                    progress->cellRetried(cell_idx, a + 1, last_error);
            }
            obs::PostmortemInfo pm;
            pm.reason = "cell_failed";
            pm.cell = label;
            pm.attempt = a;
            pm.error = last_error;
            obs::writePostmortem(opts.outDir + "/postmortem.json", pm);
        }
    }
    if (progress != nullptr)
        progress->cellFinished(cell_idx, false, last_secs, last_error);
    if (obs::metrics::enabled()) {
        static const obs::metrics::Counter cells_failed =
            obs::metrics::counter("sweep.cells_failed",
                                  "cells whose every attempt failed");
        cells_failed.inc();
    }
    CellOutput cell;
    cell.failed = true;
    cell.mw.name = label;
    cell.mw.status = "failed";
    cell.mw.attempts = max_attempts;
    cell.mw.error = last_error;
    return cell;
}

/**
 * The paper's combined cell: execute @p name once on @p cosim with every
 * configuration of the sweep passively attached, optionally recording or
 * fingerprinting the bus stream on the side.
 */
CellOutput
runCombinedCell(CoSimulation& cosim, const std::string& name,
                const PlatformParams& platform, const BenchOptions& opts)
{
    TRACE_SPAN("sweep", "workload");
    TRACE_INSTANT("sweep", "workload.start");

    auto workload = createWorkload(name, opts.scale);

    WorkloadConfig cfg;
    cfg.nThreads = platform.nCores;
    cfg.scale = opts.scale;
    cfg.seed = opts.seed;

    // Stream observers ride the bus alongside the emulators; capture
    // subsumes the digest (the writer fingerprints what it encodes).
    FrontSideBus& fsb = cosim.platform().fsb();
    std::unique_ptr<FsbCaptureSnooper> capture;
    std::unique_ptr<FsbDigestSnooper> digest;
    if (!opts.captureBase.empty()) {
        capture = std::make_unique<FsbCaptureSnooper>(
            captureMeta(name, platform, opts));
        fsb.attach(capture.get());
    } else if (!opts.digestFile.empty()) {
        digest = std::make_unique<FsbDigestSnooper>();
        fsb.attach(digest.get());
    }

    RunResult result = cosim.run(*workload, cfg);
    if (capture)
        fsb.detach(capture.get());
    if (digest)
        fsb.detach(digest.get());
    checkVerified(result, name, platform, opts);

    CellOutput cell;
    cell.guestExecutions = 1;
    fillWorkloadResult(cell, workload->name(), result);

    for (unsigned e = 0; e < cosim.nEmulators(); ++e)
        collectEmulator(cosim.emulator(e), cell.mw.name, platform.nCores,
                        cell);
    if (cosim.nEmulators() > 0)
        collectSamples(cosim.emulator(0), cell);

    if (capture) {
        FsbStreamWriter& writer = capture->writer();
        writer.setResult(result.totalInsts, result.verified);
        writer.writeFile(fsbStreamPath(opts.captureBase, name));
        noteCapture(cell, writer, capture->encodeSeconds());
    } else if (digest) {
        cell.hasDigest = true;
        cell.streamTxns = digest->txnCount();
        cell.streamDigest = digest->digest();
    }

    snapshotCellStats(cosim, "cell/" + cell.mw.name + "/");
    return cell;
}

/**
 * Combined replay cell: feed "<replayBase>.<name>.fsb" through every
 * attached configuration instead of executing the guest.
 */
CellOutput
replayCombinedCell(CoSimulation& cosim, const std::string& name,
                   const PlatformParams& platform, const BenchOptions& opts)
{
    TRACE_SPAN("sweep", "workload.replay");

    const std::string path = fsbStreamPath(opts.replayBase, name);
    ReplayResult details;
    RunResult result = cosim.replayFile(path, &details);
    warnStreamWorkload(details.meta, path, name);
    checkVerified(result, name, platform, opts);

    CellOutput cell;
    fillWorkloadResult(cell, name, result);

    for (unsigned e = 0; e < cosim.nEmulators(); ++e)
        collectEmulator(cosim.emulator(e), name, platform.nCores, cell);
    if (cosim.nEmulators() > 0)
        collectSamples(cosim.emulator(0), cell);

    noteReplay(cell, details);
    cell.hasDigest = true;
    cell.streamTxns = details.txns;
    cell.streamDigest = details.digest;

    snapshotCellStats(cosim, "cell/" + name + "/");
    return cell;
}

/**
 * Exec-mode cell: execute the guest with a *single* emulated
 * configuration attached -- one cell per (workload, configuration).
 * Only the first configuration's cell observes the stream (every cell
 * of a workload broadcasts identical traffic).
 */
CellOutput
runExecCell(const std::string& name, std::size_t config_index,
            const DragonheadParams& emu, const std::string& tick,
            const PlatformParams& platform, const BenchOptions& opts,
            obs::HeartbeatSlot* beat)
{
    TRACE_SPAN("sweep", "cell.exec");

    CoSimParams params;
    params.platform = platform;
    params.platform.dex.hostThreads = opts.dexThreads;
    params.platform.dex.degradeSerial = opts.degradeSerial;
    params.emulators = {emu};
    params.emulationThreads = opts.emuThreads;
    params.degradeToSerial = opts.degradeSerial;
    CoSimulation rig(params);
    rig.setHeartbeat(beat);

    auto workload = createWorkload(name, opts.scale);
    WorkloadConfig cfg;
    cfg.nThreads = platform.nCores;
    cfg.scale = opts.scale;
    cfg.seed = opts.seed;

    FrontSideBus& fsb = rig.platform().fsb();
    std::unique_ptr<FsbCaptureSnooper> capture;
    std::unique_ptr<FsbDigestSnooper> digest;
    if (config_index == 0 && !opts.captureBase.empty()) {
        capture = std::make_unique<FsbCaptureSnooper>(
            captureMeta(name, platform, opts));
        fsb.attach(capture.get());
    } else if (config_index == 0 && !opts.digestFile.empty()) {
        digest = std::make_unique<FsbDigestSnooper>();
        fsb.attach(digest.get());
    }

    RunResult result = rig.run(*workload, cfg);
    if (capture)
        fsb.detach(capture.get());
    if (digest)
        fsb.detach(digest.get());
    checkVerified(result, name, platform, opts);

    CellOutput cell;
    cell.guestExecutions = 1;
    fillWorkloadResult(cell, name, result);
    collectEmulator(rig.emulator(0), name, platform.nCores, cell);
    if (config_index == 0)
        collectSamples(rig.emulator(0), cell);

    if (capture) {
        FsbStreamWriter& writer = capture->writer();
        writer.setResult(result.totalInsts, result.verified);
        writer.writeFile(fsbStreamPath(opts.captureBase, name));
        noteCapture(cell, writer, capture->encodeSeconds());
    } else if (digest) {
        cell.hasDigest = true;
        cell.streamTxns = digest->txnCount();
        cell.streamDigest = digest->digest();
    }

    snapshotCellStats(rig, "cell/" + name + "/" + tick + "/");
    return cell;
}

/** Where a replay-mode workload's stream comes from. */
struct WorkloadStream
{
    /** In-memory capture (null = file-backed via @ref path). */
    std::shared_ptr<const std::vector<std::uint8_t>> buffer;
    std::string path;
    /** Provenance label for in-memory replays. */
    std::string source;
    /** Bookkeeping of the capture execution (guest cost, digest). */
    CellOutput base;
};

/**
 * Replay-mode phase 1: execute @p name once with *no* emulators attached
 * and record its bus stream in memory (and to --capture files when
 * requested). With --replay the stream is already on disk and the guest
 * never runs.
 */
WorkloadStream
captureWorkloadStream(const std::string& name,
                      const PlatformParams& platform,
                      const BenchOptions& opts, obs::HeartbeatSlot* beat)
{
    WorkloadStream ws;
    if (!opts.replayBase.empty()) {
        ws.path = fsbStreamPath(opts.replayBase, name);
        return ws;
    }

    TRACE_SPAN("sweep", "cell.capture");

    CoSimParams params;
    params.platform = platform;
    params.platform.dex.hostThreads = opts.dexThreads;
    params.platform.dex.degradeSerial = opts.degradeSerial;
    CoSimulation rig(params);
    rig.setHeartbeat(beat);

    auto workload = createWorkload(name, opts.scale);
    WorkloadConfig cfg;
    cfg.nThreads = platform.nCores;
    cfg.scale = opts.scale;
    cfg.seed = opts.seed;

    FsbCaptureSnooper capture(captureMeta(name, platform, opts));
    rig.platform().fsb().attach(&capture);
    RunResult result = rig.run(*workload, cfg);
    rig.platform().fsb().detach(&capture);
    checkVerified(result, name, platform, opts);

    FsbStreamWriter& writer = capture.writer();
    writer.setResult(result.totalInsts, result.verified);
    writer.finish();
    if (!opts.captureBase.empty())
        writer.writeFile(fsbStreamPath(opts.captureBase, name));
    noteCapture(ws.base, writer, capture.encodeSeconds());
    ws.buffer = writer.share();
    ws.source = "memory:" + name;

    ws.base.guestExecutions = 1;
    fillWorkloadResult(ws.base, name, result);

    snapshotCellStats(rig, "cell/" + name + "/capture/");
    return ws;
}

/**
 * Replay-mode phase 2: feed @p ws through a single-configuration rig --
 * one replay cell per (workload, configuration), freely parallel.
 */
CellOutput
replayConfigCell(const WorkloadStream& ws, const std::string& name,
                 std::size_t config_index, const DragonheadParams& emu,
                 const std::string& tick, const PlatformParams& platform,
                 const BenchOptions& opts, obs::HeartbeatSlot* beat)
{
    TRACE_SPAN("sweep", "cell.replay");

    CoSimParams params;
    params.platform = platform;
    params.emulators = {emu};
    params.emulationThreads = opts.emuThreads;
    params.degradeToSerial = opts.degradeSerial;
    CoSimulation rig(params);
    rig.setHeartbeat(beat);

    ReplayResult details;
    RunResult result = ws.buffer
        ? rig.replayBuffer(ws.buffer, ws.source, &details)
        : rig.replayFile(ws.path, &details);
    warnStreamWorkload(details.meta, ws.buffer ? ws.source : ws.path,
                       name);
    checkVerified(result, name, platform, opts);

    CellOutput cell;
    fillWorkloadResult(cell, name, result);
    collectEmulator(rig.emulator(0), name, platform.nCores, cell);
    if (config_index == 0)
        collectSamples(rig.emulator(0), cell);

    noteReplay(cell, details);
    if (config_index == 0 && !ws.base.hasDigest) {
        // File-backed replay: the reader's digest is the only
        // fingerprint this run computes.
        cell.hasDigest = true;
        cell.streamTxns = details.txns;
        cell.streamDigest = details.digest;
    }

    snapshotCellStats(rig, "cell/" + name + "/" + tick + "/");
    return cell;
}

/** Fold one workload's per-configuration cells into a figure row. */
CellOutput
mergeWorkloadCells(const std::string& name, const CellOutput* base,
                   std::vector<CellOutput>& configs)
{
    // Outcome first: any failed constituent fails the whole workload
    // row (a partial series would silently shift the figure's x axis).
    bool any_failed = base != nullptr && base->failed;
    bool any_retried = base != nullptr && base->mw.status == "retried";
    std::uint64_t attempts = base ? base->mw.attempts : 1;
    std::string error = base ? base->mw.error : "";
    for (const CellOutput& c : configs) {
        any_failed = any_failed || c.failed;
        any_retried = any_retried || c.mw.status == "retried";
        attempts = std::max(attempts, c.mw.attempts);
        if (error.empty())
            error = c.mw.error;
    }
    if (any_failed) {
        CellOutput merged;
        merged.failed = true;
        merged.mw.name = name;
        merged.mw.status = "failed";
        merged.mw.attempts = attempts;
        merged.mw.error = error;
        return merged;
    }

    CellOutput merged;
    merged.mw.name = name;
    merged.mw.status = any_retried ? "retried" : "ok";
    merged.mw.attempts = attempts;

    const CellOutput& first = base ? *base : configs.front();
    merged.mw.totalInsts = first.mw.totalInsts;
    merged.mw.verified = first.mw.verified;
    merged.mw.replayedFrom = configs.front().mw.replayedFrom;
    merged.mw.seriesTimeUs = configs.front().mw.seriesTimeUs;
    merged.mw.seriesMpki = configs.front().mw.seriesMpki;

    double host = 0.0;
    if (base) {
        host += base->mw.hostSeconds;
        merged.guestExecutions += base->guestExecutions;
        merged.captureTxns += base->captureTxns;
        merged.captureBytes += base->captureBytes;
        merged.captureSeconds += base->captureSeconds;
        if (base->hasDigest) {
            merged.hasDigest = true;
            merged.streamTxns = base->streamTxns;
            merged.streamDigest = base->streamDigest;
        }
    }
    for (CellOutput& c : configs) {
        host += c.mw.hostSeconds;
        merged.guestExecutions += c.guestExecutions;
        merged.captureTxns += c.captureTxns;
        merged.captureBytes += c.captureBytes;
        merged.captureSeconds += c.captureSeconds;
        merged.replayTxns += c.replayTxns;
        merged.replayBytes += c.replayBytes;
        merged.replaySeconds += c.replaySeconds;
        merged.series.insert(merged.series.end(), c.series.begin(),
                             c.series.end());
        merged.points.insert(merged.points.end(),
                             std::make_move_iterator(c.points.begin()),
                             std::make_move_iterator(c.points.end()));
        merged.mw.mpkiPerConfig.insert(merged.mw.mpkiPerConfig.end(),
                                       c.mw.mpkiPerConfig.begin(),
                                       c.mw.mpkiPerConfig.end());
        if (!merged.hasDigest && c.hasDigest) {
            merged.hasDigest = true;
            merged.streamTxns = c.streamTxns;
            merged.streamDigest = c.streamDigest;
        }
    }
    merged.mw.hostSeconds = host;
    merged.mw.simMips = host > 0.0
        ? static_cast<double>(merged.mw.totalInsts) / 1e6 / host
        : 0.0;
    return merged;
}

/**
 * Exec and replay decompositions: one cell per (workload,
 * configuration), scheduled across --jobs host threads. Replay mode
 * first obtains a stream per workload (phase 1), then replays it
 * through every configuration (phase 2).
 */
std::vector<CellOutput>
runPerConfigCells(const BenchOptions& opts, const PlatformParams& platform,
                  const std::vector<DragonheadParams>& emulators,
                  const std::vector<std::string>& ticks,
                  obs::SweepProgress* progress)
{
    const std::size_t n_w = opts.workloads.size();
    const std::size_t n_c = emulators.size();
    const bool replay = opts.cells == CellMode::Replay;

    // Register every row up front so the live view shows the whole
    // sweep (pending cells included) from the first tick.
    std::vector<std::size_t> cap_rows(n_w, 0);
    std::vector<std::size_t> cfg_rows(n_w * n_c, 0);
    if (progress != nullptr) {
        if (replay && opts.replayBase.empty()) {
            for (std::size_t w = 0; w < n_w; ++w) {
                cap_rows[w] =
                    progress->addCell(opts.workloads[w] + "/capture");
            }
        }
        for (std::size_t w = 0; w < n_w; ++w) {
            for (std::size_t c = 0; c < n_c; ++c) {
                cfg_rows[w * n_c + c] =
                    progress->addCell(opts.workloads[w] + "/" + ticks[c]);
            }
        }
    }

    std::vector<WorkloadStream> streams(replay ? n_w : 0);
    if (replay && !opts.replayBase.empty()) {
        // File-backed replay: no guest execution, just resolve paths.
        // Unreadable or corrupt streams surface per config cell below.
        for (std::size_t w = 0; w < n_w; ++w)
            streams[w].path = fsbStreamPath(opts.replayBase,
                                            opts.workloads[w]);
    } else if (replay) {
        // The capture execution is a cell of its own: if it fails, the
        // workload's config cells are skipped (they would replay a
        // stream that does not exist), not crashed into.
        auto capture_task = [&](std::size_t w) {
            const std::string& name = opts.workloads[w];
            WorkloadStream ws;
            ws.base = runGuardedCell(
                name + "/capture", "cell/" + name + "/capture/", opts,
                progress, cap_rows[w],
                [&](unsigned, obs::HeartbeatSlot* beat) {
                    ws = captureWorkloadStream(name, platform, opts,
                                               beat);
                    return ws.base;
                });
            return ws;
        };
        const unsigned jobs = static_cast<unsigned>(
            std::min<std::size_t>(opts.jobs, std::max<std::size_t>(n_w,
                                                                   1)));
        if (jobs > 1) {
            ThreadPool pool(jobs);
            std::vector<std::future<WorkloadStream>> futures;
            futures.reserve(n_w);
            for (std::size_t w = 0; w < n_w; ++w) {
                futures.push_back(pool.submit([&capture_task, w] {
                    return capture_task(w);
                }));
            }
            for (std::size_t w = 0; w < n_w; ++w)
                streams[w] = futures[w].get();
        } else {
            for (std::size_t w = 0; w < n_w; ++w)
                streams[w] = capture_task(w);
        }
    }

    const std::size_t n_flat = n_w * n_c;
    const unsigned jobs = static_cast<unsigned>(
        std::min<std::size_t>(opts.jobs, std::max<std::size_t>(n_flat,
                                                               1)));
    auto run_one = [&](std::size_t w, std::size_t c) {
        const std::string& name = opts.workloads[w];
        const std::string label = name + "/" + ticks[c];
        if (replay && streams[w].base.failed) {
            CellOutput cell;
            cell.failed = true;
            cell.mw.name = label;
            cell.mw.status = "failed";
            cell.mw.attempts = streams[w].base.mw.attempts;
            cell.mw.error = "capture failed: " + streams[w].base.mw.error;
            if (progress != nullptr) {
                progress->cellFinished(cfg_rows[w * n_c + c], false, 0.0,
                                       cell.mw.error);
            }
            return cell;
        }
        return runGuardedCell(
            label, "cell/" + name + "/" + ticks[c] + "/", opts, progress,
            cfg_rows[w * n_c + c],
            [&, w, c](unsigned, obs::HeartbeatSlot* beat) {
                return replay
                    ? replayConfigCell(streams[w], name, c, emulators[c],
                                       ticks[c], platform, opts, beat)
                    : runExecCell(name, c, emulators[c], ticks[c],
                                  platform, opts, beat);
            });
    };

    std::vector<CellOutput> flat(n_flat);
    if (jobs > 1) {
        ThreadPool pool(jobs);
        std::vector<std::future<CellOutput>> futures;
        futures.reserve(n_flat);
        for (std::size_t w = 0; w < n_w; ++w) {
            for (std::size_t c = 0; c < n_c; ++c) {
                futures.push_back(
                    pool.submit([&run_one, w, c] { return run_one(w, c); }));
            }
        }
        for (std::size_t i = 0; i < n_flat; ++i)
            flat[i] = futures[i].get();
    } else {
        for (std::size_t w = 0; w < n_w; ++w) {
            for (std::size_t c = 0; c < n_c; ++c) {
                debug("sweep cell %s/%s (%zu/%zu)",
                      opts.workloads[w].c_str(), ticks[c].c_str(),
                      w * n_c + c + 1, n_flat);
                flat[w * n_c + c] = run_one(w, c);
            }
        }
    }

    std::vector<CellOutput> cells;
    cells.reserve(n_w);
    for (std::size_t w = 0; w < n_w; ++w) {
        std::vector<CellOutput> configs(
            std::make_move_iterator(flat.begin() + w * n_c),
            std::make_move_iterator(flat.begin() + (w + 1) * n_c));
        const CellOutput* base =
            replay && opts.replayBase.empty() ? &streams[w].base : nullptr;
        cells.push_back(mergeWorkloadCells(opts.workloads[w], base,
                                           configs));
    }
    return cells;
}

} // namespace

FigureData
SweepRunner::runFigure(const std::string& figure_id,
                       const PlatformParams& platform,
                       const std::vector<DragonheadParams>& emulators,
                       const std::vector<std::string>& ticks)
{
    FigureData figure(figure_id, "cache configuration", ticks);

    obs::TraceSession& trace = obs::TraceSession::global();
    bool own_trace = !opts_.traceFile.empty() && !trace.active();
    if (own_trace)
        trace.start();

    const std::size_t n_cells = opts_.workloads.size();

    // Whatever kills this run -- a failed cell, a fatal() in an
    // artifact writer -- a postmortem lands next to the run artifacts.
    obs::installFatalPostmortem(opts_.outDir + "/postmortem.json");

    // Live telemetry. Declared before the rigs vector below so cells'
    // heartbeat slots outlive every rig that publishes into them.
    std::unique_ptr<obs::SweepProgress> progress;
    if (opts_.progress || !opts_.progressFile.empty()) {
        obs::SweepProgress::Options popts;
        popts.tty = opts_.progress;
        popts.file = opts_.progressFile;
        try {
            progress = std::make_unique<obs::SweepProgress>(popts);
        } catch (const IoError& e) {
            fatal("progress: %s", e.what());
        }
    }
    std::size_t total_cells = n_cells;
    if (opts_.cells != CellMode::Combined) {
        total_cells = n_cells * emulators.size();
        if (opts_.cells == CellMode::Replay && opts_.replayBase.empty())
            total_cells += n_cells;
    }
    if (progress != nullptr) {
        if (opts_.cells == CellMode::Combined) {
            // Row i is workload i; per-config modes register their own
            // rows inside runPerConfigCells.
            for (const std::string& name : opts_.workloads)
                progress->addCell(name);
        }
        progress->start();
        progress->event("sweep_start",
                        "\"figure\":" + obs::json::quote(figure_id) +
                            ",\"cells\":" + std::to_string(total_cells));
    }

    obs::RunManifest manifest;
    manifest.figureId = figure_id;
    manifest.platform = platform.name;
    manifest.nCores = platform.nCores;
    manifest.scale = opts_.scale;
    manifest.seed = opts_.seed;
    manifest.seedSource = opts_.seedSource;
    manifest.configTicks = ticks;
    manifest.cellMode = toString(opts_.cells);

    // Combined mode keeps its rigs alive to the end of the figure so
    // the unprefixed final-rig stats view stays valid.
    std::vector<std::unique_ptr<CoSimulation>> rigs;

    auto wall0 = std::chrono::steady_clock::now();
    std::vector<CellOutput> cells;
    if (opts_.cells == CellMode::Combined) {
        CoSimParams params;
        params.platform = platform;
        params.platform.dex.hostThreads = opts_.dexThreads;
        params.platform.dex.degradeSerial = opts_.degradeSerial;
        params.emulators = emulators;
        params.emulationThreads = opts_.emuThreads;
        params.degradeToSerial = opts_.degradeSerial;

        const unsigned jobs = static_cast<unsigned>(
            std::min<std::size_t>(opts_.jobs,
                                  std::max<std::size_t>(n_cells, 1)));

        // One rig per cell when cells run in parallel or must fail
        // independently (--keep-going / --retry-cells: a poisoned rig
        // must not leak into the next cell); a single reused rig (the
        // original behaviour) when serial. Workload executions never
        // share simulator state either way -- the platform resets per
        // run -- so the modes produce identical results. Isolated rigs
        // are built lazily *inside* their cell so parallel sweeps do
        // not serialise n_cells rig constructions up front -- each
        // worker thread pays for (and times) its own cell's rig.
        const bool isolate =
            jobs > 1 || opts_.keepGoing || opts_.retryCells > 0;
        if (isolate) {
            rigs.resize(n_cells); // filled per cell, inside run_cell
        } else {
            rigs.reserve(1);
            rigs.push_back(std::make_unique<CoSimulation>(params));
        }
        manifest.hostJobs = jobs;
        manifest.emulationThreads =
            (opts_.emuThreads == 0 || emulators.empty())
                ? 0
                : static_cast<unsigned>(std::min<std::size_t>(
                      opts_.emuThreads, emulators.size()));
        manifest.dexThreads = opts_.dexThreads;

        const bool replay = !opts_.replayBase.empty();
        auto run_cell = [&](std::size_t i) {
            const std::string& name = opts_.workloads[i];
            return runGuardedCell(
                name, "cell/" + name + "/", opts_, progress.get(), i,
                [&, i](unsigned attempt_no, obs::HeartbeatSlot* beat) {
                    std::unique_ptr<CoSimulation>& rig =
                        rigs[isolate ? i : 0];
                    if (isolate && (rig == nullptr || attempt_no > 1)) {
                        // First attempt: lazy per-cell construction (see
                        // above). Retry: the failed attempt may have
                        // poisoned the rig (a dead emulation worker
                        // stays dead), so rebuild on a fresh one.
                        // Close any preceding silence honestly before
                        // the build starts; the construction interval
                        // itself is excised below.
                        if (beat != nullptr)
                            beat->pulse();
                        std::uint64_t t0 = hostClockNowUs();
                        rig = std::make_unique<CoSimulation>(params);
                        if (obs::metrics::enabled()) {
                            static const obs::metrics::Histogram setup_ms =
                                obs::metrics::histogram(
                                    "sweep.cell_setup_ms",
                                    "per-cell rig construction wall "
                                    "milliseconds");
                            setup_ms.record((hostClockNowUs() - t0) /
                                            1000);
                        }
                        // Construction emits no heartbeats and its wall
                        // time is already accounted for above, so it
                        // must not read as watchdog silence.
                        if (beat != nullptr)
                            beat->watch().skipGap();
                    }
                    rig->setHeartbeat(beat);
                    return replay
                        ? replayCombinedCell(*rig, name, platform, opts_)
                        : runCombinedCell(*rig, name, platform, opts_);
                });
        };
        cells.resize(n_cells);
        if (jobs > 1) {
            // Only the aggregation below touches shared state; each cell
            // owns its rig and its workload.
            ThreadPool pool(jobs);
            std::vector<std::future<CellOutput>> futures;
            futures.reserve(n_cells);
            for (std::size_t i = 0; i < n_cells; ++i) {
                futures.push_back(
                    pool.submit([&run_cell, i] { return run_cell(i); }));
            }
            for (std::size_t i = 0; i < n_cells; ++i)
                cells[i] = futures[i].get();
        } else {
            for (std::size_t i = 0; i < n_cells; ++i) {
                debug("sweep %s: starting %s (%zu/%zu)",
                      figure_id.c_str(), opts_.workloads[i].c_str(),
                      i + 1, n_cells);
                cells[i] = run_cell(i);
            }
        }
    } else {
        manifest.hostJobs = opts_.jobs;
        manifest.emulationThreads = opts_.emuThreads;
        manifest.dexThreads = opts_.dexThreads;
        cells = runPerConfigCells(opts_, platform, emulators, ticks,
                                  progress.get());
    }
    manifest.wallSeconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      wall0)
            .count();

    // Close the progress stream before printing the summary (and
    // before a failed cell can fatal() past the destructors): the
    // counts are workload rows, matching the summary below.
    if (progress != nullptr) {
        std::size_t n_ok = 0;
        std::size_t n_failed = 0;
        for (const CellOutput& c : cells)
            (c.failed ? n_failed : n_ok) += 1;
        progress->event("sweep_finish",
                        "\"ok\":" + std::to_string(n_ok) +
                            ",\"failed\":" + std::to_string(n_failed));
        progress->stop();
        if (!opts_.progressFile.empty())
            inform("progress: %s", opts_.progressFile.c_str());
    }

    // Aggregate in workload order regardless of completion order, so the
    // figure, manifest and digest outputs are deterministic.
    double host_sum = 0.0;
    bool any_failed = false;
    std::string first_error;
    DigestManifest digests;
    for (std::size_t i = 0; i < n_cells; ++i) {
        CellOutput& cell = cells[i];
        if (cell.failed) {
            const std::string& name = opts_.workloads[i];
            if (cell.mw.name.empty())
                cell.mw.name = name;
            // Drop whatever the failed cell registered before dying so
            // the stats dump never carries a half-populated namespace.
            obs::StatsRegistry::global().removePrefix("cell/" + name +
                                                      "/");
            manifest.workloads.push_back(cell.mw);
            figure.addFailedSeries(name, cell.mw.status);
            if (!any_failed)
                first_error = cell.mw.error;
            any_failed = true;
            std::printf("  %-9s FAILED after %llu attempt(s): %s  "
                        "[%zu/%zu]\n", name.c_str(),
                        static_cast<unsigned long long>(cell.mw.attempts),
                        cell.mw.error.c_str(), i + 1, n_cells);
            continue;
        }
        host_sum += cell.mw.hostSeconds;
        manifest.guestExecutions += cell.guestExecutions;
        manifest.captureTxns += cell.captureTxns;
        manifest.captureBytes += cell.captureBytes;
        manifest.captureSeconds += cell.captureSeconds;
        manifest.replayTxns += cell.replayTxns;
        manifest.replayBytes += cell.replayBytes;
        manifest.replaySeconds += cell.replaySeconds;
        if (cell.hasDigest)
            digests.add(cell.mw.name, cell.streamTxns, cell.streamDigest);
        manifest.workloads.push_back(cell.mw);
        figure.addSeries(cell.mw.name, cell.series,
                         std::move(cell.points));
        figure.setStatus(cell.mw.name, cell.mw.status);
        std::printf("  %-9s %8.1fM inst  %6.2fs host  %5.1f MIPS  "
                    "verified=%s%s  [%zu/%zu]\n", cell.mw.name.c_str(),
                    static_cast<double>(cell.mw.totalInsts) / 1e6,
                    cell.mw.hostSeconds, cell.mw.simMips,
                    cell.mw.verified ? "yes" : "NO",
                    cell.mw.replayedFrom.empty() ? "" : "  replayed",
                    i + 1, n_cells);
    }
    manifest.hostSpeedup = manifest.wallSeconds > 0.0
        ? host_sum / manifest.wallSeconds
        : 0.0;

    // A failed cell without --keep-going fails the run *before* any
    // artifact is written: a nonzero exit must never leave behind a
    // stats dump or manifest that looks like a completed figure.
    if (any_failed && !opts_.keepGoing) {
        fatal("sweep %s: cell failed: %s (use --keep-going to finish "
              "the healthy cells)", figure_id.c_str(),
              first_error.c_str());
    }

    // Publish the rig's component stats and the host profile through the
    // uniform registry dumpers. In combined mode the last rig's live
    // counters are registered -- the same "state after the final
    // workload" view the reused serial rig exposes; per-config modes
    // rely on the frozen cell/<workload>/<config>/ snapshots instead.
    obs::StatsRegistry& registry = obs::StatsRegistry::global();
    // Lazily built cells can leave trailing null slots (e.g. a cell
    // that failed before its rig was constructed): register the last
    // rig that actually exists.
    for (auto it = rigs.rbegin(); it != rigs.rend(); ++it) {
        if (*it != nullptr) {
            (*it)->registerStats(registry);
            break;
        }
    }
    registry.add(obs::HostProfiler::global().statsGroup());
    if (obs::metrics::enabled()) {
        // Telemetry scalars (counter values, histogram count/sum/mean)
        // ride the same dumpers as every other stats group.
        registry.add(
            obs::metrics::Registry::global().statsGroup("metrics"));
    }

    if (manifest.captureTxns > 0) {
        stats::Group g("capture");
        const double txns = static_cast<double>(manifest.captureTxns);
        const double bytes = static_cast<double>(manifest.captureBytes);
        const double secs = manifest.captureSeconds;
        g.add("txns", [txns] { return txns; });
        g.add("bytes", [bytes] { return bytes; });
        g.add("encode_seconds", [secs] { return secs; });
        registry.add(std::move(g));
    }
    if (manifest.replayTxns > 0) {
        stats::Group g("replay");
        const double txns = static_cast<double>(manifest.replayTxns);
        const double bytes = static_cast<double>(manifest.replayBytes);
        const double secs = manifest.replaySeconds;
        g.add("txns", [txns] { return txns; });
        g.add("bytes", [bytes] { return bytes; });
        g.add("seconds", [secs] { return secs; });
        registry.add(std::move(g));
    }

    if (!opts_.statsFile.empty()) {
        registry.writeFile(opts_.statsFile);
        inform("stats: %s", opts_.statsFile.c_str());
    }

    if (!opts_.digestFile.empty()) {
        fatal_if(digests.entries.empty(),
                 "--digest=%s: no stream digests were computed",
                 opts_.digestFile.c_str());
        digests.writeFile(opts_.digestFile);
        inform("digests: %s", opts_.digestFile.c_str());
    }

    if (!opts_.metricsFile.empty()) {
        try {
            writeFileAtomic(opts_.metricsFile,
                            obs::metrics::renderOpenMetrics(
                                obs::metrics::Registry::global()
                                    .snapshot()));
        } catch (const IoError& e) {
            fatal("metrics: %s", e.what());
        }
        inform("metrics: %s", opts_.metricsFile.c_str());
    }

    const obs::HostProfiler& prof = obs::HostProfiler::global();
    for (const auto& p : prof.phases())
        manifest.hostPhases.push_back({p.name, p.seconds, p.calls});
    manifest.hostSimMips = prof.simulatedMips();
    if (!opts_.manifestFile.empty()) {
        manifest.writeJson(opts_.manifestFile);
        inform("manifest: %s", opts_.manifestFile.c_str());
    }

    if (own_trace) {
        trace.stop();
        trace.writeJson(opts_.traceFile);
        inform("trace: %s (%zu events)", opts_.traceFile.c_str(),
               trace.eventCount());
    }
    return figure;
}

FigureData
SweepRunner::runCacheSizeFigure(const std::string& figure_id,
                                const PlatformParams& platform)
{
    std::vector<std::string> ticks;
    for (std::uint64_t size : presets::llcSizeSweep())
        ticks.push_back(formatSize(size));
    return runFigure(figure_id, platform,
                     presets::llcSizeSweepEmulators(), ticks);
}

FigureData
SweepRunner::runLineSizeFigure(const std::string& figure_id,
                               const PlatformParams& platform)
{
    std::vector<std::string> ticks;
    for (std::uint32_t line : presets::lineSizeSweep())
        ticks.push_back(formatSize(line));
    return runFigure(figure_id, platform,
                     presets::lineSizeSweepEmulators(), ticks);
}

} // namespace cosim
