#include "harness/sweep_runner.hh"

#include <cstdio>

#include "base/logging.hh"
#include "base/units.hh"
#include "workloads/workload_factory.hh"

namespace cosim {

FigureData
SweepRunner::runFigure(const std::string& figure_id,
                       const PlatformParams& platform,
                       const std::vector<DragonheadParams>& emulators,
                       const std::vector<std::string>& ticks)
{
    FigureData figure(figure_id, "cache configuration", ticks);

    CoSimParams params;
    params.platform = platform;
    params.emulators = emulators;
    CoSimulation cosim(params);

    for (const std::string& name : opts_.workloads) {
        auto workload = createWorkload(name, opts_.scale);

        WorkloadConfig cfg;
        cfg.nThreads = platform.nCores;
        cfg.scale = opts_.scale;
        cfg.seed = opts_.seed;

        RunResult result = cosim.run(*workload, cfg);
        if (!result.verified) {
            if (opts_.strictVerify) {
                fatal("%s failed self-verification on %s", name.c_str(),
                      platform.name.c_str());
            }
            warn("%s failed self-verification on %s", name.c_str(),
                 platform.name.c_str());
        }

        std::vector<double> series;
        std::vector<SweepPoint> points;
        for (unsigned e = 0; e < cosim.nEmulators(); ++e) {
            const Dragonhead& dh = cosim.emulator(e);
            LlcResults llc = dh.results();

            SweepPoint point;
            point.workload = workload->name();
            point.nCores = platform.nCores;
            point.llcSize = dh.params().llc.size;
            point.lineSize = dh.params().llc.lineSize;
            point.llcAccesses = llc.accesses;
            point.llcMisses = llc.misses;
            point.insts = llc.insts;
            series.push_back(point.mpki());
            points.push_back(point);
        }
        figure.addSeries(workload->name(), series, std::move(points));

        std::printf("  %-9s %8.1fM inst  %6.2fs host  %5.1f MIPS  "
                    "verified=%s\n",
                    workload->name().c_str(),
                    static_cast<double>(result.totalInsts) / 1e6,
                    result.hostSeconds, result.simMips(),
                    result.verified ? "yes" : "NO");
    }
    return figure;
}

FigureData
SweepRunner::runCacheSizeFigure(const std::string& figure_id,
                                const PlatformParams& platform)
{
    std::vector<std::string> ticks;
    for (std::uint64_t size : presets::llcSizeSweep())
        ticks.push_back(formatSize(size));
    return runFigure(figure_id, platform,
                     presets::llcSizeSweepEmulators(), ticks);
}

FigureData
SweepRunner::runLineSizeFigure(const std::string& figure_id,
                               const PlatformParams& platform)
{
    std::vector<std::string> ticks;
    for (std::uint32_t line : presets::lineSizeSweep())
        ticks.push_back(formatSize(line));
    return runFigure(figure_id, platform,
                     presets::lineSizeSweepEmulators(), ticks);
}

} // namespace cosim
