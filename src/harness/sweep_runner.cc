#include "harness/sweep_runner.hh"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <functional>
#include <future>
#include <map>
#include <memory>
#include <sstream>
#include <stdexcept>
#include <thread>

#include <unistd.h>

#include "base/atomic_file.hh"
#include "base/fault.hh"
#include "base/flight_recorder.hh"
#include "base/host_clock.hh"
#include "base/logging.hh"
#include "base/str.hh"
#include "base/subprocess.hh"
#include "base/thread_pool.hh"
#include "base/units.hh"
#include "harness/sweep_journal.hh"
#include "obs/host_profiler.hh"
#include "obs/json.hh"
#include "obs/metrics.hh"
#include "obs/postmortem.hh"
#include "obs/progress.hh"
#include "obs/run_manifest.hh"
#include "obs/stats_registry.hh"
#include "obs/trace_session.hh"
#include "trace/fsb_capture.hh"
#include "trace/phase_cluster.hh"
#include "trace/sampled_replay.hh"
#include "workloads/workload_factory.hh"

namespace cosim {

namespace {

/** Everything one sweep cell (or one workload's merged cells) produces. */
struct CellOutput
{
    obs::ManifestWorkload mw;
    std::vector<double> series;
    std::vector<SweepPoint> points;

    /** Cell outcome: true when every attempt failed. The manifest
     * entry (mw.status / mw.attempts / mw.error) carries the detail. */
    bool failed = false;

    /** Times the guest executed to produce this output. */
    std::uint64_t guestExecutions = 0;

    /** Stream fingerprint for the digest manifest (when observed). @{ */
    bool hasDigest = false;
    std::uint64_t streamTxns = 0;
    std::uint64_t streamDigest = 0;
    /** @} */

    /** Capture/replay bookkeeping for the run manifest. @{ */
    std::uint64_t captureTxns = 0;
    std::uint64_t captureBytes = 0;
    double captureSeconds = 0.0;
    std::uint64_t replayTxns = 0;
    std::uint64_t replayBytes = 0;
    double replaySeconds = 0.0;
    /** @} */

    /** Raw CB sample series of the first configuration; the input
     * --plan-out clusters into a sampling plan. */
    std::vector<Sample> cbSamples;
};

/** Stream-header provenance for a capture of @p name on @p platform. */
FsbStreamMeta
captureMeta(const std::string& name, const PlatformParams& platform,
            const BenchOptions& opts)
{
    FsbStreamMeta meta;
    meta.workload = name;
    meta.platform = platform.name;
    meta.nCores = platform.nCores;
    meta.seed = opts.seed;
    meta.scale = opts.scale;
    return meta;
}

void
checkVerified(const RunResult& result, const std::string& name,
              const PlatformParams& platform, const BenchOptions& opts)
{
    if (result.verified)
        return;
    if (opts.strictVerify) {
        fatal("%s failed self-verification on %s", name.c_str(),
              platform.name.c_str());
    }
    warn("%s failed self-verification on %s", name.c_str(),
         platform.name.c_str());
}

void
fillWorkloadResult(CellOutput& cell, const std::string& name,
                   const RunResult& result)
{
    cell.mw.name = name;
    cell.mw.totalInsts = result.totalInsts;
    cell.mw.hostSeconds = result.hostSeconds;
    cell.mw.simMips = result.simMips();
    cell.mw.verified = result.verified;
    cell.mw.replayedFrom = result.replayedFrom;
}

/** Append one emulated configuration's final counters to @p cell. */
void
collectEmulator(const Dragonhead& dh, const std::string& wname,
                unsigned n_cores, CellOutput& cell)
{
    LlcResults llc = dh.results();

    SweepPoint point;
    point.workload = wname;
    point.nCores = n_cores;
    point.llcSize = dh.params().llc.size;
    point.lineSize = dh.params().llc.lineSize;
    point.llcAccesses = llc.accesses;
    point.llcMisses = llc.misses;
    point.insts = llc.insts;
    cell.series.push_back(point.mpki());
    cell.points.push_back(point);
    cell.mw.mpkiPerConfig.push_back(point.mpki());
}

/** Keep the CB 500 us MPKI series of @p dh (the first configuration). */
void
collectSamples(const Dragonhead& dh, CellOutput& cell)
{
    cell.cbSamples = dh.samples();
    for (const Sample& s : cell.cbSamples) {
        cell.mw.seriesTimeUs.push_back(s.timeUs);
        cell.mw.seriesMpki.push_back(s.mpki());
    }
}

/** Relative error of @p est against reference @p full. */
double
relErr(double est, double full)
{
    if (full == 0.0)
        return est == 0.0 ? 0.0 : 1.0;
    return std::abs(est - full) / std::abs(full);
}

/** Cluster @p samples into a plan whose window geometry matches the
 * sweep's CB configuration (the replay gate recomputes windows from the
 * plan, so the two must agree). */
SamplingPlan
makePlan(const std::vector<Sample>& samples, const std::string& name,
         const ControlBlockParams& cb, const BenchOptions& opts)
{
    PhaseClusterParams pc;
    pc.seed = opts.seed;
    pc.warmupWindows = opts.warmupWindows;
    if (opts.maxPhases != 0) {
        pc.maxPhases = opts.maxPhases;
    } else {
        // Auto-scale the phase cap as ~sqrt of the series length: a
        // fine sample period decomposes the run into many more windows,
        // and a fixed cap would lump heterogeneous windows into one
        // phase whose single representative misestimates the mean.
        const double n = static_cast<double>(samples.size());
        pc.maxPhases = static_cast<unsigned>(std::clamp(
            std::sqrt(n) + 0.5, 6.0, 24.0));
    }
    SamplingPlan plan = clusterPhases(samples, name, pc);
    plan.samplePeriodUs = static_cast<double>(cb.samplePeriodUs);
    plan.coreFreqGhz = cb.coreFreqGhz;
    return plan;
}

/**
 * Freeze @p cosim's component stats into the global registry under
 * @p prefix, so every cell's counters survive -- not just the final
 * rig's live view.
 */
void
snapshotCellStats(const CoSimulation& cosim, const std::string& prefix)
{
    obs::StatsRegistry local;
    cosim.registerStats(local);
    obs::StatsRegistry::global().addSnapshotOf(local, prefix);
}

/** Record a sealed capture's stream/overhead numbers into @p cell. */
void
noteCapture(CellOutput& cell, FsbStreamWriter& writer,
            double encode_seconds)
{
    cell.hasDigest = true;
    cell.streamTxns = writer.txnCount();
    cell.streamDigest = writer.digest();
    cell.captureTxns = writer.txnCount();
    cell.captureBytes = writer.encodedBytes();
    cell.captureSeconds = encode_seconds;
    obs::HostProfiler::global().accumulate("capture.encode",
                                           encode_seconds);
}

/** Record a finished replay's stream numbers into @p cell. */
void
noteReplay(CellOutput& cell, const ReplayResult& details)
{
    cell.replayTxns = details.txns;
    cell.replayBytes = details.streamBytes;
    cell.replaySeconds = details.seconds;
}

void
warnStreamWorkload(const FsbStreamMeta& meta, const std::string& source,
                   const std::string& expected)
{
    if (meta.workload != expected) {
        warn("replay stream %s records workload '%s', expected '%s'",
             source.c_str(), meta.workload.c_str(), expected.c_str());
    }
}

/** Last non-empty line of @p text (child stderr -> cell error). */
std::string
lastLine(const std::string& text)
{
    const std::size_t end = text.find_last_not_of("\r\n");
    if (end == std::string::npos)
        return "";
    const std::size_t nl = text.rfind('\n', end);
    const std::size_t start = nl == std::string::npos ? 0 : nl + 1;
    return text.substr(start, end - start + 1);
}

/** Slurp @p path. @return false when it cannot be opened. */
bool
readWholeFile(const std::string& path, std::string* out)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return false;
    std::ostringstream ss;
    ss << in.rdbuf();
    *out = ss.str();
    return true;
}

/**
 * An isolated cell's child process failed: non-zero exit, crash signal,
 * or shot by the silence watchdog. Carries the decoded SubprocessResult
 * so the guard can journal *how* the cell ended and write a postmortem
 * with the child's decoded signal and stderr tail.
 */
class CellProcessError : public std::runtime_error
{
  public:
    explicit CellProcessError(const SubprocessResult& r)
        : std::runtime_error(describe(r)), result(r)
    {}

    SubprocessResult result;

  private:
    static std::string
    describe(const SubprocessResult& r)
    {
        std::string msg = "cell process " + r.describe();
        const std::string tail = lastLine(r.stderrTail);
        if (!tail.empty())
            msg += ": " + tail;
        return msg;
    }
};

/**
 * Result-artifact path for @p label under "<outDir>/cells/". Slashes
 * in per-config labels ("PLSA/64MB") flatten to underscores so every
 * cell is one file in one flat directory.
 */
std::string
cellArtifactPath(const BenchOptions& opts, const std::string& label)
{
    std::string file = label;
    for (char& c : file) {
        if (c == '/')
            c = '_';
    }
    return opts.outDir + "/cells/" + file + ".cell.json";
}

std::string
doubleArray(const std::vector<double>& values)
{
    std::string out = "[";
    for (std::size_t i = 0; i < values.size(); ++i) {
        if (i)
            out += ",";
        out += obs::json::number(values[i]);
    }
    return out + "]";
}

/**
 * Serialize everything a finished cell produced (cosim-cell-result/1):
 * the manifest entry, figure series/points, stream bookkeeping, CB
 * samples, and the cell's frozen "cell/<label>/..." stats groups out
 * of the global registry. This is both the isolation wire format
 * (--run-cell child -> parent) and the journal's durable artifact
 * (--resume re-loads it instead of re-running the cell), so it must
 * round-trip exactly: integers are written as decimals
 * (std::to_string, exact), doubles through json::number (shortest
 * round-trip-safe), and the one value that cannot survive a JSON
 * double at all -- the 64-bit stream digest -- rides as a decimal
 * string.
 */
std::string
renderCellResult(const CellOutput& cell, const std::string& stats_prefix)
{
    using obs::json::number;
    using obs::json::quote;

    std::string out = "{\n";
    out += "\"schema\":\"cosim-cell-result/1\",\n";

    const obs::ManifestWorkload& w = cell.mw;
    out += "\"workload\":{\"name\":" + quote(w.name) +
           ",\"insts\":" + std::to_string(w.totalInsts) +
           ",\"host_seconds\":" + number(w.hostSeconds) +
           ",\"sim_mips\":" + number(w.simMips) +
           ",\"verified\":" + (w.verified ? "true" : "false") +
           ",\"status\":" + quote(w.status) +
           ",\"attempts\":" + std::to_string(w.attempts) +
           ",\"error\":" + quote(w.error) +
           ",\"replayed_from\":" + quote(w.replayedFrom) +
           ",\"mpki_per_config\":" + doubleArray(w.mpkiPerConfig) +
           ",\"series_time_us\":" + doubleArray(w.seriesTimeUs) +
           ",\"series_mpki\":" + doubleArray(w.seriesMpki);
    if (w.sampling.active) {
        const obs::ManifestSampling& s = w.sampling;
        out += ",\"sampling\":{\"intervals\":" +
               std::to_string(s.intervals) +
               ",\"total_windows\":" + std::to_string(s.totalWindows) +
               ",\"warmup_quanta\":" + std::to_string(s.warmupQuanta) +
               ",\"coverage\":" + number(s.coverage) +
               ",\"has_error\":" + (s.hasError ? "true" : "false") +
               ",\"err\":" +
               doubleArray({s.errCpi, s.errMpki, s.errApki, s.errDram}) +
               ",\"est\":" +
               doubleArray({s.estCpi, s.estMpki, s.estApki}) +
               ",\"full\":" +
               doubleArray({s.fullCpi, s.fullMpki, s.fullApki}) + "}";
    }
    out += "},\n";

    out += std::string("\"failed\":") +
           (cell.failed ? "true" : "false") +
           ",\"guest_executions\":" +
           std::to_string(cell.guestExecutions) + ",\n";
    out += "\"series\":" + doubleArray(cell.series) + ",\n";

    out += "\"points\":[";
    for (std::size_t i = 0; i < cell.points.size(); ++i) {
        const SweepPoint& p = cell.points[i];
        if (i)
            out += ",";
        out += "\n {\"workload\":" + quote(p.workload) +
               ",\"cores\":" + std::to_string(p.nCores) +
               ",\"llc_size\":" + std::to_string(p.llcSize) +
               ",\"line_size\":" + std::to_string(p.lineSize) +
               ",\"accesses\":" + std::to_string(p.llcAccesses) +
               ",\"misses\":" + std::to_string(p.llcMisses) +
               ",\"insts\":" + std::to_string(p.insts) + "}";
    }
    out += "],\n";

    if (cell.hasDigest) {
        out += "\"digest\":{\"txns\":" +
               std::to_string(cell.streamTxns) + ",\"value\":" +
               quote(std::to_string(cell.streamDigest)) + "},\n";
    }
    out += "\"capture\":{\"txns\":" + std::to_string(cell.captureTxns) +
           ",\"bytes\":" + std::to_string(cell.captureBytes) +
           ",\"seconds\":" + number(cell.captureSeconds) + "},\n";
    out += "\"replay\":{\"txns\":" + std::to_string(cell.replayTxns) +
           ",\"bytes\":" + std::to_string(cell.replayBytes) +
           ",\"seconds\":" + number(cell.replaySeconds) + "},\n";

    out += "\"cb_samples\":[";
    for (std::size_t i = 0; i < cell.cbSamples.size(); ++i) {
        const Sample& s = cell.cbSamples[i];
        if (i)
            out += ",";
        out += "[" + number(s.timeUs) + "," + std::to_string(s.insts) +
               "," + std::to_string(s.cycles) + "," +
               std::to_string(s.accesses) + "," +
               std::to_string(s.misses) + "]";
    }
    out += "],\n";

    // The cell's frozen stats namespaces, so the parent's (or a
    // resumed run's) stats dump matches an in-process run's exactly.
    out += "\"stats\":{";
    obs::StatsRegistry& registry = obs::StatsRegistry::global();
    bool first_group = true;
    for (const std::string& gname : registry.groupNames()) {
        if (gname.rfind(stats_prefix, 0) != 0)
            continue;
        const stats::Group* group = registry.find(gname);
        if (group == nullptr)
            continue;
        if (!first_group)
            out += ",";
        first_group = false;
        out += "\n " + quote(gname) + ":{";
        bool first_stat = true;
        for (const auto& stat : group->collect()) {
            if (!first_stat)
                out += ",";
            first_stat = false;
            out += quote(stat.first) + ":" + number(stat.second);
        }
        out += "}";
    }
    out += first_group ? "}\n" : "\n}\n";
    out += "}\n";
    return out;
}

/** Typed field access with zero-value defaults (parseCellResult). @{ */
double
numField(const obs::json::Value& obj, const char* key)
{
    const obs::json::Value* v = obj.find(key);
    return v != nullptr && v->isNumber() ? v->num : 0.0;
}

std::uint64_t
u64Field(const obs::json::Value& obj, const char* key)
{
    const obs::json::Value* v = obj.find(key);
    if (v == nullptr)
        return 0;
    if (v->isNumber())
        return static_cast<std::uint64_t>(v->num);
    if (v->isString())
        return std::strtoull(v->str.c_str(), nullptr, 10);
    return 0;
}

std::string
strField(const obs::json::Value& obj, const char* key)
{
    const obs::json::Value* v = obj.find(key);
    return v != nullptr && v->isString() ? v->str : std::string();
}

bool
boolField(const obs::json::Value& obj, const char* key)
{
    const obs::json::Value* v = obj.find(key);
    return v != nullptr && v->isBool() && v->boolean;
}

std::vector<double>
arrayField(const obs::json::Value& obj, const char* key)
{
    std::vector<double> out;
    const obs::json::Value* v = obj.find(key);
    if (v == nullptr || !v->isArray())
        return out;
    out.reserve(v->arr.size());
    for (const obs::json::Value& e : v->arr)
        out.push_back(e.num);
    return out;
}
/** @} */

/**
 * Parse a cosim-cell-result/1 document back into a CellOutput and
 * re-register its embedded stats namespaces as frozen groups -- the
 * same shape snapshotCellStats leaves behind for an in-process cell.
 */
bool
parseCellResult(const std::string& text, CellOutput* out,
                std::string* error)
{
    obs::json::Value root;
    if (!obs::json::parse(text, root, error))
        return false;
    if (!root.isObject()) {
        *error = "not a JSON object";
        return false;
    }
    if (strField(root, "schema") != "cosim-cell-result/1") {
        *error = "unexpected schema '" + strField(root, "schema") + "'";
        return false;
    }
    const obs::json::Value* w = root.find("workload");
    if (w == nullptr || !w->isObject()) {
        *error = "missing workload object";
        return false;
    }

    CellOutput cell;
    cell.mw.name = strField(*w, "name");
    cell.mw.totalInsts = u64Field(*w, "insts");
    cell.mw.hostSeconds = numField(*w, "host_seconds");
    cell.mw.simMips = numField(*w, "sim_mips");
    cell.mw.verified = boolField(*w, "verified");
    cell.mw.status = strField(*w, "status");
    cell.mw.attempts = u64Field(*w, "attempts");
    cell.mw.error = strField(*w, "error");
    cell.mw.replayedFrom = strField(*w, "replayed_from");
    cell.mw.mpkiPerConfig = arrayField(*w, "mpki_per_config");
    cell.mw.seriesTimeUs = arrayField(*w, "series_time_us");
    cell.mw.seriesMpki = arrayField(*w, "series_mpki");
    if (const obs::json::Value* s = w->find("sampling")) {
        obs::ManifestSampling& ms = cell.mw.sampling;
        ms.active = true;
        ms.intervals = u64Field(*s, "intervals");
        ms.totalWindows = u64Field(*s, "total_windows");
        ms.warmupQuanta = u64Field(*s, "warmup_quanta");
        ms.coverage = numField(*s, "coverage");
        ms.hasError = boolField(*s, "has_error");
        const std::vector<double> err = arrayField(*s, "err");
        const std::vector<double> est = arrayField(*s, "est");
        const std::vector<double> full = arrayField(*s, "full");
        if (err.size() == 4) {
            ms.errCpi = err[0];
            ms.errMpki = err[1];
            ms.errApki = err[2];
            ms.errDram = err[3];
        }
        if (est.size() == 3) {
            ms.estCpi = est[0];
            ms.estMpki = est[1];
            ms.estApki = est[2];
        }
        if (full.size() == 3) {
            ms.fullCpi = full[0];
            ms.fullMpki = full[1];
            ms.fullApki = full[2];
        }
    }

    cell.failed = boolField(root, "failed");
    cell.guestExecutions = u64Field(root, "guest_executions");
    cell.series = arrayField(root, "series");
    if (const obs::json::Value* pts = root.find("points")) {
        for (const obs::json::Value& pv : pts->arr) {
            SweepPoint p;
            p.workload = strField(pv, "workload");
            p.nCores = static_cast<unsigned>(u64Field(pv, "cores"));
            p.llcSize = u64Field(pv, "llc_size");
            p.lineSize =
                static_cast<std::uint32_t>(u64Field(pv, "line_size"));
            p.llcAccesses = u64Field(pv, "accesses");
            p.llcMisses = u64Field(pv, "misses");
            p.insts = u64Field(pv, "insts");
            cell.points.push_back(std::move(p));
        }
    }
    if (const obs::json::Value* d = root.find("digest")) {
        cell.hasDigest = true;
        cell.streamTxns = u64Field(*d, "txns");
        cell.streamDigest = u64Field(*d, "value");
    }
    if (const obs::json::Value* c = root.find("capture")) {
        cell.captureTxns = u64Field(*c, "txns");
        cell.captureBytes = u64Field(*c, "bytes");
        cell.captureSeconds = numField(*c, "seconds");
    }
    if (const obs::json::Value* r = root.find("replay")) {
        cell.replayTxns = u64Field(*r, "txns");
        cell.replayBytes = u64Field(*r, "bytes");
        cell.replaySeconds = numField(*r, "seconds");
    }
    if (const obs::json::Value* cb = root.find("cb_samples")) {
        for (const obs::json::Value& sv : cb->arr) {
            if (!sv.isArray() || sv.arr.size() != 5)
                continue;
            Sample s;
            s.timeUs = sv.arr[0].num;
            s.insts = static_cast<InstCount>(sv.arr[1].num);
            s.cycles = static_cast<Cycles>(sv.arr[2].num);
            s.accesses = static_cast<std::uint64_t>(sv.arr[3].num);
            s.misses = static_cast<std::uint64_t>(sv.arr[4].num);
            cell.cbSamples.push_back(s);
        }
    }

    if (const obs::json::Value* groups = root.find("stats")) {
        for (const auto& g : groups->obj) {
            stats::Group group(g.first);
            group.reserve(0, g.second.obj.size());
            for (const auto& stat : g.second.obj) {
                const double value = stat.second.num;
                group.add(stat.first, [value] { return value; });
            }
            obs::StatsRegistry::global().add(std::move(group));
        }
    }

    *out = std::move(cell);
    return true;
}

/**
 * Fingerprint of everything that determines what a sweep's cells
 * compute, so --resume refuses to mix two different sweeps' journals.
 * Host-side knobs (--jobs, timeouts, telemetry) are deliberately
 * excluded: they change how cells are scheduled, not what they
 * produce, and a resume routinely runs with different ones.
 */
std::uint64_t
sweepConfigDigest(const std::string& figure_id,
                  const PlatformParams& platform, const BenchOptions& opts,
                  const std::vector<std::string>& ticks)
{
    std::string key = figure_id;
    key += '|';
    key += platform.name;
    key += '|';
    key += std::to_string(platform.nCores);
    key += '|';
    key += obs::json::number(opts.scale);
    key += '|';
    key += std::to_string(opts.seed);
    key += '|';
    key += toString(opts.cells);
    key += '|';
    key += opts.replayBase;
    key += '|';
    key += opts.planBase;
    for (const std::string& w : opts.workloads) {
        key += '|';
        key += w;
    }
    for (const std::string& t : ticks) {
        key += '|';
        key += t;
    }
    return fnv1a64(key.data(), key.size());
}

/**
 * Build the child's argv from the sweep's own: keep everything that
 * shapes what the cell computes, strip everything that must stay a
 * parent concern -- recursion guards (--isolate-cells / --journal /
 * --resume), the fault plan (nth counters are per process; the parent
 * translates cell.proc.* into an explicit --self-destruct order),
 * scheduling, and telemetry sinks -- then append the cell order.
 */
std::vector<std::string>
childArgv(const BenchOptions& opts, const std::string& label,
          const std::string& result_path)
{
    static const char* const kStripPrefixes[] = {
        "--journal=",       "--resume=",      "--faults=",
        "--jobs=",          "--retry-cells=", "--cell-timeout=",
        "--progress-file=", "--metrics=",     "--trace=",
        "--stats=",         "--manifest=",    "--plan-out=",
    };
    std::vector<std::string> argv;
    argv.reserve(opts.selfArgv.size() + 2);
    for (const std::string& arg : opts.selfArgv) {
        if (arg == "--isolate-cells" || arg == "--journal" ||
            arg == "--keep-going" || arg == "--progress") {
            continue;
        }
        bool strip = false;
        for (const char* prefix : kStripPrefixes) {
            if (arg.rfind(prefix, 0) == 0) {
                strip = true;
                break;
            }
        }
        if (!strip)
            argv.push_back(arg);
    }
    argv.push_back("--run-cell=" + label);
    argv.push_back("--cell-result=" + result_path);
    return argv;
}

/** Crash-safety context threaded through the guarded cells. */
struct SweepLedger
{
    /** Write-ahead journal (null = journaling off). */
    SweepJournal* journal = nullptr;
    /** Verified results loaded from a resumed journal, by cell label
     * (null = not resuming). */
    const std::map<std::string, CellOutput>* resumed = nullptr;
    /** Count of cells short-circuited from @ref resumed. */
    std::atomic<std::uint64_t>* skipped = nullptr;
};

/**
 * One isolated attempt: re-execute this binary with --run-cell=<label>
 * and decode how the child ended. The heartbeat pipe keeps the live
 * progress view ticking, and --cell-timeout becomes a real watchdog --
 * a child silent past the budget is SIGKILLed, not merely marked
 * failed after the fact. Success means the child serialized its
 * CellOutput to the result artifact; anything else throws
 * CellProcessError into the retry loop.
 */
CellOutput
runIsolatedCell(const std::string& label, const BenchOptions& opts,
                obs::SweepProgress* progress, std::size_t cell_idx,
                obs::HeartbeatSlot* slot, SweepJournal* journal,
                unsigned attempt_no)
{
    const std::string artifact = cellArtifactPath(opts, label);

    SubprocessOptions sp;
    sp.argv = childArgv(opts, label, artifact);
    // cell.proc.* fire in the *parent's* injector (the child never
    // sees --faults, so sweep-wide nth counting stays in one process)
    // and turn into an explicit order the child obeys at startup.
    if (faultPending("cell.proc.crash")) {
        sp.argv.push_back("--self-destruct=segv");
    } else if (faultPending("cell.proc.stall")) {
        const double secs =
            opts.cellTimeout > 0.0 ? opts.cellTimeout * 1.5 : 0.25;
        sp.argv.push_back(strFormat("--self-destruct=stall:%.3f", secs));
    }
    sp.silenceTimeout = opts.cellTimeout;
    sp.heartbeatPipe = true;
    if (slot != nullptr) {
        sp.onHeartbeat = [slot](std::uint64_t) { slot->pulse(); };
    }
    sp.onSpawn = [&](int pid) {
        if (journal != nullptr)
            journal->cellRunning(label, attempt_no, pid);
        if (progress != nullptr)
            progress->cellSpawned(cell_idx, pid);
    };

    SubprocessResult r = runSubprocess(sp);
    if (obs::metrics::enabled()) {
        static const obs::metrics::Histogram rss_kb =
            obs::metrics::histogram("sweep.cell_rss_kb",
                                    "isolated cell child peak RSS (KB)");
        rss_kb.record(r.maxRssKb);
    }
    if (!r.ok()) {
        if (progress != nullptr &&
            r.end != SubprocessResult::End::Exited) {
            progress->cellKilled(cell_idx, r.pid, r.describe());
        }
        throw CellProcessError(r);
    }

    std::string text;
    if (!readWholeFile(artifact, &text))
        throw std::runtime_error("cell result missing: " + artifact);
    CellOutput cell;
    std::string err;
    if (!parseCellResult(text, &cell, &err)) {
        throw std::runtime_error("cell result " + artifact + ": " + err);
    }
    return cell;
}

/**
 * Run one sweep cell behind the failure-isolation boundary:
 *
 *  - retries: @p attempt runs up to opts.retryCells + 1 times; the
 *    attempt number is passed in so callers can rebuild a poisoned rig
 *  - fault points: "cell.throw" (throws FaultInjected) and "cell.hang"
 *    (naps past the watchdog) fire here, inside the guarded window
 *  - watchdog: with --cell-timeout, an attempt is marked failed when
 *    its heartbeat was *silent* longer than the budget (so a slow but
 *    beating cell is never killed while a wedged one still is); when
 *    no heartbeat exists -- telemetry off, or a path that never beats,
 *    like a serial replay -- the budget bounds total wall time as
 *    before. The check is cooperative (post-hoc), matching the repo's
 *    no-detached-threads rule: a cell stuck in a non-returning syscall
 *    still needs an external kill, but every in-simulator stall is
 *    caught on completion
 *  - telemetry: cell lifecycle events flow into @p progress (when
 *    non-null, with @p cell_idx addressing this cell's row), the
 *    flight recorder gets attempt markers, and every failed attempt
 *    drops "<outDir>/postmortem.json" naming the cell and -- via the
 *    fault injector's site report -- what was injected
 *  - stats hygiene: a failed attempt's @p stats_prefix namespace is
 *    dropped from the global registry, so run artifacts never carry a
 *    half-populated cell
 *
 * Success after a retry reports status "retried"; exhausted attempts
 * report a CellOutput with failed=true and the last error recorded.
 *
 * Crash safety (harness/sweep_journal.hh) layers on top:
 *
 *  - with --isolate-cells, each attempt runs in a forked child via
 *    runIsolatedCell, so a crash or wedge takes down the child only;
 *    a process death surfaces here as CellProcessError and rides the
 *    same retry loop, with the decoded signal and the child's stderr
 *    tail landing in the postmortem
 *  - with a ledger journal, every state transition is journaled
 *    (planned / running / done / failed) and a successful cell's
 *    result is persisted as a digest-fingerprinted artifact that
 *    --resume verifies and loads instead of re-running the cell
 */
CellOutput
runGuardedCell(const std::string& label, const std::string& stats_prefix,
               const BenchOptions& opts, const SweepLedger& ledger,
               obs::SweepProgress* progress, std::size_t cell_idx,
               const std::function<CellOutput(unsigned,
                                              obs::HeartbeatSlot*)>& attempt)
{
    // --resume: a journaled result that verified at load time replaces
    // the whole cell (its stats namespaces were re-registered then).
    if (ledger.resumed != nullptr) {
        auto it = ledger.resumed->find(label);
        if (it != ledger.resumed->end()) {
            if (ledger.journal != nullptr)
                ledger.journal->resumeSkip(label);
            if (ledger.skipped != nullptr)
                ledger.skipped->fetch_add(1, std::memory_order_relaxed);
            if (progress != nullptr)
                progress->cellResumeSkipped(cell_idx);
            if (obs::metrics::enabled()) {
                static const obs::metrics::Counter resume_skipped =
                    obs::metrics::counter(
                        "sweep.resume_skipped",
                        "cells loaded from a resumed journal instead "
                        "of re-run");
                resume_skipped.inc();
            }
            return it->second;
        }
    }
    if (ledger.journal != nullptr)
        ledger.journal->cellPlanned(label);

    obs::HeartbeatSlot* slot =
        progress != nullptr ? progress->slot(cell_idx) : nullptr;
    const unsigned max_attempts = opts.retryCells + 1;
    std::string last_error;
    double last_secs = 0.0;
    JournalExit last_exit;
    for (unsigned a = 1; a <= max_attempts; ++a) {
        obs::setPostmortemContext(label, a);
        FlightRecorder::setThreadLabel("cell/" + label);
        FlightRecorder::note(FrKind::CellAttempt, "sweep.cell", a,
                             cell_idx);
        if (progress != nullptr)
            progress->cellStarted(cell_idx, a);
        const auto t0 = std::chrono::steady_clock::now();
        try {
            // Isolated attempts journal their own running record from
            // onSpawn, with the real pid.
            if (!opts.isolateCells && ledger.journal != nullptr)
                ledger.journal->cellRunning(label, a, 0);
            COSIM_FAULT_POINT("cell.throw");
            if (faultPending("cell.hang")) {
                const double nap = opts.cellTimeout > 0.0
                    ? opts.cellTimeout * 1.5
                    : 0.25;
                std::this_thread::sleep_for(
                    std::chrono::duration<double>(nap));
            }
            CellOutput cell = opts.isolateCells
                ? runIsolatedCell(label, opts, progress, cell_idx, slot,
                                  ledger.journal, a)
                : attempt(a, slot);
            const double secs = std::chrono::duration<double>(
                                    std::chrono::steady_clock::now() - t0)
                                    .count();
            // Isolated cells already had the real watchdog: silence
            // past the budget means the child was SIGKILLed and never
            // reaches here.
            if (opts.cellTimeout > 0.0 && !opts.isolateCells) {
                if (slot != nullptr && slot->watch().beats() > 0) {
                    const double gap =
                        static_cast<double>(slot->watch().maxGapUs()) /
                        1e6;
                    if (gap > opts.cellTimeout) {
                        throw std::runtime_error(strFormat(
                            "cell exceeded --cell-timeout (silent for "
                            "%.2fs > %.2fs)", gap, opts.cellTimeout));
                    }
                } else if (secs > opts.cellTimeout) {
                    throw std::runtime_error(strFormat(
                        "cell exceeded --cell-timeout (%.2fs > %.2fs)",
                        secs, opts.cellTimeout));
                }
            }
            cell.mw.status = a > 1 ? "retried" : "ok";
            cell.mw.attempts = a;
            if (ledger.journal != nullptr) {
                // Durable result: (re-)write the artifact with the
                // final status/attempts and journal its fingerprint.
                // --resume trusts the file only while the digest still
                // matches; an unwritable artifact just leaves the cell
                // un-done, so a resume re-runs it.
                const std::string artifact =
                    cellArtifactPath(opts, label);
                try {
                    writeFileAtomic(
                        artifact, renderCellResult(cell, stats_prefix));
                } catch (const IoError& e) {
                    warn("cell artifact %s: %s", artifact.c_str(),
                         e.what());
                }
                std::uint64_t digest = 0;
                std::uint64_t bytes = 0;
                if (digestFileFnv(artifact, &digest, &bytes)) {
                    ledger.journal->cellDone(label, a, artifact, bytes,
                                             digest);
                } else {
                    warn("cell artifact %s: unreadable; the cell will "
                         "re-run on resume", artifact.c_str());
                }
            }
            FlightRecorder::note(FrKind::CellDone, "sweep.cell", a,
                                 cell_idx);
            if (progress != nullptr)
                progress->cellFinished(cell_idx, true, secs, "");
            if (obs::metrics::enabled()) {
                static const obs::metrics::Histogram wall_ms =
                    obs::metrics::histogram(
                        "sweep.cell_wall_ms",
                        "wall-clock of successful cell attempts (ms)");
                static const obs::metrics::Counter cells_ok =
                    obs::metrics::counter("sweep.cells_ok",
                                          "cells that finished ok");
                static const obs::metrics::Counter cells_retried =
                    obs::metrics::counter(
                        "sweep.cells_retried",
                        "cells that finished after a retry");
                wall_ms.record(static_cast<std::uint64_t>(secs * 1e3));
                cells_ok.inc();
                if (a > 1)
                    cells_retried.inc();
            }
            return cell;
        } catch (const std::exception& e) {
            last_secs = std::chrono::duration<double>(
                            std::chrono::steady_clock::now() - t0)
                            .count();
            obs::StatsRegistry::global().removePrefix(stats_prefix);
            last_error = e.what();
            warn("sweep cell %s failed (attempt %u/%u): %s",
                 label.c_str(), a, max_attempts, e.what());
            const auto* proc = dynamic_cast<const CellProcessError*>(&e);
            last_exit = JournalExit{};
            if (proc != nullptr) {
                switch (proc->result.end) {
                case SubprocessResult::End::Exited:
                    last_exit.kind = "exit";
                    last_exit.code = proc->result.exitCode;
                    break;
                case SubprocessResult::End::Signaled:
                    last_exit.kind = "signal";
                    last_exit.code = proc->result.termSignal;
                    break;
                case SubprocessResult::End::TimedOut:
                    last_exit.kind = "timeout";
                    last_exit.code = proc->result.termSignal;
                    break;
                }
            }
            if (progress != nullptr) {
                const auto* injected =
                    dynamic_cast<const FaultInjected*>(&e);
                if (injected != nullptr) {
                    progress->cellFault(cell_idx, injected->site(),
                                        injected->hit());
                }
                if (a < max_attempts)
                    progress->cellRetried(cell_idx, a + 1, last_error);
            }
            obs::PostmortemInfo pm;
            pm.reason = proc != nullptr &&
                        proc->result.end != SubprocessResult::End::Exited
                ? "cell_killed"
                : "cell_failed";
            pm.cell = label;
            pm.attempt = a;
            pm.error = last_error;
            if (proc != nullptr) {
                pm.signalName = proc->result.signalName;
                pm.stderrTail = proc->result.stderrTail;
            }
            obs::writePostmortem(opts.outDir + "/postmortem.json", pm);
        }
    }
    if (ledger.journal != nullptr) {
        ledger.journal->cellFailed(label, max_attempts, last_error,
                                   last_exit);
    }
    if (progress != nullptr)
        progress->cellFinished(cell_idx, false, last_secs, last_error);
    if (obs::metrics::enabled()) {
        static const obs::metrics::Counter cells_failed =
            obs::metrics::counter("sweep.cells_failed",
                                  "cells whose every attempt failed");
        cells_failed.inc();
    }
    CellOutput cell;
    cell.failed = true;
    cell.mw.name = label;
    cell.mw.status = "failed";
    cell.mw.attempts = max_attempts;
    cell.mw.error = last_error;
    return cell;
}

/**
 * The paper's combined cell: execute @p name once on @p cosim with every
 * configuration of the sweep passively attached, optionally recording or
 * fingerprinting the bus stream on the side.
 */
CellOutput
runCombinedCell(CoSimulation& cosim, const std::string& name,
                const PlatformParams& platform, const BenchOptions& opts)
{
    TRACE_SPAN("sweep", "workload");
    TRACE_INSTANT("sweep", "workload.start");

    auto workload = createWorkload(name, opts.scale);

    WorkloadConfig cfg;
    cfg.nThreads = platform.nCores;
    cfg.scale = opts.scale;
    cfg.seed = opts.seed;

    // Stream observers ride the bus alongside the emulators; capture
    // subsumes the digest (the writer fingerprints what it encodes).
    FrontSideBus& fsb = cosim.platform().fsb();
    std::unique_ptr<FsbCaptureSnooper> capture;
    std::unique_ptr<FsbDigestSnooper> digest;
    if (!opts.captureBase.empty()) {
        capture = std::make_unique<FsbCaptureSnooper>(
            captureMeta(name, platform, opts));
        fsb.attach(capture.get());
    } else if (!opts.digestFile.empty()) {
        digest = std::make_unique<FsbDigestSnooper>();
        fsb.attach(digest.get());
    }

    RunResult result = cosim.run(*workload, cfg);
    if (capture)
        fsb.detach(capture.get());
    if (digest)
        fsb.detach(digest.get());
    checkVerified(result, name, platform, opts);

    CellOutput cell;
    cell.guestExecutions = 1;
    fillWorkloadResult(cell, workload->name(), result);

    for (unsigned e = 0; e < cosim.nEmulators(); ++e)
        collectEmulator(cosim.emulator(e), cell.mw.name, platform.nCores,
                        cell);
    if (cosim.nEmulators() > 0)
        collectSamples(cosim.emulator(0), cell);

    if (capture) {
        FsbStreamWriter& writer = capture->writer();
        writer.setResult(result.totalInsts, result.verified);
        writer.writeFile(fsbStreamPath(opts.captureBase, name));
        noteCapture(cell, writer, capture->encodeSeconds());
    } else if (digest) {
        cell.hasDigest = true;
        cell.streamTxns = digest->txnCount();
        cell.streamDigest = digest->digest();
    }

    snapshotCellStats(cosim, "cell/" + cell.mw.name + "/");
    return cell;
}

/**
 * Combined replay cell: feed "<replayBase>.<name>.fsb" through every
 * attached configuration instead of executing the guest.
 */
CellOutput
replayCombinedCell(CoSimulation& cosim, const std::string& name,
                   const PlatformParams& platform, const BenchOptions& opts)
{
    TRACE_SPAN("sweep", "workload.replay");

    const std::string path = fsbStreamPath(opts.replayBase, name);
    ReplayResult details;
    RunResult result = cosim.replayFile(path, &details);
    warnStreamWorkload(details.meta, path, name);
    checkVerified(result, name, platform, opts);

    CellOutput cell;
    fillWorkloadResult(cell, name, result);

    for (unsigned e = 0; e < cosim.nEmulators(); ++e)
        collectEmulator(cosim.emulator(e), name, platform.nCores, cell);
    if (cosim.nEmulators() > 0)
        collectSamples(cosim.emulator(0), cell);

    noteReplay(cell, details);
    cell.hasDigest = true;
    cell.streamTxns = details.txns;
    cell.streamDigest = details.digest;

    snapshotCellStats(cosim, "cell/" + name + "/");
    return cell;
}

/**
 * Exec-mode cell: execute the guest with a *single* emulated
 * configuration attached -- one cell per (workload, configuration).
 * Only the first configuration's cell observes the stream (every cell
 * of a workload broadcasts identical traffic).
 */
CellOutput
runExecCell(const std::string& name, std::size_t config_index,
            const DragonheadParams& emu, const std::string& tick,
            const PlatformParams& platform, const BenchOptions& opts,
            obs::HeartbeatSlot* beat)
{
    TRACE_SPAN("sweep", "cell.exec");

    CoSimParams params;
    params.platform = platform;
    params.platform.dex.hostThreads = opts.dexThreads;
    params.platform.dex.degradeSerial = opts.degradeSerial;
    params.emulators = {emu};
    params.emulationThreads = opts.emuThreads;
    params.degradeToSerial = opts.degradeSerial;
    CoSimulation rig(params);
    rig.setHeartbeat(beat);

    auto workload = createWorkload(name, opts.scale);
    WorkloadConfig cfg;
    cfg.nThreads = platform.nCores;
    cfg.scale = opts.scale;
    cfg.seed = opts.seed;

    FrontSideBus& fsb = rig.platform().fsb();
    std::unique_ptr<FsbCaptureSnooper> capture;
    std::unique_ptr<FsbDigestSnooper> digest;
    if (config_index == 0 && !opts.captureBase.empty()) {
        capture = std::make_unique<FsbCaptureSnooper>(
            captureMeta(name, platform, opts));
        fsb.attach(capture.get());
    } else if (config_index == 0 && !opts.digestFile.empty()) {
        digest = std::make_unique<FsbDigestSnooper>();
        fsb.attach(digest.get());
    }

    RunResult result = rig.run(*workload, cfg);
    if (capture)
        fsb.detach(capture.get());
    if (digest)
        fsb.detach(digest.get());
    checkVerified(result, name, platform, opts);

    CellOutput cell;
    cell.guestExecutions = 1;
    fillWorkloadResult(cell, name, result);
    collectEmulator(rig.emulator(0), name, platform.nCores, cell);
    if (config_index == 0)
        collectSamples(rig.emulator(0), cell);

    if (capture) {
        FsbStreamWriter& writer = capture->writer();
        writer.setResult(result.totalInsts, result.verified);
        writer.writeFile(fsbStreamPath(opts.captureBase, name));
        noteCapture(cell, writer, capture->encodeSeconds());
    } else if (digest) {
        cell.hasDigest = true;
        cell.streamTxns = digest->txnCount();
        cell.streamDigest = digest->digest();
    }

    snapshotCellStats(rig, "cell/" + name + "/" + tick + "/");
    return cell;
}

/** Where a replay- or sampled-mode workload's stream comes from. */
struct WorkloadStream
{
    /** In-memory capture (null = file-backed via @ref path). */
    std::shared_ptr<const std::vector<std::uint8_t>> buffer;
    std::string path;
    /** Provenance label for in-memory replays. */
    std::string source;
    /** Bookkeeping of the capture execution (guest cost, digest). */
    CellOutput base;

    /** Sampled mode: the plan the config cells replay under. @{ */
    SamplingPlan plan;
    bool hasPlan = false;
    /** @} */

    /** Sampled mode: full-run reference counters from the profiling
     * pass, the denominator of the accuracy layer (absent when the
     * plan came from --plan and the stream from --replay: nothing was
     * profiled, so nothing can be compared). @{ */
    LlcResults ref;
    bool hasRef = false;
    /** @} */
};

/**
 * Replay-mode phase 1: execute @p name once with *no* emulators attached
 * and record its bus stream in memory (and to --capture files when
 * requested). With --replay the stream is already on disk and the guest
 * never runs.
 */
WorkloadStream
captureWorkloadStream(const std::string& name,
                      const PlatformParams& platform,
                      const BenchOptions& opts, obs::HeartbeatSlot* beat)
{
    WorkloadStream ws;
    if (!opts.replayBase.empty()) {
        ws.path = fsbStreamPath(opts.replayBase, name);
        return ws;
    }

    TRACE_SPAN("sweep", "cell.capture");

    CoSimParams params;
    params.platform = platform;
    params.platform.dex.hostThreads = opts.dexThreads;
    params.platform.dex.degradeSerial = opts.degradeSerial;
    CoSimulation rig(params);
    rig.setHeartbeat(beat);

    auto workload = createWorkload(name, opts.scale);
    WorkloadConfig cfg;
    cfg.nThreads = platform.nCores;
    cfg.scale = opts.scale;
    cfg.seed = opts.seed;

    FsbCaptureSnooper capture(captureMeta(name, platform, opts));
    rig.platform().fsb().attach(&capture);
    RunResult result = rig.run(*workload, cfg);
    rig.platform().fsb().detach(&capture);
    checkVerified(result, name, platform, opts);

    FsbStreamWriter& writer = capture.writer();
    writer.setResult(result.totalInsts, result.verified);
    writer.finish();
    if (!opts.captureBase.empty())
        writer.writeFile(fsbStreamPath(opts.captureBase, name));
    noteCapture(ws.base, writer, capture.encodeSeconds());
    ws.buffer = writer.share();
    ws.source = "memory:" + name;

    ws.base.guestExecutions = 1;
    fillWorkloadResult(ws.base, name, result);

    snapshotCellStats(rig, "cell/" + name + "/capture/");
    return ws;
}

/**
 * Sampled-mode phase 1: obtain the workload's stream *and* its sampling
 * plan. Unlike the replay-mode capture, the profiling rig runs with the
 * sweep's first configuration attached: its full-run counters are the
 * accuracy layer's reference, and its CB sample series is the
 * clustering input when no --plan file is given.
 */
WorkloadStream
profileSampledStream(const std::string& name,
                     const DragonheadParams& ref_emu,
                     const PlatformParams& platform,
                     const BenchOptions& opts, obs::HeartbeatSlot* beat)
{
    TRACE_SPAN("sweep", "cell.profile");

    WorkloadStream ws;

    CoSimParams params;
    params.platform = platform;
    params.platform.dex.hostThreads = opts.dexThreads;
    params.platform.dex.degradeSerial = opts.degradeSerial;
    params.emulators = {ref_emu};
    params.emulationThreads = opts.emuThreads;
    params.degradeToSerial = opts.degradeSerial;
    CoSimulation rig(params);
    rig.setHeartbeat(beat);

    if (!opts.replayBase.empty()) {
        // Stream already on disk: one full-detail replay through the
        // reference configuration recovers the sample series and the
        // reference counters without executing the guest.
        ws.path = fsbStreamPath(opts.replayBase, name);
        ReplayResult details;
        RunResult result = rig.replayFile(ws.path, &details);
        warnStreamWorkload(details.meta, ws.path, name);
        checkVerified(result, name, platform, opts);
        fillWorkloadResult(ws.base, name, result);
        noteReplay(ws.base, details);
        ws.base.hasDigest = true;
        ws.base.streamTxns = details.txns;
        ws.base.streamDigest = details.digest;
    } else {
        // Execute the guest once, recording the stream for the config
        // cells while the reference configuration emulates it in full.
        auto workload = createWorkload(name, opts.scale);
        WorkloadConfig cfg;
        cfg.nThreads = platform.nCores;
        cfg.scale = opts.scale;
        cfg.seed = opts.seed;

        FsbCaptureSnooper capture(captureMeta(name, platform, opts));
        rig.platform().fsb().attach(&capture);
        RunResult result = rig.run(*workload, cfg);
        rig.platform().fsb().detach(&capture);
        checkVerified(result, name, platform, opts);

        FsbStreamWriter& writer = capture.writer();
        writer.setResult(result.totalInsts, result.verified);
        writer.finish();
        if (!opts.captureBase.empty())
            writer.writeFile(fsbStreamPath(opts.captureBase, name));
        noteCapture(ws.base, writer, capture.encodeSeconds());
        ws.buffer = writer.share();
        ws.source = "memory:" + name;
        ws.base.guestExecutions = 1;
        fillWorkloadResult(ws.base, name, result);
    }

    ws.ref = rig.emulator(0).results();
    ws.hasRef = true;
    collectSamples(rig.emulator(0), ws.base);

    if (!opts.planBase.empty()) {
        const std::string path = planPath(opts.planBase, name);
        std::string error;
        if (!SamplingPlan::load(path, ws.plan, &error))
            throw std::runtime_error("plan " + path + ": " + error);
        if (ws.plan.samplePeriodUs !=
                static_cast<double>(ref_emu.cb.samplePeriodUs) ||
            ws.plan.coreFreqGhz != ref_emu.cb.coreFreqGhz) {
            warn("plan %s: window geometry (%g us @ %g GHz) differs "
                 "from the sweep's CB (%llu us @ %g GHz); intervals "
                 "will not align with the profiled windows",
                 path.c_str(), ws.plan.samplePeriodUs,
                 ws.plan.coreFreqGhz,
                 static_cast<unsigned long long>(
                     ref_emu.cb.samplePeriodUs),
                 ref_emu.cb.coreFreqGhz);
        }
    } else {
        ws.plan = makePlan(ws.base.cbSamples, name, ref_emu.cb, opts);
        if (!opts.planOutBase.empty()) {
            // writeFile throws IoError, so a bad path fails this cell,
            // not the whole sweep (see --keep-going).
            const std::string path = planPath(opts.planOutBase, name);
            ws.plan.writeFile(path);
            inform("plan: %s (%zu intervals, %.1f%% coverage)",
                   path.c_str(), ws.plan.intervals.size(),
                   100.0 * ws.plan.coverage());
        }
    }
    ws.hasPlan = true;

    snapshotCellStats(rig, "cell/" + name + "/profile/");
    return ws;
}

/**
 * Replay-mode phase 2: feed @p ws through a single-configuration rig --
 * one replay cell per (workload, configuration), freely parallel.
 */
CellOutput
replayConfigCell(const WorkloadStream& ws, const std::string& name,
                 std::size_t config_index, const DragonheadParams& emu,
                 const std::string& tick, const PlatformParams& platform,
                 const BenchOptions& opts, obs::HeartbeatSlot* beat)
{
    TRACE_SPAN("sweep", "cell.replay");

    CoSimParams params;
    params.platform = platform;
    params.emulators = {emu};
    params.emulationThreads = opts.emuThreads;
    params.degradeToSerial = opts.degradeSerial;
    CoSimulation rig(params);
    rig.setHeartbeat(beat);

    ReplayResult details;
    RunResult result = ws.buffer
        ? rig.replayBuffer(ws.buffer, ws.source, &details)
        : rig.replayFile(ws.path, &details);
    warnStreamWorkload(details.meta, ws.buffer ? ws.source : ws.path,
                       name);
    checkVerified(result, name, platform, opts);

    CellOutput cell;
    fillWorkloadResult(cell, name, result);
    collectEmulator(rig.emulator(0), name, platform.nCores, cell);
    if (config_index == 0)
        collectSamples(rig.emulator(0), cell);

    noteReplay(cell, details);
    if (config_index == 0 && !ws.base.hasDigest) {
        // File-backed replay: the reader's digest is the only
        // fingerprint this run computes.
        cell.hasDigest = true;
        cell.streamTxns = details.txns;
        cell.streamDigest = details.digest;
    }

    snapshotCellStats(rig, "cell/" + name + "/" + tick + "/");
    return cell;
}

/** Whole-run per-instruction metrics reconstructed from a plan and
 * one emulator's per-window sample series. */
struct SampledEstimate
{
    double mpki = 0.0;
    double apki = 0.0;
    double cpi = 0.0;
};

SampledEstimate
estimateFromSamples(const SamplingPlan& plan,
                    const std::vector<Sample>& samples)
{
    // Ratio-of-extrapolated-counts estimator: scale each phase's
    // representative window *counts* by the phase's window share, then
    // take metric ratios once at the end. Averaging per-window ratios
    // instead would need every numerator's denominator to land in the
    // same window -- but instruction deltas arrive in whole DEX quanta,
    // so at fine sample periods a window's insts are lumpy while its
    // cycle span is fixed, and a weighted mean of cycles/insts inflates
    // CPI. Summing first cancels the lumping: neighbouring windows of a
    // phase mis-attribute insts to each other, not out of the phase.
    SampledEstimate est;
    double insts = 0, cycles = 0, misses = 0, accesses = 0;
    for (const PlanInterval& iv : plan.intervals) {
        if (iv.window >= samples.size())
            continue; // stream shorter than the profile; ratios still ok
        const Sample& s = samples[iv.window];
        insts += iv.weight * static_cast<double>(s.insts);
        cycles += iv.weight * static_cast<double>(s.cycles);
        misses += iv.weight * static_cast<double>(s.misses);
        accesses += iv.weight * static_cast<double>(s.accesses);
    }
    if (insts <= 0.0)
        return est;
    est.mpki = 1000.0 * misses / insts;
    est.apki = 1000.0 * accesses / insts;
    est.cpi = cycles / insts;
    return est;
}

/**
 * Sampled-mode phase 2: one gated replay per *workload* with every
 * sweep configuration attached. The stream is decoded once and
 * broadcast to all emulators (the expensive part of a sampled pass is
 * the decode, so a per-configuration decomposition would pay it
 * nEmulators times for identical traffic); each representative
 * window's CB sample then holds a warm-started, uncontaminated detail
 * delta per configuration, and whole-run MPKI/APKI/CPI are
 * reconstructed per configuration as instruction-weighted sums over
 * those deltas, scaled back to absolute counts by the exact
 * instruction total.
 */
CellOutput
sampledWorkloadCell(CoSimulation& rig, const WorkloadStream& ws,
                    const std::string& name,
                    const PlatformParams& platform,
                    const BenchOptions& opts)
{
    TRACE_SPAN("sweep", "cell.sampled");

    ReplayResult details;
    SampledReplayStats sstats;
    RunResult result = ws.buffer
        ? rig.replaySampledBuffer(ws.buffer, ws.source, ws.plan, &sstats,
                                  &details, opts.sampledWarming,
                                  opts.warmStride)
        : rig.replaySampledFile(ws.path, ws.plan, &sstats, &details,
                                opts.sampledWarming, opts.warmStride);
    warnStreamWorkload(details.meta, ws.buffer ? ws.source : ws.path,
                       name);
    checkVerified(result, name, platform, opts);

    CellOutput cell;
    fillWorkloadResult(cell, name, result);

    for (unsigned e = 0; e < rig.nEmulators(); ++e) {
        const Dragonhead& dh = rig.emulator(e);
        const LlcResults totals = dh.results();
        const SampledEstimate est =
            estimateFromSamples(ws.plan, dh.samples());

        SweepPoint point;
        point.workload = name;
        point.nCores = platform.nCores;
        point.llcSize = dh.params().llc.size;
        point.lineSize = dh.params().llc.lineSize;
        point.insts = totals.insts;
        const double kinsts = static_cast<double>(totals.insts) / 1000.0;
        point.llcMisses =
            static_cast<std::uint64_t>(est.mpki * kinsts + 0.5);
        point.llcAccesses =
            static_cast<std::uint64_t>(est.apki * kinsts + 0.5);
        cell.series.push_back(point.mpki());
        cell.points.push_back(point);
        cell.mw.mpkiPerConfig.push_back(point.mpki());

        if (e > 0)
            continue;
        collectSamples(dh, cell);

        obs::ManifestSampling& smp = cell.mw.sampling;
        smp.active = true;
        smp.intervals = ws.plan.intervals.size();
        smp.totalWindows = ws.plan.totalWindows;
        smp.warmupQuanta = ws.plan.warmupWindows;
        smp.coverage = ws.plan.coverage();
        smp.estCpi = est.cpi;
        smp.estMpki = est.mpki;
        smp.estApki = est.apki;
        // Only the first configuration has a reference: the profiling
        // pass ran with the sweep's first emulator attached.
        if (ws.hasRef && ws.ref.insts > 0) {
            const double finsts = static_cast<double>(ws.ref.insts);
            smp.hasError = true;
            smp.fullMpki = ws.ref.mpki();
            smp.fullApki =
                1000.0 * static_cast<double>(ws.ref.accesses) / finsts;
            smp.fullCpi = static_cast<double>(ws.ref.cycles) / finsts;
            smp.errMpki = relErr(est.mpki, smp.fullMpki);
            smp.errApki = relErr(est.apki, smp.fullApki);
            smp.errCpi = relErr(est.cpi, smp.fullCpi);
            // DRAM traffic is misses x line size on both sides, so its
            // relative error reduces to the absolute-miss-count error.
            smp.errDram =
                relErr(est.mpki * static_cast<double>(totals.insts),
                       smp.fullMpki * finsts);
        }
    }

    noteReplay(cell, details);
    if (!ws.base.hasDigest) {
        cell.hasDigest = true;
        cell.streamTxns = details.txns;
        cell.streamDigest = details.digest;
    }

    if (obs::metrics::enabled()) {
        static const obs::metrics::Counter sampled_cells =
            obs::metrics::counter("sweep.sampled_cells",
                                  "sampled replay cells completed");
        static const obs::metrics::Counter sampled_delivered =
            obs::metrics::counter(
                "sweep.sampled_txns_delivered",
                "data transactions delivered inside detail windows");
        static const obs::metrics::Counter sampled_warmed =
            obs::metrics::counter(
                "sweep.sampled_txns_warmed",
                "data transactions delivered warm-only outside detail "
                "windows");
        static const obs::metrics::Counter sampled_skipped =
            obs::metrics::counter(
                "sweep.sampled_txns_skipped",
                "data transactions fast-forwarded past");
        static const obs::metrics::Counter sampled_intervals =
            obs::metrics::counter(
                "sweep.sampled_intervals",
                "representative intervals reached by sampled replays");
        sampled_cells.inc();
        sampled_delivered.add(sstats.dataDelivered);
        sampled_warmed.add(sstats.dataWarmed);
        sampled_skipped.add(sstats.dataSkipped);
        sampled_intervals.add(sstats.intervalsReached);
    }

    snapshotCellStats(rig, "cell/" + name + "/sampled/");
    return cell;
}

/**
 * Emit one "sampled_skip" progress event per fast-forwarded window span
 * of @p plan (the complement of the merged warm-up + interval ranges),
 * so a live viewer can see what the sweep did *not* simulate.
 */
void
emitSkipEvents(obs::SweepProgress& progress, const std::string& name,
               const SamplingPlan& plan)
{
    std::vector<std::pair<std::uint64_t, std::uint64_t>> ranges;
    for (const PlanInterval& iv : plan.intervals) {
        const std::uint64_t lo =
            iv.window -
            std::min<std::uint64_t>(plan.warmupWindows, iv.window);
        if (!ranges.empty() && lo <= ranges.back().second + 1)
            ranges.back().second =
                std::max(ranges.back().second, iv.window);
        else
            ranges.emplace_back(lo, iv.window);
    }
    std::uint64_t next = 0;
    auto emit = [&](std::uint64_t from, std::uint64_t to) {
        if (to <= from)
            return;
        progress.event("sampled_skip",
                       "\"workload\":" + obs::json::quote(name) +
                           ",\"from\":" + std::to_string(from) +
                           ",\"to\":" + std::to_string(to - 1) +
                           ",\"windows\":" + std::to_string(to - from));
    };
    for (const auto& r : ranges) {
        emit(next, r.first);
        next = r.second + 1;
    }
    emit(next, plan.totalWindows);
}

/** Fold one workload's per-configuration cells into a figure row. */
CellOutput
mergeWorkloadCells(const std::string& name, const CellOutput* base,
                   std::vector<CellOutput>& configs)
{
    // Outcome first: any failed constituent fails the whole workload
    // row (a partial series would silently shift the figure's x axis).
    bool any_failed = base != nullptr && base->failed;
    bool any_retried = base != nullptr && base->mw.status == "retried";
    std::uint64_t attempts = base ? base->mw.attempts : 1;
    std::string error = base ? base->mw.error : "";
    for (const CellOutput& c : configs) {
        any_failed = any_failed || c.failed;
        any_retried = any_retried || c.mw.status == "retried";
        attempts = std::max(attempts, c.mw.attempts);
        if (error.empty())
            error = c.mw.error;
    }
    if (any_failed) {
        CellOutput merged;
        merged.failed = true;
        merged.mw.name = name;
        merged.mw.status = "failed";
        merged.mw.attempts = attempts;
        merged.mw.error = error;
        return merged;
    }

    CellOutput merged;
    merged.mw.name = name;
    merged.mw.status = any_retried ? "retried" : "ok";
    merged.mw.attempts = attempts;

    const CellOutput& first = base ? *base : configs.front();
    merged.mw.totalInsts = first.mw.totalInsts;
    merged.mw.verified = first.mw.verified;
    merged.mw.replayedFrom = configs.front().mw.replayedFrom;
    merged.mw.seriesTimeUs = configs.front().mw.seriesTimeUs;
    merged.mw.seriesMpki = configs.front().mw.seriesMpki;
    // The first configuration's cell carries the workload's sampling
    // record (it is the one with a reference) and its CB series.
    merged.mw.sampling = configs.front().mw.sampling;
    merged.cbSamples = configs.front().cbSamples;
    if (merged.cbSamples.empty() && base != nullptr)
        merged.cbSamples = base->cbSamples;

    double host = 0.0;
    if (base) {
        host += base->mw.hostSeconds;
        merged.guestExecutions += base->guestExecutions;
        merged.captureTxns += base->captureTxns;
        merged.captureBytes += base->captureBytes;
        merged.captureSeconds += base->captureSeconds;
        if (base->hasDigest) {
            merged.hasDigest = true;
            merged.streamTxns = base->streamTxns;
            merged.streamDigest = base->streamDigest;
        }
    }
    for (CellOutput& c : configs) {
        host += c.mw.hostSeconds;
        merged.guestExecutions += c.guestExecutions;
        merged.captureTxns += c.captureTxns;
        merged.captureBytes += c.captureBytes;
        merged.captureSeconds += c.captureSeconds;
        merged.replayTxns += c.replayTxns;
        merged.replayBytes += c.replayBytes;
        merged.replaySeconds += c.replaySeconds;
        merged.series.insert(merged.series.end(), c.series.begin(),
                             c.series.end());
        merged.points.insert(merged.points.end(),
                             std::make_move_iterator(c.points.begin()),
                             std::make_move_iterator(c.points.end()));
        merged.mw.mpkiPerConfig.insert(merged.mw.mpkiPerConfig.end(),
                                       c.mw.mpkiPerConfig.begin(),
                                       c.mw.mpkiPerConfig.end());
        if (!merged.hasDigest && c.hasDigest) {
            merged.hasDigest = true;
            merged.streamTxns = c.streamTxns;
            merged.streamDigest = c.streamDigest;
        }
    }
    merged.mw.hostSeconds = host;
    merged.mw.simMips = host > 0.0
        ? static_cast<double>(merged.mw.totalInsts) / 1e6 / host
        : 0.0;
    return merged;
}

/**
 * --run-cell=<label> child re-entry: run exactly that cell's body,
 * serialize the result (cosim-cell-result/1) to --cell-result, and
 * exit without returning. Labels mirror the parent's: "<workload>"
 * (combined), "<workload>/<tick>" (exec / file-backed replay), and
 * "<workload>/sampled". The parent owns every sweep-level concern --
 * journal, retries, watchdog, run artifacts -- so a failure here just
 * prints one recognizable stderr line and exits non-zero; the parent
 * turns the tail into the cell's error.
 */
[[noreturn]] void
runCellChild(const PlatformParams& platform,
             const std::vector<DragonheadParams>& emulators,
             const std::vector<std::string>& ticks,
             const BenchOptions& opts)
{
    const std::string& label = opts.runCell;
    try {
        // Parent-injected self-destruct (see runIsolatedCell): crash
        // before doing any work, or go silent long enough for the
        // parent's watchdog to shoot us.
        if (opts.selfDestruct == "segv") {
            std::raise(SIGSEGV);
        } else if (opts.selfDestruct.rfind("stall:", 0) == 0) {
            const double secs = std::atof(opts.selfDestruct.c_str() + 6);
            std::this_thread::sleep_for(
                std::chrono::duration<double>(secs));
        }

        // Liveness flows to the parent through the inherited pipe fd;
        // without one the slot is a harmless local sink.
        obs::HeartbeatSlot beat;
        if (opts.heartbeatFd >= 0)
            beat.bindPipe(opts.heartbeatFd);

        CellOutput cell;
        const std::size_t slash = label.find('/');
        if (slash == std::string::npos) {
            // Combined cell: the label is the workload name.
            CoSimParams params;
            params.platform = platform;
            params.platform.dex.hostThreads = opts.dexThreads;
            params.platform.dex.degradeSerial = opts.degradeSerial;
            params.emulators = emulators;
            params.emulationThreads = opts.emuThreads;
            params.degradeToSerial = opts.degradeSerial;
            CoSimulation rig(params);
            rig.setHeartbeat(&beat);
            cell = opts.replayBase.empty()
                ? runCombinedCell(rig, label, platform, opts)
                : replayCombinedCell(rig, label, platform, opts);
        } else {
            const std::string name = label.substr(0, slash);
            const std::string sub = label.substr(slash + 1);
            if (sub == "sampled") {
                // Isolation requires file-backed streams and plans
                // (parseBenchArgs enforces it), so phase 1 never runs
                // in a child and both inputs are on disk.
                WorkloadStream ws;
                ws.path = fsbStreamPath(opts.replayBase, name);
                const std::string ppath = planPath(opts.planBase, name);
                std::string perr;
                if (!SamplingPlan::load(ppath, ws.plan, &perr)) {
                    throw std::runtime_error("plan " + ppath + ": " +
                                             perr);
                }
                ws.hasPlan = true;
                CoSimParams params;
                params.platform = platform;
                params.emulators = emulators;
                params.emulationThreads = opts.emuThreads;
                params.degradeToSerial = opts.degradeSerial;
                params.fsbBatchTxns = 4096;
                CoSimulation rig(params);
                rig.setHeartbeat(&beat);
                cell = sampledWorkloadCell(rig, ws, name, platform,
                                           opts);
            } else {
                std::size_t c = ticks.size();
                for (std::size_t i = 0; i < ticks.size(); ++i) {
                    if (ticks[i] == sub) {
                        c = i;
                        break;
                    }
                }
                if (c == ticks.size()) {
                    throw std::runtime_error("unknown cell '" + label +
                                             "'");
                }
                if (opts.cells == CellMode::Replay) {
                    WorkloadStream ws;
                    ws.path = fsbStreamPath(opts.replayBase, name);
                    cell = replayConfigCell(ws, name, c, emulators[c],
                                            ticks[c], platform, opts,
                                            &beat);
                } else {
                    cell = runExecCell(name, c, emulators[c], ticks[c],
                                       platform, opts, &beat);
                }
            }
        }

        cell.mw.status = "ok";
        cell.mw.attempts = 1;
        writeFileAtomic(opts.cellResultFile,
                        renderCellResult(cell, "cell/" + label + "/"));
        std::exit(0);
    } catch (const std::exception& e) {
        // One line the parent's stderr tail turns into the cell error.
        std::fprintf(stderr, "cosim-cell-error: %s\n", e.what());
        std::exit(1);
    }
}

/**
 * Exec, replay and sampled decompositions, scheduled across --jobs
 * host threads. Exec and replay run one cell per (workload,
 * configuration); replay mode first obtains a stream per workload
 * (phase 1), then replays it through every configuration (phase 2).
 * Sampled mode also stages, but its phase 2 is one gated replay per
 * workload with all configurations attached (see sampledWorkloadCell).
 */
std::vector<CellOutput>
runPerConfigCells(const BenchOptions& opts, const PlatformParams& platform,
                  const std::vector<DragonheadParams>& emulators,
                  const std::vector<std::string>& ticks,
                  const SweepLedger& ledger,
                  obs::SweepProgress* progress)
{
    const std::size_t n_w = opts.workloads.size();
    const std::size_t n_c = emulators.size();
    const bool replay = opts.cells == CellMode::Replay;
    const bool sampled = opts.cells == CellMode::Sampled;
    const bool staged = replay || sampled;
    // Phase-2 cells per workload: sampled mode broadcasts one decode
    // to every configuration instead of replaying per configuration.
    const std::size_t n_pc = sampled ? 1 : n_c;
    // Replay mode needs a phase-1 cell when the stream is not on disk;
    // sampled mode also when the plan must be clustered (or the error
    // baseline profiled) from a full pass.
    const bool profile_phase =
        (replay && opts.replayBase.empty()) ||
        (sampled &&
         (opts.replayBase.empty() || opts.planBase.empty()));
    const char* phase1 = sampled ? "/profile" : "/capture";

    // Register every row up front so the live view shows the whole
    // sweep (pending cells included) from the first tick.
    std::vector<std::size_t> cap_rows(n_w, 0);
    std::vector<std::size_t> cfg_rows(n_w * n_pc, 0);
    if (progress != nullptr) {
        if (profile_phase) {
            for (std::size_t w = 0; w < n_w; ++w) {
                cap_rows[w] =
                    progress->addCell(opts.workloads[w] + phase1);
            }
        }
        for (std::size_t w = 0; w < n_w; ++w) {
            for (std::size_t c = 0; c < n_pc; ++c) {
                cfg_rows[w * n_pc + c] = progress->addCell(
                    sampled ? opts.workloads[w] + "/sampled"
                            : opts.workloads[w] + "/" + ticks[c]);
            }
        }
    }

    std::vector<WorkloadStream> streams(staged ? n_w : 0);
    if (staged && !profile_phase) {
        // File-backed: no guest execution, just resolve paths (and, in
        // sampled mode, load the plan -- --plan with --replay skips the
        // profiling pass entirely, at the price of the error baseline).
        // Unreadable or corrupt streams surface per config cell below.
        for (std::size_t w = 0; w < n_w; ++w) {
            const std::string& name = opts.workloads[w];
            streams[w].path = fsbStreamPath(opts.replayBase, name);
            if (!sampled)
                continue;
            const std::string path = planPath(opts.planBase, name);
            std::string error;
            if (SamplingPlan::load(path, streams[w].plan, &error)) {
                streams[w].hasPlan = true;
            } else {
                // Fail the workload's config cells, not the sweep.
                streams[w].base.failed = true;
                streams[w].base.mw.name = name + phase1;
                streams[w].base.mw.status = "failed";
                streams[w].base.mw.error =
                    "plan " + path + ": " + error;
            }
        }
    }
    // The capture/profile execution is a cell of its own: if it fails,
    // the workload's config cells are skipped (they would replay a
    // stream that does not exist), not crashed into.
    auto capture_task = [&](std::size_t w) {
        const std::string& name = opts.workloads[w];
        WorkloadStream ws;
        // Phase-1 outputs live in memory (stream buffer, plan, error
        // reference) and cannot cross a process boundary or be reloaded
        // on resume, so these cells never journal or isolate -- the
        // argument validation in parseBenchArgs keeps this phase off
        // entirely under --isolate-cells / --journal by requiring
        // file-backed streams.
        ws.base = runGuardedCell(
            name + phase1, "cell/" + name + phase1 + "/", opts,
            SweepLedger{}, progress, cap_rows[w],
            [&](unsigned, obs::HeartbeatSlot* beat) {
                ws = sampled
                    ? profileSampledStream(name, emulators.front(),
                                           platform, opts, beat)
                    : captureWorkloadStream(name, platform, opts, beat);
                return ws.base;
            });
        return ws;
    };
    if (staged && profile_phase && !sampled) {
        // Replay mode: every configuration cell consumes the stream,
        // so the capture phase is a barrier ahead of all of them.
        const unsigned jobs = static_cast<unsigned>(
            std::min<std::size_t>(opts.jobs, std::max<std::size_t>(n_w,
                                                                   1)));
        if (jobs > 1) {
            ThreadPool pool(jobs);
            std::vector<std::future<WorkloadStream>> futures;
            futures.reserve(n_w);
            for (std::size_t w = 0; w < n_w; ++w) {
                futures.push_back(pool.submit([&capture_task, w] {
                    return capture_task(w);
                }));
            }
            for (std::size_t w = 0; w < n_w; ++w)
                streams[w] = futures[w].get();
        } else {
            for (std::size_t w = 0; w < n_w; ++w)
                streams[w] = capture_task(w);
        }
    }

    const std::size_t n_flat = n_w * n_pc;
    const unsigned jobs = static_cast<unsigned>(
        std::min<std::size_t>(opts.jobs, std::max<std::size_t>(n_flat,
                                                               1)));

    // Sampled phase-2 rigs. The broadcast rig (every configuration
    // attached) is the most expensive rig in the harness to build, so
    // a serial sweep with no isolation requirement builds one and
    // reuses it across workloads -- replays reset the emulators at
    // entry, so results are identical either way. Parallel sweeps and
    // --keep-going / --retry-cells isolate per cell, exactly as
    // combined mode does (a poisoned rig must not leak into the next
    // cell).
    CoSimParams sampled_params;
    std::vector<std::unique_ptr<CoSimulation>> sampled_rigs;
    bool sampled_isolate = true;
    if (sampled) {
        sampled_params.platform = platform;
        sampled_params.emulators = emulators;
        sampled_params.emulationThreads = opts.emuThreads;
        sampled_params.degradeToSerial = opts.degradeSerial;
        // Broadcast delivery to every configuration is the cell's hot
        // loop; batch the bus so each emulator takes whole chunks
        // (Dragonhead::observeBatch) instead of a virtual call per
        // transaction per snooper.
        sampled_params.fsbBatchTxns = 4096;
        sampled_isolate =
            jobs > 1 || opts.keepGoing || opts.retryCells > 0;
        sampled_rigs.resize(sampled_isolate ? n_w : 1);
    }

    auto run_one = [&](std::size_t w, std::size_t c) {
        const std::string& name = opts.workloads[w];
        const std::string label =
            sampled ? name + "/sampled" : name + "/" + ticks[c];
        if (sampled && profile_phase) {
            // A workload's stream feeds only its own broadcast cell, so
            // the profile runs fused in the same task -- a barrier
            // between the phases would serialize the sweep on its
            // slowest profile for no consumer.
            streams[w] = capture_task(w);
        }
        if (staged && streams[w].base.failed) {
            CellOutput cell;
            cell.failed = true;
            cell.mw.name = label;
            cell.mw.status = "failed";
            cell.mw.attempts =
                std::max<std::uint64_t>(streams[w].base.mw.attempts, 1);
            cell.mw.error = (sampled ? "profile failed: "
                                     : "capture failed: ") +
                            streams[w].base.mw.error;
            if (progress != nullptr) {
                progress->cellFinished(cfg_rows[w * n_pc + c], false, 0.0,
                                       cell.mw.error);
            }
            return cell;
        }
        return runGuardedCell(
            label, "cell/" + label + "/", opts, ledger, progress,
            cfg_rows[w * n_pc + c],
            [&, w, c](unsigned attempt_no, obs::HeartbeatSlot* beat) {
                if (sampled) {
                    std::unique_ptr<CoSimulation>& rig =
                        sampled_rigs[sampled_isolate ? w : 0];
                    if (rig == nullptr ||
                        (sampled_isolate && attempt_no > 1)) {
                        // Lazy build (and rebuild on retry, since the
                        // failed attempt may have poisoned the rig);
                        // the construction interval must not read as
                        // watchdog silence.
                        if (beat != nullptr)
                            beat->pulse();
                        rig = std::make_unique<CoSimulation>(
                            sampled_params);
                        if (beat != nullptr)
                            beat->watch().skipGap();
                    }
                    rig->setHeartbeat(beat);
                    return sampledWorkloadCell(*rig, streams[w], name,
                                               platform, opts);
                }
                return replay
                    ? replayConfigCell(streams[w], name, c, emulators[c],
                                       ticks[c], platform, opts, beat)
                    : runExecCell(name, c, emulators[c], ticks[c],
                                  platform, opts, beat);
            });
    };

    std::vector<CellOutput> flat(n_flat);
    if (jobs > 1) {
        ThreadPool pool(jobs);
        std::vector<std::future<CellOutput>> futures;
        futures.reserve(n_flat);
        for (std::size_t w = 0; w < n_w; ++w) {
            for (std::size_t c = 0; c < n_pc; ++c) {
                futures.push_back(
                    pool.submit([&run_one, w, c] { return run_one(w, c); }));
            }
        }
        for (std::size_t i = 0; i < n_flat; ++i)
            flat[i] = futures[i].get();
    } else {
        for (std::size_t w = 0; w < n_w; ++w) {
            for (std::size_t c = 0; c < n_pc; ++c) {
                debug("sweep cell %s (%zu/%zu)",
                      opts.workloads[w].c_str(), w * n_pc + c + 1,
                      n_flat);
                flat[w * n_pc + c] = run_one(w, c);
            }
        }
    }

    // Narrate what the sampled sweep fast-forwarded past, one event
    // per skipped window span (emitted here, after the cells, so the
    // stream's ordering is deterministic).
    if (sampled && progress != nullptr) {
        for (std::size_t w = 0; w < n_w; ++w) {
            if (streams[w].hasPlan && !streams[w].base.failed)
                emitSkipEvents(*progress, opts.workloads[w],
                               streams[w].plan);
        }
    }

    std::vector<CellOutput> cells;
    cells.reserve(n_w);
    for (std::size_t w = 0; w < n_w; ++w) {
        std::vector<CellOutput> configs(
            std::make_move_iterator(flat.begin() + w * n_pc),
            std::make_move_iterator(flat.begin() + (w + 1) * n_pc));
        const CellOutput* base =
            profile_phase ? &streams[w].base : nullptr;
        cells.push_back(mergeWorkloadCells(opts.workloads[w], base,
                                           configs));
    }
    return cells;
}

} // namespace

FigureData
SweepRunner::runFigure(const std::string& figure_id,
                       const PlatformParams& platform,
                       const std::vector<DragonheadParams>& emulators_in,
                       const std::vector<std::string>& ticks)
{
    // --sample-period-us: retime every configuration's CB window. The
    // override applies to profiling and sampled replay alike, so plan
    // windows keep aligning with the CB sample series they index.
    std::vector<DragonheadParams> emulators = emulators_in;
    if (opts_.samplePeriodUs != 0) {
        for (DragonheadParams& emu : emulators)
            emu.cb.samplePeriodUs = opts_.samplePeriodUs;
    }

    // --run-cell child re-entry: by the time the figure's parameters
    // are fully resolved (retiming included) the child runs exactly one
    // cell body against them and exits -- it never reaches the sweep
    // machinery below.
    if (!opts_.runCell.empty())
        runCellChild(platform, emulators, ticks, opts_);

    FigureData figure(figure_id, "cache configuration", ticks);

    obs::TraceSession& trace = obs::TraceSession::global();
    bool own_trace = !opts_.traceFile.empty() && !trace.active();
    if (own_trace)
        trace.start();

    const std::size_t n_cells = opts_.workloads.size();

    // Whatever kills this run -- a failed cell, a fatal() in an
    // artifact writer -- a postmortem lands next to the run artifacts.
    obs::installFatalPostmortem(opts_.outDir + "/postmortem.json");

    // Live telemetry. Declared before the rigs vector below so cells'
    // heartbeat slots outlive every rig that publishes into them.
    std::unique_ptr<obs::SweepProgress> progress;
    if (opts_.progress || !opts_.progressFile.empty()) {
        obs::SweepProgress::Options popts;
        popts.tty = opts_.progress;
        popts.file = opts_.progressFile;
        try {
            progress = std::make_unique<obs::SweepProgress>(popts);
        } catch (const IoError& e) {
            fatal("progress: %s", e.what());
        }
    }
    std::size_t total_cells = n_cells;
    if (opts_.cells == CellMode::Exec ||
        opts_.cells == CellMode::Replay) {
        total_cells = n_cells * emulators.size();
    }
    if (opts_.cells != CellMode::Combined) {
        // Mirrors runPerConfigCells' phase-1 registration (sampled
        // phase 2 is one broadcast cell per workload, already counted).
        const bool profile_phase =
            (opts_.cells == CellMode::Replay &&
             opts_.replayBase.empty()) ||
            (opts_.cells == CellMode::Sampled &&
             (opts_.replayBase.empty() || opts_.planBase.empty()));
        if (profile_phase)
            total_cells += n_cells;
    }

    // Crash safety: the write-ahead journal, and -- when resuming --
    // the verified results of cells an interrupted sweep already
    // finished. A "done" journal record is only trusted after its
    // artifact re-digests to the recorded FNV *and* parses back into a
    // CellOutput; anything less (deleted artifact, torn write, stale
    // "running" entry) silently re-runs the cell.
    std::unique_ptr<SweepJournal> journal;
    std::map<std::string, CellOutput> resumed_cells;
    std::atomic<std::uint64_t> resume_skipped{0};
    SweepLedger ledger;
    if (!opts_.journalFile.empty()) {
        const std::uint64_t config_digest =
            sweepConfigDigest(figure_id, platform, opts_, ticks);
        ensureOutputDir(opts_.outDir + "/cells");
        std::uint64_t next_seq = 0;
        const bool resuming = !opts_.resumeFrom.empty();
        if (resuming) {
            JournalState js;
            std::string jerr;
            fatal_if(!JournalState::load(opts_.resumeFrom, &js, &jerr),
                     "resume: %s", jerr.c_str());
            fatal_if(js.configDigest != config_digest,
                     "resume: journal '%s' records a different sweep "
                     "configuration (digest %llu, this run %llu); "
                     "refusing to mix sweeps",
                     opts_.resumeFrom.c_str(),
                     static_cast<unsigned long long>(js.configDigest),
                     static_cast<unsigned long long>(config_digest));
            // Repair a torn tail before appending: the fragment of the
            // interrupted final record must not concatenate with the
            // first record this run writes.
            if (opts_.journalFile == opts_.resumeFrom &&
                ::truncate(opts_.resumeFrom.c_str(),
                           static_cast<off_t>(js.validBytes)) != 0) {
                fatal("resume: cannot repair journal tail '%s'",
                      opts_.resumeFrom.c_str());
            }
            for (const auto& entry : js.cells) {
                const JournalCell& jc = entry.second;
                if (jc.state != "done" && jc.state != "skipped")
                    continue;
                std::uint64_t digest = 0;
                std::uint64_t bytes = 0;
                std::string text;
                CellOutput cell;
                std::string perr;
                if (!digestFileFnv(jc.artifact, &digest, &bytes) ||
                    digest != jc.artifactDigest ||
                    bytes != jc.artifactBytes ||
                    !readWholeFile(jc.artifact, &text) ||
                    !parseCellResult(text, &cell, &perr)) {
                    warn("resume: artifact for cell '%s' does not "
                         "verify; re-running it",
                         entry.first.c_str());
                    continue;
                }
                resumed_cells.emplace(entry.first, std::move(cell));
            }
            next_seq = js.nextSeq;
        }
        try {
            journal = std::make_unique<SweepJournal>(opts_.journalFile,
                                                     next_seq);
        } catch (const IoError& e) {
            fatal("journal: %s", e.what());
        }
        if (next_seq == 0) {
            journal->sweepPlan(figure_id, config_digest, total_cells);
        } else {
            journal->resumed(
                resumed_cells.size(),
                total_cells - std::min(total_cells,
                                       resumed_cells.size()));
        }
        ledger.journal = journal.get();
        if (resuming)
            ledger.resumed = &resumed_cells;
        ledger.skipped = &resume_skipped;
    }

    if (progress != nullptr) {
        if (opts_.cells == CellMode::Combined) {
            // Row i is workload i; per-config modes register their own
            // rows inside runPerConfigCells.
            for (const std::string& name : opts_.workloads)
                progress->addCell(name);
        }
        progress->start();
        progress->event("sweep_start",
                        "\"figure\":" + obs::json::quote(figure_id) +
                            ",\"cells\":" + std::to_string(total_cells));
    }

    obs::RunManifest manifest;
    manifest.figureId = figure_id;
    manifest.platform = platform.name;
    manifest.nCores = platform.nCores;
    manifest.scale = opts_.scale;
    manifest.seed = opts_.seed;
    manifest.seedSource = opts_.seedSource;
    manifest.configTicks = ticks;
    manifest.cellMode = toString(opts_.cells);
    manifest.isolatedCells = opts_.isolateCells;
    manifest.journalPath = opts_.journalFile;
    manifest.resumed = !opts_.resumeFrom.empty();

    // Combined mode keeps its rigs alive to the end of the figure so
    // the unprefixed final-rig stats view stays valid.
    std::vector<std::unique_ptr<CoSimulation>> rigs;

    auto wall0 = std::chrono::steady_clock::now();
    std::vector<CellOutput> cells;
    if (opts_.cells == CellMode::Combined) {
        CoSimParams params;
        params.platform = platform;
        params.platform.dex.hostThreads = opts_.dexThreads;
        params.platform.dex.degradeSerial = opts_.degradeSerial;
        params.emulators = emulators;
        params.emulationThreads = opts_.emuThreads;
        params.degradeToSerial = opts_.degradeSerial;

        const unsigned jobs = static_cast<unsigned>(
            std::min<std::size_t>(opts_.jobs,
                                  std::max<std::size_t>(n_cells, 1)));

        // One rig per cell when cells run in parallel or must fail
        // independently (--keep-going / --retry-cells: a poisoned rig
        // must not leak into the next cell); a single reused rig (the
        // original behaviour) when serial. Workload executions never
        // share simulator state either way -- the platform resets per
        // run -- so the modes produce identical results. Isolated rigs
        // are built lazily *inside* their cell so parallel sweeps do
        // not serialise n_cells rig constructions up front -- each
        // worker thread pays for (and times) its own cell's rig.
        // Under --isolate-cells no in-process rig ever runs (the cell
        // bodies execute in child processes), so the lazy vector stays
        // all-null and the unprefixed final-rig stats view below is
        // simply absent -- the per-cell prefixed stats carry the data.
        const bool isolate = opts_.isolateCells || jobs > 1 ||
                             opts_.keepGoing || opts_.retryCells > 0;
        if (isolate) {
            rigs.resize(n_cells); // filled per cell, inside run_cell
        } else {
            rigs.reserve(1);
            rigs.push_back(std::make_unique<CoSimulation>(params));
        }
        manifest.hostJobs = jobs;
        manifest.emulationThreads =
            (opts_.emuThreads == 0 || emulators.empty())
                ? 0
                : static_cast<unsigned>(std::min<std::size_t>(
                      opts_.emuThreads, emulators.size()));
        manifest.dexThreads = opts_.dexThreads;

        const bool replay = !opts_.replayBase.empty();
        auto run_cell = [&](std::size_t i) {
            const std::string& name = opts_.workloads[i];
            return runGuardedCell(
                name, "cell/" + name + "/", opts_, ledger,
                progress.get(), i,
                [&, i](unsigned attempt_no, obs::HeartbeatSlot* beat) {
                    std::unique_ptr<CoSimulation>& rig =
                        rigs[isolate ? i : 0];
                    if (isolate && (rig == nullptr || attempt_no > 1)) {
                        // First attempt: lazy per-cell construction (see
                        // above). Retry: the failed attempt may have
                        // poisoned the rig (a dead emulation worker
                        // stays dead), so rebuild on a fresh one.
                        // Close any preceding silence honestly before
                        // the build starts; the construction interval
                        // itself is excised below.
                        if (beat != nullptr)
                            beat->pulse();
                        std::uint64_t t0 = hostClockNowUs();
                        rig = std::make_unique<CoSimulation>(params);
                        if (obs::metrics::enabled()) {
                            static const obs::metrics::Histogram setup_ms =
                                obs::metrics::histogram(
                                    "sweep.cell_setup_ms",
                                    "per-cell rig construction wall "
                                    "milliseconds");
                            setup_ms.record((hostClockNowUs() - t0) /
                                            1000);
                        }
                        // Construction emits no heartbeats and its wall
                        // time is already accounted for above, so it
                        // must not read as watchdog silence.
                        if (beat != nullptr)
                            beat->watch().skipGap();
                    }
                    rig->setHeartbeat(beat);
                    return replay
                        ? replayCombinedCell(*rig, name, platform, opts_)
                        : runCombinedCell(*rig, name, platform, opts_);
                });
        };
        cells.resize(n_cells);
        if (jobs > 1) {
            // Only the aggregation below touches shared state; each cell
            // owns its rig and its workload.
            ThreadPool pool(jobs);
            std::vector<std::future<CellOutput>> futures;
            futures.reserve(n_cells);
            for (std::size_t i = 0; i < n_cells; ++i) {
                futures.push_back(
                    pool.submit([&run_cell, i] { return run_cell(i); }));
            }
            for (std::size_t i = 0; i < n_cells; ++i)
                cells[i] = futures[i].get();
        } else {
            for (std::size_t i = 0; i < n_cells; ++i) {
                debug("sweep %s: starting %s (%zu/%zu)",
                      figure_id.c_str(), opts_.workloads[i].c_str(),
                      i + 1, n_cells);
                cells[i] = run_cell(i);
            }
        }
    } else {
        manifest.hostJobs = opts_.jobs;
        manifest.emulationThreads = opts_.emuThreads;
        manifest.dexThreads = opts_.dexThreads;
        cells = runPerConfigCells(opts_, platform, emulators, ticks,
                                  ledger, progress.get());
    }
    manifest.wallSeconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      wall0)
            .count();

    // Close the progress stream before printing the summary (and
    // before a failed cell can fatal() past the destructors): the
    // counts are workload rows, matching the summary below.
    if (progress != nullptr) {
        std::size_t n_ok = 0;
        std::size_t n_failed = 0;
        for (const CellOutput& c : cells)
            (c.failed ? n_failed : n_ok) += 1;
        progress->event("sweep_finish",
                        "\"ok\":" + std::to_string(n_ok) +
                            ",\"failed\":" + std::to_string(n_failed));
        progress->stop();
        if (!opts_.progressFile.empty())
            inform("progress: %s", opts_.progressFile.c_str());
    }
    if (journal != nullptr) {
        std::size_t n_ok = 0;
        std::size_t n_failed = 0;
        for (const CellOutput& c : cells)
            (c.failed ? n_failed : n_ok) += 1;
        journal->sweepDone(n_ok, n_failed);
    }

    // Aggregate in workload order regardless of completion order, so the
    // figure, manifest and digest outputs are deterministic.
    double host_sum = 0.0;
    bool any_failed = false;
    std::string first_error;
    DigestManifest digests;
    for (std::size_t i = 0; i < n_cells; ++i) {
        CellOutput& cell = cells[i];
        if (cell.failed) {
            const std::string& name = opts_.workloads[i];
            if (cell.mw.name.empty())
                cell.mw.name = name;
            // Drop whatever the failed cell registered before dying so
            // the stats dump never carries a half-populated namespace.
            obs::StatsRegistry::global().removePrefix("cell/" + name +
                                                      "/");
            manifest.workloads.push_back(cell.mw);
            figure.addFailedSeries(name, cell.mw.status);
            if (!any_failed)
                first_error = cell.mw.error;
            any_failed = true;
            std::printf("  %-9s FAILED after %llu attempt(s): %s  "
                        "[%zu/%zu]\n", name.c_str(),
                        static_cast<unsigned long long>(cell.mw.attempts),
                        cell.mw.error.c_str(), i + 1, n_cells);
            continue;
        }
        host_sum += cell.mw.hostSeconds;
        manifest.guestExecutions += cell.guestExecutions;
        manifest.captureTxns += cell.captureTxns;
        manifest.captureBytes += cell.captureBytes;
        manifest.captureSeconds += cell.captureSeconds;
        manifest.replayTxns += cell.replayTxns;
        manifest.replayBytes += cell.replayBytes;
        manifest.replaySeconds += cell.replaySeconds;
        if (cell.hasDigest)
            digests.add(cell.mw.name, cell.streamTxns, cell.streamDigest);
        manifest.workloads.push_back(cell.mw);
        figure.addSeries(cell.mw.name, cell.series,
                         std::move(cell.points));
        figure.setStatus(cell.mw.name, cell.mw.status);
        if (cell.mw.sampling.active && cell.mw.sampling.hasError)
            figure.setSamplingError(cell.mw.name,
                                    cell.mw.sampling.errMpki);
        std::printf("  %-9s %8.1fM inst  %6.2fs host  %5.1f MIPS  "
                    "verified=%s%s  [%zu/%zu]\n", cell.mw.name.c_str(),
                    static_cast<double>(cell.mw.totalInsts) / 1e6,
                    cell.mw.hostSeconds, cell.mw.simMips,
                    cell.mw.verified ? "yes" : "NO",
                    cell.mw.replayedFrom.empty() ? "" : "  replayed",
                    i + 1, n_cells);
        if (cell.mw.sampling.active) {
            const obs::ManifestSampling& s = cell.mw.sampling;
            if (s.hasError) {
                std::printf("            sampled: %llu intervals, "
                            "%.1f%% coverage, mpki err %.2f%%\n",
                            static_cast<unsigned long long>(s.intervals),
                            100.0 * s.coverage, 100.0 * s.errMpki);
            } else {
                std::printf("            sampled: %llu intervals, "
                            "%.1f%% coverage (no reference)\n",
                            static_cast<unsigned long long>(s.intervals),
                            100.0 * s.coverage);
            }
        }
    }
    manifest.hostSpeedup = manifest.wallSeconds > 0.0
        ? host_sum / manifest.wallSeconds
        : 0.0;

    // A failed cell without --keep-going fails the run *before* any
    // artifact is written: a nonzero exit must never leave behind a
    // stats dump or manifest that looks like a completed figure.
    if (any_failed && !opts_.keepGoing) {
        fatal("sweep %s: cell failed: %s (use --keep-going to finish "
              "the healthy cells)", figure_id.c_str(),
              first_error.c_str());
    }

    // --plan-out from a full-detail run: cluster every workload's CB
    // series into a sampling plan for later --cells=sampled sweeps.
    // (Sampled mode writes its plans during the profiling phase
    // instead, where generation is cell-isolated.)
    if (!opts_.planOutBase.empty() &&
        opts_.cells != CellMode::Sampled && !emulators.empty()) {
        for (const CellOutput& cell : cells) {
            if (cell.failed)
                continue;
            if (cell.cbSamples.empty()) {
                warn("plan-out: %s recorded no CB samples; skipped",
                     cell.mw.name.c_str());
                continue;
            }
            SamplingPlan plan = makePlan(cell.cbSamples, cell.mw.name,
                                         emulators.front().cb, opts_);
            const std::string path =
                planPath(opts_.planOutBase, cell.mw.name);
            try {
                plan.writeFile(path);
            } catch (const IoError& e) {
                fatal("plan-out: %s", e.what());
            }
            inform("plan: %s (%zu intervals, %.1f%% coverage)",
                   path.c_str(), plan.intervals.size(),
                   100.0 * plan.coverage());
        }
    }

    // Publish the rig's component stats and the host profile through the
    // uniform registry dumpers. In combined mode the last rig's live
    // counters are registered -- the same "state after the final
    // workload" view the reused serial rig exposes; per-config modes
    // rely on the frozen cell/<workload>/<config>/ snapshots instead.
    obs::StatsRegistry& registry = obs::StatsRegistry::global();
    // Lazily built cells can leave trailing null slots (e.g. a cell
    // that failed before its rig was constructed): register the last
    // rig that actually exists.
    for (auto it = rigs.rbegin(); it != rigs.rend(); ++it) {
        if (*it != nullptr) {
            (*it)->registerStats(registry);
            break;
        }
    }
    registry.add(obs::HostProfiler::global().statsGroup());
    if (obs::metrics::enabled()) {
        // Telemetry scalars (counter values, histogram count/sum/mean)
        // ride the same dumpers as every other stats group.
        registry.add(
            obs::metrics::Registry::global().statsGroup("metrics"));
    }

    if (manifest.captureTxns > 0) {
        stats::Group g("capture");
        const double txns = static_cast<double>(manifest.captureTxns);
        const double bytes = static_cast<double>(manifest.captureBytes);
        const double secs = manifest.captureSeconds;
        g.add("txns", [txns] { return txns; });
        g.add("bytes", [bytes] { return bytes; });
        g.add("encode_seconds", [secs] { return secs; });
        registry.add(std::move(g));
    }
    if (manifest.replayTxns > 0) {
        stats::Group g("replay");
        const double txns = static_cast<double>(manifest.replayTxns);
        const double bytes = static_cast<double>(manifest.replayBytes);
        const double secs = manifest.replaySeconds;
        g.add("txns", [txns] { return txns; });
        g.add("bytes", [bytes] { return bytes; });
        g.add("seconds", [secs] { return secs; });
        registry.add(std::move(g));
    }

    if (!opts_.statsFile.empty()) {
        registry.writeFile(opts_.statsFile);
        inform("stats: %s", opts_.statsFile.c_str());
    }

    if (!opts_.digestFile.empty()) {
        fatal_if(digests.entries.empty(),
                 "--digest=%s: no stream digests were computed",
                 opts_.digestFile.c_str());
        digests.writeFile(opts_.digestFile);
        inform("digests: %s", opts_.digestFile.c_str());
    }

    if (!opts_.metricsFile.empty()) {
        try {
            writeFileAtomic(opts_.metricsFile,
                            obs::metrics::renderOpenMetrics(
                                obs::metrics::Registry::global()
                                    .snapshot()));
        } catch (const IoError& e) {
            fatal("metrics: %s", e.what());
        }
        inform("metrics: %s", opts_.metricsFile.c_str());
    }

    const obs::HostProfiler& prof = obs::HostProfiler::global();
    for (const auto& p : prof.phases())
        manifest.hostPhases.push_back({p.name, p.seconds, p.calls});
    manifest.hostSimMips = prof.simulatedMips();
    manifest.resumeSkipped =
        resume_skipped.load(std::memory_order_relaxed);
    if (!opts_.manifestFile.empty()) {
        manifest.writeJson(opts_.manifestFile);
        inform("manifest: %s", opts_.manifestFile.c_str());
    }

    if (own_trace) {
        trace.stop();
        trace.writeJson(opts_.traceFile);
        inform("trace: %s (%zu events)", opts_.traceFile.c_str(),
               trace.eventCount());
    }
    return figure;
}

FigureData
SweepRunner::runCacheSizeFigure(const std::string& figure_id,
                                const PlatformParams& platform)
{
    std::vector<std::string> ticks;
    for (std::uint64_t size : presets::llcSizeSweep())
        ticks.push_back(formatSize(size));
    return runFigure(figure_id, platform,
                     presets::llcSizeSweepEmulators(), ticks);
}

FigureData
SweepRunner::runLineSizeFigure(const std::string& figure_id,
                               const PlatformParams& platform)
{
    std::vector<std::string> ticks;
    for (std::uint32_t line : presets::lineSizeSweep())
        ticks.push_back(formatSize(line));
    return runFigure(figure_id, platform,
                     presets::lineSizeSweepEmulators(), ticks);
}

} // namespace cosim
