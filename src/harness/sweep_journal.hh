/**
 * @file
 * Write-ahead journal for crash-safe sweeps (`cosim-journal/1`).
 *
 * A sweep that runs for hours must survive being killed: the journal
 * records every cell state transition *before* the runner acts on it,
 * so `--resume=<journal>` can reconstruct exactly which cells finished
 * and re-run only the rest. One JSONL file, one record per line,
 * appended through base/atomic_file.hh's DurableAppendFile (O_APPEND +
 * single write() + fdatasync), so a record is either fully on disk or
 * absent -- never torn, even across a power cut.
 *
 * Record vocabulary (all carry "seq" and "t_us"; seq is dense and
 * continues across resume):
 *
 *   sweep_plan   schema, figure, config_digest, cells   (first record)
 *   planned      cell
 *   running      cell, attempt, pid      (pid 0 = in-process cell)
 *   done         cell, attempts, artifact, bytes, digest
 *   failed       cell, attempts, error, exit_kind, exit_code
 *   resume       skipped, rerun          (appended by --resume)
 *   resume_skip  cell
 *   sweep_done   ok, failed
 *
 * `config_digest` fingerprints the sweep configuration (figure,
 * platform, scale, seed, workloads, cell mode, ticks); --resume
 * refuses a journal whose digest does not match, so two different
 * sweeps can never be mixed. `digest` is FNV-1a64 over the cell's
 * result-artifact bytes, serialized as a decimal *string* (a 64-bit
 * value does not survive a JSON double round-trip).
 *
 * Failure discipline mirrors the progress stream: the journal protects
 * the sweep, so it must never kill it. A write failure (including the
 * seeded "journal.write.fail" fault site) warns once and turns the
 * journal off; healthy() reports the degradation.
 *
 * `cosim_inspect journal` validates schema, seq density, and per-cell
 * state-machine consistency; see examples/cosim_inspect.cpp.
 */

#ifndef COSIM_HARNESS_SWEEP_JOURNAL_HH
#define COSIM_HARNESS_SWEEP_JOURNAL_HH

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "base/annotations.hh"
#include "base/atomic_file.hh"
#include "base/mutex.hh"

namespace cosim {

inline constexpr const char* kJournalSchema = "cosim-journal/1";

/** FNV-1a 64-bit over @p n bytes; the journal's artifact fingerprint. */
std::uint64_t fnv1a64(const void* data, std::size_t n);

/** FNV-1a64 + size of a file's bytes. @return false when unreadable. */
bool digestFileFnv(const std::string& path, std::uint64_t* digest,
                   std::uint64_t* bytes);

/** How a failed cell ended, for the journal's `failed` record. */
struct JournalExit
{
    std::string kind = "error"; ///< "error"|"exit"|"signal"|"timeout"
    int code = 0;               ///< exit code or signal number
};

/** Appender side; see file comment. Thread-safe. */
class SweepJournal
{
  public:
    /**
     * Opens @p path for appending. @p next_seq seeds the sequence
     * counter: 0 truncates and starts a fresh journal; a resume passes
     * JournalState::nextSeq so numbering stays dense across the gap.
     * @throws IoError when the file cannot be opened.
     */
    explicit SweepJournal(const std::string& path,
                          std::uint64_t next_seq = 0);

    SweepJournal(const SweepJournal&) = delete;
    SweepJournal& operator=(const SweepJournal&) = delete;

    void sweepPlan(const std::string& figure,
                   std::uint64_t config_digest, std::size_t cells)
        EXCLUDES(mutex_);
    void cellPlanned(const std::string& cell) EXCLUDES(mutex_);
    void cellRunning(const std::string& cell, unsigned attempt, int pid)
        EXCLUDES(mutex_);
    void cellDone(const std::string& cell, unsigned attempts,
                  const std::string& artifact, std::uint64_t bytes,
                  std::uint64_t digest) EXCLUDES(mutex_);
    void cellFailed(const std::string& cell, unsigned attempts,
                    const std::string& error, const JournalExit& how)
        EXCLUDES(mutex_);
    void resumed(std::size_t skipped, std::size_t rerun)
        EXCLUDES(mutex_);
    void resumeSkip(const std::string& cell) EXCLUDES(mutex_);
    void sweepDone(std::size_t ok, std::size_t failed) EXCLUDES(mutex_);

    /** False once a write has failed and the journal shut itself off. */
    bool healthy() const EXCLUDES(mutex_);

    const std::string& path() const { return file_.path(); }

  private:
    bool append(const std::string& event, const std::string& fields)
        EXCLUDES(mutex_);

    mutable Mutex mutex_;
    DurableAppendFile file_;
    std::uint64_t seq_ GUARDED_BY(mutex_);
    bool failed_ GUARDED_BY(mutex_) = false;
};

/** Latest journaled state of one cell (reader side). */
struct JournalCell
{
    std::string state; ///< "planned"|"running"|"done"|"failed"|"skipped"
    unsigned attempts = 0;
    int pid = 0;
    std::string artifact;
    std::uint64_t artifactBytes = 0;
    std::uint64_t artifactDigest = 0;
    std::string error;
};

/**
 * Reader side: replays a journal into per-cell latest state. A torn
 * final line (no trailing newline: the append that was interrupted) is
 * ignored; any other malformed record is an error.
 */
struct JournalState
{
    std::uint64_t nextSeq = 0; ///< seq for the next appended record
    /** Byte length of the valid prefix (through the last complete,
     * newline-terminated record). A resume truncates the file here
     * before appending, so a torn tail cannot concatenate with the
     * first new record. */
    std::uint64_t validBytes = 0;
    std::string figure;
    std::uint64_t configDigest = 0;
    bool sawPlan = false;
    /** Journal order, first appearance. */
    std::vector<std::pair<std::string, JournalCell>> cells;

    const JournalCell* find(const std::string& cell) const;

    static bool load(const std::string& path, JournalState* out,
                     std::string* error);
};

} // namespace cosim

#endif // COSIM_HARNESS_SWEEP_JOURNAL_HH
