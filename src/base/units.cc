#include "base/units.hh"

#include <cctype>
#include <cstdlib>

#include "base/logging.hh"

namespace cosim {

std::string
formatSize(std::uint64_t bytes)
{
    if (bytes >= GiB && bytes % GiB == 0)
        return std::to_string(bytes / GiB) + "GB";
    if (bytes >= MiB && bytes % MiB == 0)
        return std::to_string(bytes / MiB) + "MB";
    if (bytes >= KiB && bytes % KiB == 0)
        return std::to_string(bytes / KiB) + "KB";
    return std::to_string(bytes) + "B";
}

std::uint64_t
parseSize(const std::string& text)
{
    fatal_if(text.empty(), "empty size string");

    std::size_t pos = 0;
    while (pos < text.size() &&
           (std::isdigit(static_cast<unsigned char>(text[pos])) != 0)) {
        ++pos;
    }
    fatal_if(pos == 0, "size string '%s' has no leading digits",
             text.c_str());

    std::uint64_t value = std::strtoull(text.substr(0, pos).c_str(),
                                        nullptr, 10);

    std::string suffix;
    for (std::size_t i = pos; i < text.size(); ++i) {
        char c = text[i];
        if (c == ' ')
            continue;
        suffix += static_cast<char>(
            std::toupper(static_cast<unsigned char>(c)));
    }

    if (suffix.empty() || suffix == "B")
        return value;
    if (suffix == "K" || suffix == "KB" || suffix == "KIB")
        return value * KiB;
    if (suffix == "M" || suffix == "MB" || suffix == "MIB")
        return value * MiB;
    if (suffix == "G" || suffix == "GB" || suffix == "GIB")
        return value * GiB;

    fatal("unrecognized size suffix in '%s'", text.c_str());
}

} // namespace cosim
