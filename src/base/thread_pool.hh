/**
 * @file
 * Fixed-size host worker pool.
 *
 * The paper's Dragonhead board ran its four CC FPGAs concurrently; the
 * software reproduction regains that parallelism on the host with plain
 * worker threads. The pool is deliberately simple and deterministic:
 * tasks are dispatched strictly FIFO in submission order (with a single
 * worker the pool degenerates to serial in-order execution, which the
 * determinism tests exploit), results and exceptions propagate through
 * std::future, and the destructor drains every queued task before
 * joining, so no submitted work is ever silently dropped.
 */

#ifndef COSIM_BASE_THREAD_POOL_HH
#define COSIM_BASE_THREAD_POOL_HH

#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

#include "base/annotations.hh"
#include "base/mutex.hh"

namespace cosim {

/** See file comment. */
class ThreadPool
{
  public:
    /** Spawn @p n_threads workers (fatal on 0). */
    explicit ThreadPool(unsigned n_threads);

    /** Drains the queue (every submitted task runs), then joins. */
    ~ThreadPool();

    ThreadPool(const ThreadPool&) = delete;
    ThreadPool& operator=(const ThreadPool&) = delete;

    /**
     * Queue @p fn for execution. Tasks start in submission order. The
     * returned future carries the result or the thrown exception.
     */
    template <typename F>
    auto submit(F&& fn) -> std::future<std::invoke_result_t<std::decay_t<F>>>
    {
        using R = std::invoke_result_t<std::decay_t<F>>;
        // packaged_task is move-only; std::function needs copyable, so
        // the task rides behind a shared_ptr.
        auto task =
            std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
        std::future<R> fut = task->get_future();
        enqueue([task] { (*task)(); });
        return fut;
    }

    /** Block until every task submitted so far has finished. */
    void wait();

    unsigned size() const { return static_cast<unsigned>(workers_.size()); }

    /** Queued-but-not-started tasks (diagnostic). */
    std::size_t queuedTasks() const;

    /** std::thread::hardware_concurrency() with a floor of 1. */
    static unsigned hardwareThreads();

  private:
    void enqueue(std::function<void()> task);
    void workerLoop();

    mutable Mutex mutex_;
    CondVar taskReady_;
    CondVar idle_;
    std::deque<std::function<void()>> tasks_ GUARDED_BY(mutex_);
    /** Populated in the constructor, joined in the destructor; never
     * touched by the workers themselves, so not lock-protected. */
    std::vector<std::thread> workers_;
    std::size_t inFlight_ GUARDED_BY(mutex_) = 0; ///< queued + running
    bool stopping_ GUARDED_BY(mutex_) = false;
};

} // namespace cosim

#endif // COSIM_BASE_THREAD_POOL_HH
