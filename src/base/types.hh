/**
 * @file
 * Fundamental scalar types used throughout the co-simulation framework.
 */

#ifndef COSIM_BASE_TYPES_HH
#define COSIM_BASE_TYPES_HH

#include <cstdint>

namespace cosim {

/** A simulated physical address. */
using Addr = std::uint64_t;

/** Identifier of a (virtual) core on the simulated CMP. */
using CoreId = std::uint16_t;

/** A count of simulated clock cycles. */
using Cycles = std::uint64_t;

/** A count of retired instructions. */
using InstCount = std::uint64_t;

/** A count of simulated picoseconds (used by the sampling clock). */
using Tick = std::uint64_t;

/** Marker for "no core" / broadcast on the bus. */
constexpr CoreId invalidCoreId = 0xffff;

/** Marker for an invalid address. */
constexpr Addr invalidAddr = ~static_cast<Addr>(0);

} // namespace cosim

#endif // COSIM_BASE_TYPES_HH
