#include "base/random.hh"

#include <cmath>

#include "base/logging.hh"

namespace cosim {

namespace {

std::uint64_t
splitmix64(std::uint64_t& x)
{
    x += 0x9e3779b97f4a7c15ull;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(std::uint64_t seed)
    : seed_(seed)
{
    std::uint64_t x = seed;
    for (auto& word : s_)
        word = splitmix64(x);
}

std::uint64_t
Rng::next()
{
    std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    std::uint64_t t = s_[1] << 17;

    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);

    return result;
}

std::uint64_t
Rng::nextBounded(std::uint64_t bound)
{
    panic_if(bound == 0, "nextBounded(0) is undefined");
    // Lemire's multiply-shift bounded generation (slightly biased for huge
    // bounds, irrelevant for synthetic workload data).
    return static_cast<std::uint64_t>(
        (static_cast<unsigned __int128>(next()) * bound) >> 64);
}

std::int64_t
Rng::nextRange(std::int64_t lo, std::int64_t hi)
{
    panic_if(lo > hi, "nextRange with lo > hi");
    std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
    return lo + static_cast<std::int64_t>(nextBounded(span));
}

double
Rng::nextDouble()
{
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double
Rng::nextGaussian(double mean, double stddev)
{
    if (haveSpareGauss_) {
        haveSpareGauss_ = false;
        return mean + stddev * spareGauss_;
    }
    double u, v, s;
    do {
        u = 2.0 * nextDouble() - 1.0;
        v = 2.0 * nextDouble() - 1.0;
        s = u * u + v * v;
    } while (s >= 1.0 || s == 0.0);
    double mul = std::sqrt(-2.0 * std::log(s) / s);
    spareGauss_ = v * mul;
    haveSpareGauss_ = true;
    return mean + stddev * u * mul;
}

std::uint64_t
Rng::nextZipf(std::uint64_t n, double s)
{
    panic_if(n == 0, "nextZipf over empty domain");
    // Inverse-CDF approximation: continuous power-law sample mapped onto
    // ranks. Accurate enough for skewing synthetic item popularity.
    double u = nextDouble();
    if (s <= 0.0)
        return nextBounded(n);
    double one_minus_s = 1.0 - s;
    double x;
    if (std::fabs(one_minus_s) < 1e-9) {
        x = std::pow(static_cast<double>(n), u);
    } else {
        double max_cdf = std::pow(static_cast<double>(n), one_minus_s);
        x = std::pow(u * (max_cdf - 1.0) + 1.0, 1.0 / one_minus_s);
    }
    // x lies in [1, n]; rank 0 must be the most popular item.
    if (x < 1.0)
        x = 1.0;
    std::uint64_t rank = static_cast<std::uint64_t>(x - 1.0);
    if (rank >= n)
        rank = n - 1;
    return rank;
}

bool
Rng::nextBool(double p)
{
    return nextDouble() < p;
}

} // namespace cosim
