#include "base/flight_recorder.hh"

#include <algorithm>
#include <atomic>
#include <memory>

#include "base/host_clock.hh"
#include "base/mutex.hh"

namespace cosim {

namespace {

/** One pre-allocated event slot. Every field is its own atomic so a
 * concurrent dump never constitutes a data race; seq==0 marks the slot
 * empty (and is cleared first while the owner rewrites it, so a torn
 * read is at worst dropped, never miscounted). */
struct Slot
{
    std::atomic<std::uint64_t> seq{0};
    std::atomic<std::uint64_t> tUs{0};
    std::atomic<std::uint64_t> a{0};
    std::atomic<std::uint64_t> b{0};
    std::atomic<const char*> site{nullptr};
    std::atomic<std::uint16_t> kind{0};
};

struct Ring
{
    std::atomic<std::uint64_t> head{0};
    Slot slots[FlightRecorder::kEventsPerThread];
    std::string label; // written/read under Registry::mutex only
};

/** Owns every ring ever created; rings outlive their threads so a
 * post-mortem can still explain what a dead worker was doing. */
struct Registry
{
    Mutex mutex;
    std::vector<std::shared_ptr<Ring>> rings;
    std::atomic<std::uint64_t> nextSeq{1};
};

Registry&
registry()
{
    // Leaked: threads may record during static destruction.
    static Registry* reg = new Registry; // cosim-analyze: allow(no-raw-new)
    return *reg;
}

std::atomic<bool> g_enabled{true};

Ring&
localRing()
{
    thread_local std::shared_ptr<Ring> ring = [] {
        auto r = std::make_shared<Ring>();
        Registry& reg = registry();
        LockGuard lock(reg.mutex);
        reg.rings.push_back(r);
        return r;
    }();
    return *ring;
}

} // namespace

const char*
frKindName(FrKind kind)
{
    switch (kind) {
      case FrKind::None:
        return "none";
      case FrKind::Mark:
        return "mark";
      case FrKind::ChunkPublished:
        return "chunk_published";
      case FrKind::ChunkEmulated:
        return "chunk_emulated";
      case FrKind::WorkerDied:
        return "worker_died";
      case FrKind::FaultArmed:
        return "fault_armed";
      case FrKind::FaultFired:
        return "fault_fired";
      case FrKind::PhaseEnter:
        return "phase_enter";
      case FrKind::PhaseExit:
        return "phase_exit";
      case FrKind::CellAttempt:
        return "cell_attempt";
      case FrKind::CellDone:
        return "cell_done";
    }
    return "unknown";
}

void
FlightRecorder::note(FrKind kind, const char* site, std::uint64_t a,
                     std::uint64_t b)
{
    if (!g_enabled.load(std::memory_order_relaxed))
        return;
    Ring& ring = localRing();
    std::uint64_t head = ring.head.load(std::memory_order_relaxed);
    Slot& slot = ring.slots[head % kEventsPerThread];
    slot.seq.store(0, std::memory_order_relaxed);
    slot.tUs.store(hostClockNowUs(), std::memory_order_relaxed);
    slot.kind.store(static_cast<std::uint16_t>(kind),
                    std::memory_order_relaxed);
    slot.site.store(site, std::memory_order_relaxed);
    slot.a.store(a, std::memory_order_relaxed);
    slot.b.store(b, std::memory_order_relaxed);
    slot.seq.store(
        registry().nextSeq.fetch_add(1, std::memory_order_relaxed),
        std::memory_order_relaxed);
    ring.head.store(head + 1, std::memory_order_release);
}

void
FlightRecorder::setThreadLabel(const std::string& label)
{
    Ring& ring = localRing(); // registers before taking the lock
    Registry& reg = registry();
    LockGuard lock(reg.mutex);
    ring.label = label;
}

void
FlightRecorder::setEnabled(bool on)
{
    g_enabled.store(on, std::memory_order_relaxed);
}

bool
FlightRecorder::enabled()
{
    return g_enabled.load(std::memory_order_relaxed);
}

std::vector<FlightRecorder::ThreadDump>
FlightRecorder::dumpAll()
{
    Registry& reg = registry();
    std::vector<ThreadDump> out;
    LockGuard lock(reg.mutex);
    out.reserve(reg.rings.size());
    for (const auto& ring : reg.rings) {
        ThreadDump dump;
        dump.label = ring->label;
        std::uint64_t head = ring->head.load(std::memory_order_acquire);
        std::uint64_t n = std::min<std::uint64_t>(head, kEventsPerThread);
        dump.events.reserve(static_cast<std::size_t>(n));
        for (std::uint64_t i = 0; i < n; ++i) {
            const Slot& slot =
                ring->slots[(head - n + i) % kEventsPerThread];
            FrEvent ev;
            ev.seq = slot.seq.load(std::memory_order_relaxed);
            if (ev.seq == 0)
                continue; // owner is mid-rewrite; drop this slot
            ev.tUs = slot.tUs.load(std::memory_order_relaxed);
            ev.kind = static_cast<FrKind>(
                slot.kind.load(std::memory_order_relaxed));
            ev.site = slot.site.load(std::memory_order_relaxed);
            ev.a = slot.a.load(std::memory_order_relaxed);
            ev.b = slot.b.load(std::memory_order_relaxed);
            dump.events.push_back(ev);
        }
        out.push_back(std::move(dump));
    }
    return out;
}

void
FlightRecorder::reset()
{
    Registry& reg = registry();
    LockGuard lock(reg.mutex);
    for (const auto& ring : reg.rings) {
        for (auto& slot : ring->slots)
            slot.seq.store(0, std::memory_order_relaxed);
        ring->head.store(0, std::memory_order_relaxed);
        ring->label.clear();
    }
    reg.nextSeq.store(1, std::memory_order_relaxed);
}

} // namespace cosim
