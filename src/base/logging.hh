/**
 * @file
 * gem5-style status/error reporting: panic, fatal, warn, inform, debug.
 *
 * panic()  - an internal invariant was violated (simulator bug); aborts.
 * fatal()  - the user asked for something impossible (bad config); exits 1.
 * warn()   - something is suspicious but simulation continues.
 * inform() - plain status output.
 * debug()  - developer tracing; compiled out in release (NDEBUG) builds.
 *
 * Runtime verbosity: the COSIM_LOG environment variable ("debug", "info",
 * "warn", or "quiet") sets the minimum severity that reaches the handler;
 * the default is "info" (debug messages suppressed). Fatal and Panic are
 * never filtered. All levels go through the installable LogHandler, so
 * tests and embedding tools can capture everything.
 */

#ifndef COSIM_BASE_LOGGING_HH
#define COSIM_BASE_LOGGING_HH

#include <cstdarg>
#include <string>

namespace cosim {

/** Severity of a log message, least severe first. */
enum class LogLevel { Debug, Info, Warn, Fatal, Panic };

/**
 * Hook invoked for every log message. Tests install their own hook to
 * assert on emitted diagnostics; the default prints to stderr/stdout and,
 * for Fatal/Panic, terminates the process.
 */
using LogHandler = void (*)(LogLevel level, const std::string& msg);

/** Replace the process-wide log handler; returns the previous one. */
LogHandler setLogHandler(LogHandler handler);

/**
 * Last-gasp hook run by fatal() after the message is formatted but
 * before the handler and exit(1). The post-mortem writer installs one
 * to dump the flight recorder next to run.json, so even fatal artifact
 * failures leave an explained corpse. The hook must not throw and must
 * not call fatal() itself; a recursion guard makes a nested fatal()
 * skip the hook rather than loop.
 */
using FatalHook = void (*)(const std::string& msg);

/** Replace the process-wide fatal hook (nullptr disables); returns the
 * previous one. */
FatalHook setFatalHook(FatalHook hook);

/**
 * Minimum severity delivered to the handler. Initialized lazily from
 * COSIM_LOG ("debug" | "info" | "warn" | "quiet"); defaults to Info.
 */
LogLevel logVerbosity();

/** Override the verbosity (wins over COSIM_LOG); returns the previous. */
LogLevel setLogVerbosity(LogLevel level);

/**
 * Emit a formatted message at the given level (printf formatting).
 * Messages below logVerbosity() are dropped; Fatal/Panic never are.
 */
void logMessage(LogLevel level, const char* fmt, ...)
    __attribute__((format(printf, 2, 3)));

/** Report an unrecoverable internal error and abort. */
[[noreturn]] void panicImpl(const char* file, int line, const char* fmt, ...)
    __attribute__((format(printf, 3, 4)));

/** Report an unrecoverable user/configuration error and exit(1). */
[[noreturn]] void fatalImpl(const char* file, int line, const char* fmt, ...)
    __attribute__((format(printf, 3, 4)));

} // namespace cosim

#define panic(...) ::cosim::panicImpl(__FILE__, __LINE__, __VA_ARGS__)
#define fatal(...) ::cosim::fatalImpl(__FILE__, __LINE__, __VA_ARGS__)
#define warn(...) ::cosim::logMessage(::cosim::LogLevel::Warn, __VA_ARGS__)
#define inform(...) ::cosim::logMessage(::cosim::LogLevel::Info, __VA_ARGS__)

/**
 * Developer tracing. Compiled to nothing in release (NDEBUG) builds so
 * hot paths can debug() freely; in debug builds the message still only
 * reaches the handler when COSIM_LOG=debug (or setLogVerbosity(Debug)).
 */
#ifdef NDEBUG
#define debug(...)                                                           \
    do {                                                                     \
    } while (0)
#else
#define debug(...) ::cosim::logMessage(::cosim::LogLevel::Debug, __VA_ARGS__)
#endif

/** Assert a simulator invariant with a formatted explanation. */
#define panic_if(cond, ...)                                                  \
    do {                                                                     \
        if (cond)                                                            \
            panic(__VA_ARGS__);                                              \
    } while (0)

/** Reject an invalid user configuration with a formatted explanation. */
#define fatal_if(cond, ...)                                                  \
    do {                                                                     \
        if (cond)                                                            \
            fatal(__VA_ARGS__);                                              \
    } while (0)

#endif // COSIM_BASE_LOGGING_HH
