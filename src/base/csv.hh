/**
 * @file
 * Minimal CSV writer used by the bench harness to persist figure series.
 *
 * Rows stream into an AtomicFile (write-temp + rename), so a crash or
 * full disk mid-figure never leaves a truncated CSV that looks
 * complete: the file appears whole at close() or not at all.
 */

#ifndef COSIM_BASE_CSV_HH
#define COSIM_BASE_CSV_HH

#include <string>
#include <vector>

#include "base/atomic_file.hh"

namespace cosim {

/**
 * Streams rows of string/numeric fields to a CSV file, quoting fields
 * that contain separators. The file is committed on close() (or
 * destruction); write errors are fatal(), naming the path.
 */
class CsvWriter
{
  public:
    /** Open @p path for writing; fatal() if the file cannot be created. */
    explicit CsvWriter(const std::string& path);

    /** close()s; fatal() if the commit fails. */
    ~CsvWriter();

    CsvWriter(const CsvWriter&) = delete;
    CsvWriter& operator=(const CsvWriter&) = delete;

    /** Write a header or data row of raw string fields. */
    void writeRow(const std::vector<std::string>& fields);

    /** Convenience: format doubles with full precision. */
    void writeNumericRow(const std::string& key,
                         const std::vector<double>& values);

    /** Flush and atomically publish the file. Idempotent. */
    void close();

    const std::string& path() const { return path_; }

  private:
    static std::string escape(const std::string& field);

    std::string path_;
    AtomicFile file_;
    bool closed_ = false;
};

} // namespace cosim

#endif // COSIM_BASE_CSV_HH
