/**
 * @file
 * Minimal CSV writer used by the bench harness to persist figure series.
 */

#ifndef COSIM_BASE_CSV_HH
#define COSIM_BASE_CSV_HH

#include <fstream>
#include <string>
#include <vector>

namespace cosim {

/**
 * Streams rows of string/numeric fields to a CSV file, quoting fields
 * that contain separators. The file is flushed on destruction.
 */
class CsvWriter
{
  public:
    /** Open @p path for writing; fatal() if the file cannot be created. */
    explicit CsvWriter(const std::string& path);

    /** Write a header or data row of raw string fields. */
    void writeRow(const std::vector<std::string>& fields);

    /** Convenience: format doubles with full precision. */
    void writeNumericRow(const std::string& key,
                         const std::vector<double>& values);

    const std::string& path() const { return path_; }

  private:
    static std::string escape(const std::string& field);

    std::string path_;
    std::ofstream out_;
};

} // namespace cosim

#endif // COSIM_BASE_CSV_HH
