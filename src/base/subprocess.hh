/**
 * @file
 * Child-process execution with output capture and a silence watchdog.
 *
 * The sweep harness gets true fault containment by re-executing itself
 * with a `--run-cell` entrypoint: a wild write, abort, or wedged loop
 * in one cell then takes down a forked child instead of the whole
 * sweep. This module owns the OS mechanics only -- fork/execvp, pipe
 * plumbing, poll()-driven capture, SIGKILL on silence, wait4 status
 * and rusage decoding -- and knows nothing about cells or journals.
 *
 * Liveness, not wall time: the watchdog question mirrors CellWatch's
 * (obs/progress.hh). Any byte the child writes to stdout, stderr, or
 * the optional heartbeat pipe counts as activity; only a child that is
 * *silent* longer than `silenceTimeout` is killed. A slow but chatty
 * cell is never shot while a wedged one still is.
 *
 * The heartbeat pipe is created before the fork so its write-end fd
 * number can be passed to the child on the command line
 * (`heartbeatArgPrefix` + fd). The child publishes liveness with
 * rate-limited one-byte writes (HeartbeatSlot::bindPipe); the parent
 * drains them and invokes `onHeartbeat` so a live progress view keeps
 * ticking for isolated cells.
 */

#ifndef COSIM_BASE_SUBPROCESS_HH
#define COSIM_BASE_SUBPROCESS_HH

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace cosim {

/** Decoded end state of one child process. */
struct SubprocessResult
{
    enum class End
    {
        Exited,   ///< normal exit; see exitCode
        Signaled, ///< killed by a signal; see termSignal/signalName
        TimedOut, ///< silent past the watchdog budget; SIGKILLed by us
    };

    End end = End::Exited;
    int pid = 0;
    int exitCode = 0;       ///< valid when end == Exited
    int termSignal = 0;     ///< valid when end != Exited
    std::string signalName; ///< "SIGSEGV" style; empty when Exited
    std::string stdoutTail; ///< last `tailBytes` of child stdout
    std::string stderrTail; ///< last `tailBytes` of child stderr
    std::uint64_t heartbeats = 0; ///< bytes drained from the heartbeat pipe
    std::uint64_t maxRssKb = 0;   ///< child peak RSS (wait4 rusage)
    double wallSeconds = 0.0;

    bool ok() const { return end == End::Exited && exitCode == 0; }
    /** "exited 0" / "killed by SIGSEGV" / "silent >2.0s, SIGKILLed". */
    std::string describe() const;
};

struct SubprocessOptions
{
    /** argv[0] is the program, resolved through PATH (execvp). */
    std::vector<std::string> argv;
    /** Seconds of *no pipe activity* before SIGKILL (0 = no watchdog). */
    double silenceTimeout = 0.0;
    /** Per-stream capture cap; only the tail is kept. */
    std::size_t tailBytes = 8192;
    /** Create a heartbeat pipe and append its write-end fd to argv as
     * `heartbeatArgPrefix + fd`. */
    bool heartbeatPipe = false;
    std::string heartbeatArgPrefix = "--heartbeat-fd=";
    /** Called (on the calling thread) per heartbeat byte drained. */
    std::function<void(std::uint64_t total)> onHeartbeat;
    /** Called once with the child's pid right after the fork. */
    std::function<void(int pid)> onSpawn;
};

/**
 * Run @p opts.argv to completion (blocking) and decode how it ended.
 * @throws IoError when the process cannot even be spawned (pipe or
 * fork failure); an exec failure inside the child is reported as a
 * normal exit with code 127 instead.
 */
SubprocessResult runSubprocess(const SubprocessOptions& opts);

/** "SIGSEGV" for SIGSEGV, ...; "SIG<n>" for signals without a name. */
std::string signalName(int sig);

} // namespace cosim

#endif // COSIM_BASE_SUBPROCESS_HH
