/**
 * @file
 * Clang thread-safety analysis annotations.
 *
 * Wraps the capability attributes of Clang's `-Wthread-safety` pass
 * (Hutchins et al., "C/C++ Thread Safety Analysis") so that locking
 * discipline is checked at *compile time*: a field declared
 * `GUARDED_BY(mutex_)` can only be touched while `mutex_` is held, a
 * function declared `REQUIRES(mutex_)` can only be called with the lock
 * already taken, and deleting a `LockGuard` around a guarded access is a
 * build error in the Clang CI lane instead of a latent race.
 *
 * The macros expand to nothing on compilers without the attributes
 * (gcc, MSVC), so annotated code stays portable. They pair with the
 * annotated `Mutex` / `LockGuard` / `CondVar` wrappers in
 * base/mutex.hh; see DESIGN.md "Static analysis" for the conventions.
 *
 * Every macro is guarded with #ifndef so that a third-party header
 * defining the same conventional names (Abseil, google-benchmark
 * internals) does not clash.
 */

#ifndef COSIM_BASE_ANNOTATIONS_HH
#define COSIM_BASE_ANNOTATIONS_HH

#if defined(__clang__)
#define COSIM_TSA_ATTR(x) __attribute__((x))
#else
#define COSIM_TSA_ATTR(x) // no-op outside Clang
#endif

/** Marks a type as a lockable capability ("mutex", "role", ...). */
#ifndef CAPABILITY
#define CAPABILITY(x) COSIM_TSA_ATTR(capability(x))
#endif

/** Marks an RAII type that acquires a capability for its lifetime. */
#ifndef SCOPED_CAPABILITY
#define SCOPED_CAPABILITY COSIM_TSA_ATTR(scoped_lockable)
#endif

/** Field/variable may only be accessed while holding @p x. */
#ifndef GUARDED_BY
#define GUARDED_BY(x) COSIM_TSA_ATTR(guarded_by(x))
#endif

/** Pointee (not the pointer itself) is guarded by @p x. */
#ifndef PT_GUARDED_BY
#define PT_GUARDED_BY(x) COSIM_TSA_ATTR(pt_guarded_by(x))
#endif

/** Callers must hold the given capabilities (and keep them held). */
#ifndef REQUIRES
#define REQUIRES(...) COSIM_TSA_ATTR(requires_capability(__VA_ARGS__))
#endif

/** Function acquires the capability; callers must not hold it. */
#ifndef ACQUIRE
#define ACQUIRE(...) COSIM_TSA_ATTR(acquire_capability(__VA_ARGS__))
#endif

/** Function releases the capability; callers must hold it. */
#ifndef RELEASE
#define RELEASE(...) COSIM_TSA_ATTR(release_capability(__VA_ARGS__))
#endif

/** Function acquires the capability iff it returns @p ret. */
#ifndef TRY_ACQUIRE
#define TRY_ACQUIRE(...) COSIM_TSA_ATTR(try_acquire_capability(__VA_ARGS__))
#endif

/** Callers must NOT hold the given capabilities (deadlock guard). */
#ifndef EXCLUDES
#define EXCLUDES(...) COSIM_TSA_ATTR(locks_excluded(__VA_ARGS__))
#endif

/** Runtime assertion that the capability is held (trusted by analysis). */
#ifndef ASSERT_CAPABILITY
#define ASSERT_CAPABILITY(x) COSIM_TSA_ATTR(assert_capability(x))
#endif

/** Function returns a reference to the given capability. */
#ifndef RETURN_CAPABILITY
#define RETURN_CAPABILITY(x) COSIM_TSA_ATTR(lock_returned(x))
#endif

/**
 * Opt a function out of the analysis. Reserved for code that manages
 * locks in ways the analysis cannot model (e.g. CondVar::wait, which
 * releases and re-acquires the mutex internally); every use needs a
 * comment explaining why it is safe.
 */
#ifndef NO_THREAD_SAFETY_ANALYSIS
#define NO_THREAD_SAFETY_ANALYSIS COSIM_TSA_ATTR(no_thread_safety_analysis)
#endif

#endif // COSIM_BASE_ANNOTATIONS_HH
