/**
 * @file
 * Byte-size literals and human-readable size formatting/parsing.
 */

#ifndef COSIM_BASE_UNITS_HH
#define COSIM_BASE_UNITS_HH

#include <cstdint>
#include <string>

namespace cosim {

constexpr std::uint64_t KiB = 1024;
constexpr std::uint64_t MiB = 1024 * KiB;
constexpr std::uint64_t GiB = 1024 * MiB;

namespace literals {

constexpr std::uint64_t operator""_KiB(unsigned long long v) { return v * KiB; }
constexpr std::uint64_t operator""_MiB(unsigned long long v) { return v * MiB; }
constexpr std::uint64_t operator""_GiB(unsigned long long v) { return v * GiB; }

} // namespace literals

/**
 * Format a byte count compactly, e.g. 4194304 -> "4MB", 512 -> "512B".
 * Uses binary units but the conventional short suffixes the paper uses.
 */
std::string formatSize(std::uint64_t bytes);

/**
 * Parse a size string such as "4MB", "64B", "32MiB", "2K", "512kB".
 * @return the byte count; calls fatal() on malformed input.
 */
std::uint64_t parseSize(const std::string& text);

} // namespace cosim

#endif // COSIM_BASE_UNITS_HH
