#include "base/str.hh"

#include <cctype>
#include <cstdarg>
#include <cstdio>

namespace cosim {

std::vector<std::string>
split(const std::string& text, char sep)
{
    std::vector<std::string> out;
    std::string cur;
    for (char c : text) {
        if (c == sep) {
            out.push_back(cur);
            cur.clear();
        } else {
            cur += c;
        }
    }
    out.push_back(cur);
    return out;
}

std::string
trim(const std::string& text)
{
    std::size_t b = 0;
    std::size_t e = text.size();
    while (b < e && std::isspace(static_cast<unsigned char>(text[b])) != 0)
        ++b;
    while (e > b && std::isspace(static_cast<unsigned char>(text[e - 1])) != 0)
        --e;
    return text.substr(b, e - b);
}

std::string
toLower(const std::string& text)
{
    std::string out = text;
    for (char& c : out)
        c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    return out;
}

std::string
strFormat(const char* fmt, ...)
{
    std::va_list args;
    va_start(args, fmt);
    std::va_list args_copy;
    va_copy(args_copy, args);
    int n = std::vsnprintf(nullptr, 0, fmt, args_copy);
    va_end(args_copy);
    std::string out;
    if (n > 0) {
        out.resize(static_cast<std::size_t>(n) + 1);
        std::vsnprintf(out.data(), out.size(), fmt, args);
        out.resize(static_cast<std::size_t>(n));
    }
    va_end(args);
    return out;
}

bool
startsWith(const std::string& text, const std::string& prefix)
{
    return text.size() >= prefix.size() &&
           text.compare(0, prefix.size(), prefix) == 0;
}

std::string
formatFixed(double v, int decimals)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", decimals, v);
    return buf;
}

} // namespace cosim
