#include "base/logging.hh"

#include <cstdio>
#include <cstdlib>
#include <vector>

namespace cosim {

namespace {

void
defaultHandler(LogLevel level, const std::string& msg)
{
    switch (level) {
      case LogLevel::Info:
        std::fprintf(stdout, "info: %s\n", msg.c_str());
        break;
      case LogLevel::Warn:
        std::fprintf(stderr, "warn: %s\n", msg.c_str());
        break;
      case LogLevel::Fatal:
        std::fprintf(stderr, "fatal: %s\n", msg.c_str());
        break;
      case LogLevel::Panic:
        std::fprintf(stderr, "panic: %s\n", msg.c_str());
        break;
    }
}

LogHandler currentHandler = defaultHandler;

std::string
vformat(const char* fmt, std::va_list args)
{
    std::va_list args_copy;
    va_copy(args_copy, args);
    int n = std::vsnprintf(nullptr, 0, fmt, args_copy);
    va_end(args_copy);
    if (n <= 0)
        return std::string();
    std::vector<char> buf(static_cast<std::size_t>(n) + 1);
    std::vsnprintf(buf.data(), buf.size(), fmt, args);
    return std::string(buf.data(), static_cast<std::size_t>(n));
}

} // namespace

LogHandler
setLogHandler(LogHandler handler)
{
    LogHandler prev = currentHandler;
    currentHandler = handler ? handler : defaultHandler;
    return prev;
}

void
logMessage(LogLevel level, const char* fmt, ...)
{
    std::va_list args;
    va_start(args, fmt);
    std::string msg = vformat(fmt, args);
    va_end(args);
    currentHandler(level, msg);
}

void
panicImpl(const char* file, int line, const char* fmt, ...)
{
    std::va_list args;
    va_start(args, fmt);
    std::string msg = vformat(fmt, args);
    va_end(args);
    msg += " (" + std::string(file) + ":" + std::to_string(line) + ")";
    // A test-installed handler may throw to regain control; the default
    // handler returns, in which case we abort as gem5's panic() does.
    currentHandler(LogLevel::Panic, msg);
    std::abort();
}

void
fatalImpl(const char* file, int line, const char* fmt, ...)
{
    std::va_list args;
    va_start(args, fmt);
    std::string msg = vformat(fmt, args);
    va_end(args);
    msg += " (" + std::string(file) + ":" + std::to_string(line) + ")";
    currentHandler(LogLevel::Fatal, msg);
    std::exit(1);
}

} // namespace cosim
