#include "base/logging.hh"

// This file IS the logging backend every other component is pointed
// at, so the stream writes live here by design.
// cosim-analyze: allow-file(no-printf)

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <vector>

namespace cosim {

namespace {

void
defaultHandler(LogLevel level, const std::string& msg)
{
    switch (level) {
      case LogLevel::Debug:
        std::fprintf(stderr, "debug: %s\n", msg.c_str());
        break;
      case LogLevel::Info:
        std::fprintf(stdout, "info: %s\n", msg.c_str());
        break;
      case LogLevel::Warn:
        std::fprintf(stderr, "warn: %s\n", msg.c_str());
        break;
      case LogLevel::Fatal:
        std::fprintf(stderr, "fatal: %s\n", msg.c_str());
        break;
      case LogLevel::Panic:
        std::fprintf(stderr, "panic: %s\n", msg.c_str());
        break;
    }
}

LogHandler currentHandler = defaultHandler;
FatalHook currentFatalHook = nullptr;

LogLevel
verbosityFromEnv()
{
    const char* env = std::getenv("COSIM_LOG");
    if (env == nullptr || *env == '\0')
        return LogLevel::Info;
    if (std::strcmp(env, "debug") == 0)
        return LogLevel::Debug;
    if (std::strcmp(env, "info") == 0)
        return LogLevel::Info;
    if (std::strcmp(env, "warn") == 0)
        return LogLevel::Warn;
    if (std::strcmp(env, "quiet") == 0)
        return LogLevel::Fatal;
    std::fprintf(stderr,
                 "warn: unknown COSIM_LOG level '%s' "
                 "(want debug|info|warn|quiet); using info\n",
                 env);
    return LogLevel::Info;
}

LogLevel&
verbosity()
{
    static LogLevel level = verbosityFromEnv();
    return level;
}

std::string
vformat(const char* fmt, std::va_list args)
{
    std::va_list args_copy;
    va_copy(args_copy, args);
    int n = std::vsnprintf(nullptr, 0, fmt, args_copy);
    va_end(args_copy);
    if (n <= 0)
        return std::string();
    std::vector<char> buf(static_cast<std::size_t>(n) + 1);
    std::vsnprintf(buf.data(), buf.size(), fmt, args);
    return std::string(buf.data(), static_cast<std::size_t>(n));
}

} // namespace

LogHandler
setLogHandler(LogHandler handler)
{
    LogHandler prev = currentHandler;
    currentHandler = handler ? handler : defaultHandler;
    return prev;
}

FatalHook
setFatalHook(FatalHook hook)
{
    FatalHook prev = currentFatalHook;
    currentFatalHook = hook;
    return prev;
}

LogLevel
logVerbosity()
{
    return verbosity();
}

LogLevel
setLogVerbosity(LogLevel level)
{
    LogLevel prev = verbosity();
    verbosity() = level;
    return prev;
}

void
logMessage(LogLevel level, const char* fmt, ...)
{
    // Fatal/Panic always get through; everything else respects the
    // runtime verbosity floor.
    if (level < verbosity() && level < LogLevel::Fatal)
        return;
    std::va_list args;
    va_start(args, fmt);
    std::string msg = vformat(fmt, args);
    va_end(args);
    currentHandler(level, msg);
}

void
panicImpl(const char* file, int line, const char* fmt, ...)
{
    std::va_list args;
    va_start(args, fmt);
    std::string msg = vformat(fmt, args);
    va_end(args);
    msg += " (" + std::string(file) + ":" + std::to_string(line) + ")";
    // A test-installed handler may throw to regain control; the default
    // handler returns, in which case we abort as gem5's panic() does.
    currentHandler(LogLevel::Panic, msg);
    std::abort();
}

void
fatalImpl(const char* file, int line, const char* fmt, ...)
{
    std::va_list args;
    va_start(args, fmt);
    std::string msg = vformat(fmt, args);
    va_end(args);
    msg += " (" + std::string(file) + ":" + std::to_string(line) + ")";
    // Run the post-mortem hook exactly once, even if the hook's own
    // cleanup trips another fatal().
    static std::atomic<bool> in_fatal_hook{false};
    if (currentFatalHook != nullptr &&
        !in_fatal_hook.exchange(true, std::memory_order_relaxed)) {
        currentFatalHook(msg);
        in_fatal_hook.store(false, std::memory_order_relaxed);
    }
    currentHandler(LogLevel::Fatal, msg);
    std::exit(1);
}

} // namespace cosim
