/**
 * @file
 * ASCII table rendering for paper-style tables printed by the benches.
 */

#ifndef COSIM_BASE_TABLE_HH
#define COSIM_BASE_TABLE_HH

#include <string>
#include <vector>

namespace cosim {

/**
 * Accumulates rows of strings and renders them as an aligned ASCII table
 * (or GitHub-flavoured markdown). Numeric alignment is right-justified,
 * text left-justified, decided per column from the data.
 */
class TableWriter
{
  public:
    /** @param title caption printed above the table */
    explicit TableWriter(std::string title = "");

    /** Set the header row. Must be called before addRow(). */
    void setHeader(const std::vector<std::string>& header);

    /** Append a data row; must match the header width. */
    void addRow(const std::vector<std::string>& row);

    /** Render with box-drawing separators for terminals. */
    std::string renderAscii() const;

    /** Render as a markdown table. */
    std::string renderMarkdown() const;

    std::size_t rowCount() const { return rows_.size(); }

  private:
    std::vector<std::size_t> columnWidths() const;
    static bool looksNumeric(const std::string& s);

    std::string title_;
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
};

} // namespace cosim

#endif // COSIM_BASE_TABLE_HH
