#include "base/fault.hh"

#include <cerrno>
#include <cstdlib>

#include "base/flight_recorder.hh"
#include "base/logging.hh"

namespace cosim {
namespace {

/** FNV-1a over the site name: decorrelates per-site Rng streams. */
std::uint64_t
fnv1a(const std::string& s)
{
    std::uint64_t h = 0xcbf29ce484222325ull;
    for (char c : s) {
        h ^= static_cast<unsigned char>(c);
        h *= 0x100000001b3ull;
    }
    return h;
}

bool
parseTrigger(const std::string& text, FaultTrigger* out,
             std::string* error)
{
    const std::size_t eq = text.find('=');
    if (eq == std::string::npos) {
        *error = "trigger '" + text + "' is not nth=K or p=X";
        return false;
    }
    const std::string key = text.substr(0, eq);
    const std::string value = text.substr(eq + 1);
    if (value.empty()) {
        *error = "trigger '" + text + "' has an empty value";
        return false;
    }

    errno = 0;
    char* end = nullptr;
    if (key == "nth") {
        const unsigned long long n =
            std::strtoull(value.c_str(), &end, 10);
        if (errno != 0 || *end != '\0' || n == 0) {
            *error = "nth wants a positive integer, got '" + value +
                     "'";
            return false;
        }
        out->kind = FaultTrigger::Kind::Nth;
        out->nth = n;
        return true;
    }
    if (key == "p") {
        const double p = std::strtod(value.c_str(), &end);
        if (errno != 0 || *end != '\0' || !(p >= 0.0) || p > 1.0) {
            *error = "p wants a probability in [0, 1], got '" + value +
                     "'";
            return false;
        }
        out->kind = FaultTrigger::Kind::Probability;
        out->probability = p;
        return true;
    }
    *error = "unknown trigger '" + key + "' (want nth=K or p=X)";
    return false;
}

} // namespace

FaultInjected::FaultInjected(const std::string& site, std::uint64_t hit)
    : std::runtime_error("injected fault at site '" + site + "' (hit " +
                         std::to_string(hit) + ")"),
      site_(site), hit_(hit)
{}

bool
FaultPlan::parse(const std::string& spec, FaultPlan* out,
                 std::string* error)
{
    FaultPlan plan;
    plan.seed = out->seed;
    std::size_t start = 0;
    while (start <= spec.size()) {
        std::size_t comma = spec.find(',', start);
        if (comma == std::string::npos)
            comma = spec.size();
        const std::string item = spec.substr(start, comma - start);
        start = comma + 1;
        if (item.empty()) {
            *error = "empty fault entry in '" + spec + "'";
            return false;
        }
        const std::size_t colon = item.find(':');
        if (colon == std::string::npos || colon == 0) {
            *error = "fault entry '" + item +
                     "' is not site:trigger";
            return false;
        }
        Site site;
        site.site = item.substr(0, colon);
        if (!parseTrigger(item.substr(colon + 1), &site.trigger, error))
            return false;
        plan.sites.push_back(std::move(site));
        if (comma == spec.size())
            break;
    }
    if (plan.sites.empty()) {
        *error = "fault spec is empty";
        return false;
    }
    *out = std::move(plan);
    return true;
}

std::atomic<bool> FaultInjector::armed_{false};

FaultInjector&
FaultInjector::global()
{
    static FaultInjector instance;
    return instance;
}

void
FaultInjector::arm(const FaultPlan& plan)
{
    LockGuard lock(mutex_);
    sites_.clear();
    seed_ = plan.seed;
    for (const FaultPlan::Site& s : plan.sites) {
        SiteState state;
        state.trigger = s.trigger;
        state.rng = Rng(plan.seed ^ fnv1a(s.site));
        state.armed = true;
        sites_[s.site] = std::move(state);
    }
    armed_.store(!sites_.empty(), std::memory_order_relaxed);
    FlightRecorder::note(FrKind::FaultArmed, "fault.plan",
                         plan.sites.size());
}

void
FaultInjector::disarm()
{
    LockGuard lock(mutex_);
    sites_.clear();
    armed_.store(false, std::memory_order_relaxed);
}

std::uint64_t
FaultInjector::evaluate(const char* site)
{
    LockGuard lock(mutex_);
    SiteState& state = sites_[site]; // unarmed sites still count hits
    ++state.hits;
    if (!state.armed)
        return 0;
    bool fires = false;
    switch (state.trigger.kind) {
      case FaultTrigger::Kind::Nth:
        fires = state.hits == state.trigger.nth;
        break;
      case FaultTrigger::Kind::Probability:
        fires = state.rng.nextBool(state.trigger.probability);
        break;
    }
    if (!fires)
        return 0;
    ++state.fired;
    // The fault-point macro only passes string literals, so storing the
    // pointer satisfies the recorder's site-lifetime contract.
    FlightRecorder::note(FrKind::FaultFired, site, state.hits);
    return state.hits;
}

void
FaultInjector::hit(const char* site)
{
    const std::uint64_t at = evaluate(site);
    if (at != 0)
        throw FaultInjected(site, at);
}

bool
FaultInjector::shouldFail(const char* site)
{
    return evaluate(site) != 0;
}

std::uint64_t
FaultInjector::hits(const std::string& site) const
{
    LockGuard lock(mutex_);
    const auto it = sites_.find(site);
    return it == sites_.end() ? 0 : it->second.hits;
}

std::uint64_t
FaultInjector::fired(const std::string& site) const
{
    LockGuard lock(mutex_);
    const auto it = sites_.find(site);
    return it == sites_.end() ? 0 : it->second.fired;
}

std::vector<FaultInjector::SiteReport>
FaultInjector::report() const
{
    LockGuard lock(mutex_);
    std::vector<SiteReport> out;
    out.reserve(sites_.size());
    for (const auto& entry : sites_) { // std::map: already name-sorted
        SiteReport r;
        r.site = entry.first;
        r.hits = entry.second.hits;
        r.fired = entry.second.fired;
        r.armed = entry.second.armed;
        out.push_back(std::move(r));
    }
    return out;
}

ScopedFaultPlan::ScopedFaultPlan(const std::string& spec,
                                 std::uint64_t seed)
{
    FaultPlan plan;
    plan.seed = seed;
    std::string error;
    panic_if(!FaultPlan::parse(spec, &plan, &error),
             "bad fault spec in test: %s", error.c_str());
    plan.seed = seed;
    FaultInjector::global().arm(plan);
}

} // namespace cosim
