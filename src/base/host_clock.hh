/**
 * @file
 * One process-wide monotonic host clock origin.
 *
 * Telemetry producers scattered across threads (trace sessions, the
 * host profiler's gauge samples, heartbeats, the flight recorder) all
 * need timestamps that compare against each other. Before this header
 * each subsystem captured its own steady_clock origin, so host spans
 * and control-block tracks could skew after a reset(). hostClockNowUs()
 * fixes the origin once, at first use, and never moves it: every
 * subsystem that stamps host time derives it from here, so timestamps
 * from different threads and different telemetry layers live on one
 * axis.
 *
 * Host-side observability only -- simulated time is unrelated and
 * comes from the DEX scheduler's cycle accounting.
 */

#ifndef COSIM_BASE_HOST_CLOCK_HH
#define COSIM_BASE_HOST_CLOCK_HH

#include <cstdint>

namespace cosim {

/**
 * Microseconds since the process-wide monotonic origin. The origin is
 * captured on the first call (returning 0) and is never reset;
 * subsequent calls are strictly non-decreasing. Thread-safe.
 */
std::uint64_t hostClockNowUs();

} // namespace cosim

#endif // COSIM_BASE_HOST_CLOCK_HH
