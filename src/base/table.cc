#include "base/table.hh"

#include <algorithm>
#include <cctype>

#include "base/logging.hh"

namespace cosim {

TableWriter::TableWriter(std::string title) : title_(std::move(title)) {}

void
TableWriter::setHeader(const std::vector<std::string>& header)
{
    panic_if(!rows_.empty(), "setHeader() after rows were added");
    header_ = header;
}

void
TableWriter::addRow(const std::vector<std::string>& row)
{
    panic_if(header_.empty(), "addRow() before setHeader()");
    panic_if(row.size() != header_.size(),
             "row width %zu does not match header width %zu", row.size(),
             header_.size());
    rows_.push_back(row);
}

bool
TableWriter::looksNumeric(const std::string& s)
{
    if (s.empty())
        return false;
    bool digit_seen = false;
    for (std::size_t i = 0; i < s.size(); ++i) {
        char c = s[i];
        if (std::isdigit(static_cast<unsigned char>(c)) != 0) {
            digit_seen = true;
        } else if (c != '.' && c != '-' && c != '+' && c != '%' &&
                   c != 'e' && c != 'E' && c != 'x') {
            return false;
        }
    }
    return digit_seen;
}

std::vector<std::size_t>
TableWriter::columnWidths() const
{
    std::vector<std::size_t> widths(header_.size(), 0);
    for (std::size_t c = 0; c < header_.size(); ++c)
        widths[c] = header_[c].size();
    for (const auto& row : rows_)
        for (std::size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());
    return widths;
}

std::string
TableWriter::renderAscii() const
{
    auto widths = columnWidths();

    auto pad = [&](const std::string& s, std::size_t w, bool right) {
        std::string out;
        if (right)
            out.append(w - s.size(), ' ');
        out += s;
        if (!right)
            out.append(w - s.size(), ' ');
        return out;
    };

    std::vector<bool> numeric(header_.size(), true);
    for (const auto& row : rows_)
        for (std::size_t c = 0; c < row.size(); ++c)
            if (!row[c].empty() && !looksNumeric(row[c]))
                numeric[c] = false;

    std::string sep = "+";
    for (std::size_t w : widths)
        sep += std::string(w + 2, '-') + "+";
    sep += "\n";

    std::string out;
    if (!title_.empty())
        out += title_ + "\n";
    out += sep;
    out += "|";
    for (std::size_t c = 0; c < header_.size(); ++c)
        out += " " + pad(header_[c], widths[c], false) + " |";
    out += "\n" + sep;
    for (const auto& row : rows_) {
        out += "|";
        for (std::size_t c = 0; c < row.size(); ++c)
            out += " " + pad(row[c], widths[c], numeric[c]) + " |";
        out += "\n";
    }
    out += sep;
    return out;
}

std::string
TableWriter::renderMarkdown() const
{
    std::string out;
    if (!title_.empty())
        out += "**" + title_ + "**\n\n";
    out += "|";
    for (const auto& h : header_)
        out += " " + h + " |";
    out += "\n|";
    for (std::size_t c = 0; c < header_.size(); ++c)
        out += "---|";
    out += "\n";
    for (const auto& row : rows_) {
        out += "|";
        for (const auto& cell : row)
            out += " " + cell + " |";
        out += "\n";
    }
    return out;
}

} // namespace cosim
