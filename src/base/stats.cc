#include "base/stats.hh"

#include <algorithm>
#include <cstdio>

#include "base/logging.hh"

namespace cosim {
namespace stats {

Histogram::Histogram(double lo, double hi, std::size_t n_buckets)
    : lo_(lo), hi_(hi), buckets_(n_buckets, 0)
{
    fatal_if(hi <= lo, "histogram range [%f, %f) is empty", lo, hi);
    fatal_if(n_buckets == 0, "histogram needs at least one bucket");
}

void
Histogram::sample(double v)
{
    if (count_ == 0) {
        min_ = max_ = v;
    } else {
        min_ = std::min(min_, v);
        max_ = std::max(max_, v);
    }
    ++count_;
    sum_ += v;

    if (v < lo_) {
        ++underflow_;
    } else if (v >= hi_) {
        ++overflow_;
    } else {
        double width = (hi_ - lo_) / static_cast<double>(buckets_.size());
        auto idx = static_cast<std::size_t>((v - lo_) / width);
        if (idx >= buckets_.size())
            idx = buckets_.size() - 1;
        ++buckets_[idx];
    }
}

double
Histogram::mean() const
{
    return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
}

void
Histogram::reset()
{
    std::fill(buckets_.begin(), buckets_.end(), 0);
    underflow_ = overflow_ = count_ = 0;
    sum_ = min_ = max_ = 0.0;
}

void
Group::add(const std::string& stat_name, const Counter* counter)
{
    panic_if(counter == nullptr, "null counter registered as %s.%s",
             name_.c_str(), stat_name.c_str());
    counters_.emplace_back(stat_name, counter);
}

void
Group::add(const std::string& stat_name, std::function<double()> formula)
{
    formulas_.emplace_back(stat_name, std::move(formula));
}

std::vector<std::pair<std::string, double>>
Group::collect() const
{
    std::vector<std::pair<std::string, double>> out;
    out.reserve(counters_.size() + formulas_.size());
    for (const auto& [stat_name, counter] : counters_)
        out.emplace_back(stat_name, static_cast<double>(counter->value()));
    for (const auto& [stat_name, formula] : formulas_)
        out.emplace_back(stat_name, formula());
    return out;
}

std::string
Group::dump() const
{
    std::string out;
    for (const auto& [stat_name, value] : collect()) {
        char line[256];
        std::snprintf(line, sizeof(line), "%s.%s %.6g\n", name_.c_str(),
                      stat_name.c_str(), value);
        out += line;
    }
    return out;
}

} // namespace stats
} // namespace cosim
