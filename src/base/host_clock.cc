#include "base/host_clock.hh"

#include <chrono>

namespace cosim {

std::uint64_t
hostClockNowUs()
{
    using Clock = std::chrono::steady_clock;
    // Magic-static init is thread-safe; all later readers see the same
    // origin without synchronization because it is never written again.
    static const Clock::time_point origin = Clock::now();
    auto us = std::chrono::duration_cast<std::chrono::microseconds>(
        Clock::now() - origin);
    return static_cast<std::uint64_t>(us.count());
}

} // namespace cosim
