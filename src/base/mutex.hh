/**
 * @file
 * Annotated mutex / lock-guard / condition-variable wrappers.
 *
 * Thin shims over the std synchronization primitives that carry the
 * Clang thread-safety capability attributes from base/annotations.hh.
 * Using them (instead of std::mutex / std::lock_guard directly) is what
 * lets `-Wthread-safety` prove, at compile time, that every
 * `GUARDED_BY` field is only touched under its lock.
 *
 * Conventions (see DESIGN.md "Static analysis"):
 *  - every mutex-protected field is declared `GUARDED_BY(mutex_)`;
 *  - helpers that assume the caller already locked are `REQUIRES(mutex_)`;
 *  - condition waits are written as explicit `while (!pred) cv.wait(lock)`
 *    loops in the locked scope, NOT as predicate lambdas -- the analysis
 *    treats a lambda body as a separate unannotated function, so guarded
 *    reads inside a `wait(lock, pred)` lambda would defeat the checking.
 */

#ifndef COSIM_BASE_MUTEX_HH
#define COSIM_BASE_MUTEX_HH

#include <condition_variable>
#include <mutex>

#include "base/annotations.hh"

namespace cosim {

/** std::mutex carrying the "mutex" capability for -Wthread-safety. */
class CAPABILITY("mutex") Mutex
{
  public:
    Mutex() = default;
    Mutex(const Mutex&) = delete;
    Mutex& operator=(const Mutex&) = delete;

    void lock() ACQUIRE() { m_.lock(); }
    void unlock() RELEASE() { m_.unlock(); }
    bool tryLock() TRY_ACQUIRE(true) { return m_.try_lock(); }

  private:
    friend class CondVar;
    std::mutex m_;
};

/** RAII scoped lock over Mutex (std::lock_guard with the attributes). */
class SCOPED_CAPABILITY LockGuard
{
  public:
    explicit LockGuard(Mutex& m) ACQUIRE(m) : mutex_(m) { mutex_.lock(); }
    ~LockGuard() RELEASE() { mutex_.unlock(); }

    LockGuard(const LockGuard&) = delete;
    LockGuard& operator=(const LockGuard&) = delete;

  private:
    friend class CondVar;
    Mutex& mutex_;
};

/**
 * Condition variable bound to the annotated Mutex/LockGuard pair.
 *
 * wait() temporarily releases the guard's mutex and re-acquires it
 * before returning, exactly like std::condition_variable; from the
 * analysis' point of view the capability is held across the call (which
 * is what makes `while (!pred) cv.wait(lock);` loops check out), so the
 * internals are opted out with NO_THREAD_SAFETY_ANALYSIS.
 */
class CondVar
{
  public:
    CondVar() = default;
    CondVar(const CondVar&) = delete;
    CondVar& operator=(const CondVar&) = delete;

    /** Atomically release @p guard's mutex and sleep; relocks before
     * returning. Spurious wakeups possible: always wait in a loop. */
    void
    wait(LockGuard& guard) NO_THREAD_SAFETY_ANALYSIS
    {
        // Safe: the caller provably holds guard's mutex (LockGuard is a
        // scoped capability), and the mutex is held again on return.
        std::unique_lock<std::mutex> relock(guard.mutex_.m_,
                                            std::adopt_lock);
        cv_.wait(relock);
        relock.release();
    }

    void notifyOne() { cv_.notify_one(); }
    void notifyAll() { cv_.notify_all(); }

  private:
    std::condition_variable cv_;
};

} // namespace cosim

#endif // COSIM_BASE_MUTEX_HH
