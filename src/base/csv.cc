#include "base/csv.hh"

#include <cstdio>

#include "base/logging.hh"

namespace cosim {

CsvWriter::CsvWriter(const std::string& path)
try : path_(path), file_(path)
{
} catch (const IoError& e) {
    // fatal() exits; the implicit rethrow after it is unreachable.
    fatal("csv: %s", e.what());
}

CsvWriter::~CsvWriter()
{
    close();
}

void
CsvWriter::close()
{
    if (closed_)
        return;
    closed_ = true;
    try {
        file_.commit();
    } catch (const IoError& e) {
        fatal("csv: %s", e.what());
    }
}

std::string
CsvWriter::escape(const std::string& field)
{
    bool needs_quote = field.find_first_of(",\"\n") != std::string::npos;
    if (!needs_quote)
        return field;
    std::string out = "\"";
    for (char c : field) {
        if (c == '"')
            out += '"';
        out += c;
    }
    out += '"';
    return out;
}

void
CsvWriter::writeRow(const std::vector<std::string>& fields)
{
    for (std::size_t i = 0; i < fields.size(); ++i) {
        if (i > 0)
            file_.stream() << ',';
        file_.stream() << escape(fields[i]);
    }
    file_.stream() << '\n';
}

void
CsvWriter::writeNumericRow(const std::string& key,
                           const std::vector<double>& values)
{
    std::vector<std::string> fields;
    fields.reserve(values.size() + 1);
    fields.push_back(key);
    for (double v : values) {
        char buf[64];
        std::snprintf(buf, sizeof(buf), "%.10g", v);
        fields.emplace_back(buf);
    }
    writeRow(fields);
}

} // namespace cosim
