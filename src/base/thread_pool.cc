#include "base/thread_pool.hh"

#include "base/logging.hh"

namespace cosim {

ThreadPool::ThreadPool(unsigned n_threads)
{
    fatal_if(n_threads == 0, "thread pool needs at least one worker");
    workers_.reserve(n_threads);
    for (unsigned i = 0; i < n_threads; ++i)
        workers_.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    {
        LockGuard lock(mutex_);
        stopping_ = true;
    }
    taskReady_.notifyAll();
    for (std::thread& worker : workers_)
        worker.join();
}

void
ThreadPool::enqueue(std::function<void()> task)
{
    {
        LockGuard lock(mutex_);
        panic_if(stopping_, "submit() on a stopping thread pool");
        tasks_.push_back(std::move(task));
        ++inFlight_;
    }
    taskReady_.notifyOne();
}

void
ThreadPool::wait()
{
    LockGuard lock(mutex_);
    while (inFlight_ != 0)
        idle_.wait(lock);
}

std::size_t
ThreadPool::queuedTasks() const
{
    LockGuard lock(mutex_);
    return tasks_.size();
}

unsigned
ThreadPool::hardwareThreads()
{
    unsigned n = std::thread::hardware_concurrency();
    return n == 0 ? 1 : n;
}

void
ThreadPool::workerLoop()
{
    for (;;) {
        std::function<void()> task;
        {
            LockGuard lock(mutex_);
            while (!stopping_ && tasks_.empty())
                taskReady_.wait(lock);
            // Drain-on-destruction: keep running queued tasks even while
            // stopping; exit only once the queue is empty.
            if (tasks_.empty())
                return;
            task = std::move(tasks_.front());
            tasks_.pop_front();
        }
        task();
        {
            LockGuard lock(mutex_);
            --inFlight_;
            if (inFlight_ == 0)
                idle_.notifyAll();
        }
    }
}

} // namespace cosim
