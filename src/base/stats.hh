/**
 * @file
 * Lightweight statistics package: named scalar counters, formulas
 * evaluated at dump time, and fixed-bucket histograms, grouped per
 * component (in the spirit of gem5's stats package, minus the
 * registration machinery).
 */

#ifndef COSIM_BASE_STATS_HH
#define COSIM_BASE_STATS_HH

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

namespace cosim {
namespace stats {

/** A monotonically increasing event counter. */
class Counter
{
  public:
    Counter() = default;

    Counter& operator++() { ++value_; return *this; }
    Counter& operator+=(std::uint64_t n) { value_ += n; return *this; }

    std::uint64_t value() const { return value_; }
    void reset() { value_ = 0; }

  private:
    std::uint64_t value_ = 0;
};

/** A histogram over a fixed linear bucket range, with overflow bucket. */
class Histogram
{
  public:
    /**
     * @param lo inclusive lower bound of the tracked range
     * @param hi exclusive upper bound of the tracked range
     * @param n_buckets number of equal-width buckets across [lo, hi)
     */
    Histogram(double lo, double hi, std::size_t n_buckets);

    /** Record one sample. */
    void sample(double v);

    std::uint64_t count() const { return count_; }
    double mean() const;
    double min() const { return min_; }
    double max() const { return max_; }

    const std::vector<std::uint64_t>& buckets() const { return buckets_; }
    std::uint64_t underflow() const { return underflow_; }
    std::uint64_t overflow() const { return overflow_; }

    void reset();

  private:
    double lo_;
    double hi_;
    std::vector<std::uint64_t> buckets_;
    std::uint64_t underflow_ = 0;
    std::uint64_t overflow_ = 0;
    std::uint64_t count_ = 0;
    double sum_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
};

/**
 * A named collection of counters and derived formulas that can be dumped
 * in a stable, human-readable order. Components own a Group and register
 * their counters once at construction.
 */
class Group
{
  public:
    explicit Group(std::string name) : name_(std::move(name)) {}

    /** Register a counter under @p stat_name. */
    void add(const std::string& stat_name, const Counter* counter);

    /** Register a formula evaluated lazily at dump time. */
    void add(const std::string& stat_name, std::function<double()> formula);

    /** Pre-size the stat tables (bulk snapshot/copy paths). */
    void reserve(std::size_t n_counters, std::size_t n_formulas)
    {
        counters_.reserve(n_counters);
        formulas_.reserve(n_formulas);
    }

    const std::string& name() const { return name_; }

    /** Evaluate every registered stat into (name, value) pairs. */
    std::vector<std::pair<std::string, double>> collect() const;

    /** Render "group.stat value" lines. */
    std::string dump() const;

  private:
    std::string name_;
    std::vector<std::pair<std::string, const Counter*>> counters_;
    std::vector<std::pair<std::string, std::function<double()>>> formulas_;
};

/** Ratio helper that tolerates a zero denominator. */
inline double
safeRatio(double num, double den)
{
    return den == 0.0 ? 0.0 : num / den;
}

/** Misses-per-kilo-instruction helper used across the harness. */
inline double
perKiloInst(std::uint64_t events, std::uint64_t insts)
{
    return insts == 0 ? 0.0
                      : 1000.0 * static_cast<double>(events) /
                            static_cast<double>(insts);
}

} // namespace stats
} // namespace cosim

#endif // COSIM_BASE_STATS_HH
