#include "base/subprocess.hh"

#include <cerrno>
#include <csignal>
#include <cstring>

#include <fcntl.h>
#include <poll.h>
#include <sys/resource.h>
#include <sys/wait.h>
#include <unistd.h>

#ifdef __linux__
#include <sys/prctl.h>
#endif

#include "base/atomic_file.hh"
#include "base/host_clock.hh"
#include "base/str.hh"

namespace cosim {
namespace {

/** A pipe pair; both ends O_CLOEXEC so children never inherit stray
 * descriptors (the child ends are re-armed with dup2/F_SETFD). */
struct Pipe
{
    int rd = -1;
    int wr = -1;

    void
    open()
    {
        int fds[2];
        if (::pipe2(fds, O_CLOEXEC) != 0)
            throw IoError(std::string("pipe2: ") + std::strerror(errno));
        rd = fds[0];
        wr = fds[1];
    }

    void
    closeBoth()
    {
        if (rd >= 0)
            ::close(rd);
        if (wr >= 0)
            ::close(wr);
        rd = wr = -1;
    }
};

void
appendTail(std::string* tail, const char* data, std::size_t n,
           std::size_t cap)
{
    tail->append(data, n);
    if (tail->size() > cap)
        tail->erase(0, tail->size() - cap);
}

} // namespace

std::string
signalName(int sig)
{
    switch (sig) {
      case SIGHUP: return "SIGHUP";
      case SIGINT: return "SIGINT";
      case SIGQUIT: return "SIGQUIT";
      case SIGILL: return "SIGILL";
      case SIGTRAP: return "SIGTRAP";
      case SIGABRT: return "SIGABRT";
      case SIGBUS: return "SIGBUS";
      case SIGFPE: return "SIGFPE";
      case SIGKILL: return "SIGKILL";
      case SIGSEGV: return "SIGSEGV";
      case SIGPIPE: return "SIGPIPE";
      case SIGALRM: return "SIGALRM";
      case SIGTERM: return "SIGTERM";
      default: return "SIG" + std::to_string(sig);
    }
}

std::string
SubprocessResult::describe() const
{
    switch (end) {
      case End::Exited:
        return "exited " + std::to_string(exitCode);
      case End::Signaled:
        return "killed by " + signalName;
      case End::TimedOut:
        return strFormat("silent too long, SIGKILLed (pid %d)", pid);
    }
    return "unknown";
}

SubprocessResult
runSubprocess(const SubprocessOptions& opts)
{
    Pipe out;
    Pipe err;
    Pipe hb;
    out.open();
    err.open();
    std::vector<std::string> argv = opts.argv;
    if (opts.heartbeatPipe) {
        hb.open();
        argv.push_back(opts.heartbeatArgPrefix + std::to_string(hb.wr));
    }

    std::vector<char*> cargv;
    cargv.reserve(argv.size() + 1);
    for (std::string& arg : argv)
        cargv.push_back(arg.data());
    cargv.push_back(nullptr);

    const std::uint64_t start_us = hostClockNowUs();
    const pid_t pid = ::fork();
    if (pid < 0) {
        out.closeBoth();
        err.closeBoth();
        hb.closeBoth();
        throw IoError(std::string("fork: ") + std::strerror(errno));
    }
    if (pid == 0) {
        // Child. dup2 clears O_CLOEXEC on 1/2; the heartbeat write end
        // keeps its fd number, so strip its close-on-exec flag.
        ::dup2(out.wr, STDOUT_FILENO);
        ::dup2(err.wr, STDERR_FILENO);
        if (hb.wr >= 0)
            ::fcntl(hb.wr, F_SETFD, 0);
        // Own process group, so a watchdog kill reaps grandchildren
        // too -- otherwise they keep the pipe write ends open and the
        // parent blocks on EOF until they exit on their own.
        ::setpgid(0, 0);
#ifdef __linux__
        // Die with the parent: a SIGKILLed sweep must not leave orphan
        // cells running -- a later --resume would race them on the
        // shared artifact paths. Survives exec; guard the fork/signal
        // race where the parent died before the prctl armed.
        ::prctl(PR_SET_PDEATHSIG, SIGKILL);
        if (::getppid() == 1)
            ::_exit(127);
#endif
        ::execvp(cargv[0], cargv.data());
        const char* msg = "subprocess: exec failed\n";
        ssize_t rc = ::write(STDERR_FILENO, msg, std::strlen(msg));
        (void)rc;
        ::_exit(127);
    }

    // Parent: drop the write ends so EOF tracks child death, and poll
    // the read ends until all close.
    ::close(out.wr);
    out.wr = -1;
    ::close(err.wr);
    err.wr = -1;
    if (hb.wr >= 0) {
        ::close(hb.wr);
        hb.wr = -1;
    }
    // Mirror the child's setpgid so a kill cannot race the exec; one
    // side always wins, and failure after the exec is harmless.
    ::setpgid(pid, pid);
    if (opts.onSpawn)
        opts.onSpawn(pid);

    SubprocessResult res;
    res.pid = pid;
    std::uint64_t last_activity_us = hostClockNowUs();
    bool killed_for_silence = false;
    const std::uint64_t budget_us = opts.silenceTimeout > 0
        ? static_cast<std::uint64_t>(opts.silenceTimeout * 1e6)
        : 0;

    struct Stream
    {
        int fd;
        std::string* tail; ///< null for the heartbeat pipe
    };
    std::vector<Stream> streams;
    streams.push_back(Stream{out.rd, &res.stdoutTail});
    streams.push_back(Stream{err.rd, &res.stderrTail});
    if (hb.rd >= 0)
        streams.push_back(Stream{hb.rd, nullptr});
    for (const Stream& s : streams)
        ::fcntl(s.fd, F_SETFL, O_NONBLOCK);

    char buf[4096];
    while (!streams.empty()) {
        std::vector<struct pollfd> pfds;
        pfds.reserve(streams.size());
        for (const Stream& s : streams)
            pfds.push_back(pollfd{s.fd, POLLIN, 0});
        int timeout_ms = 200;
        if (budget_us > 0 && !killed_for_silence) {
            const std::uint64_t now = hostClockNowUs();
            const std::uint64_t quiet = now - last_activity_us;
            const std::uint64_t left =
                quiet >= budget_us ? 0 : budget_us - quiet;
            if (left / 1000 < static_cast<std::uint64_t>(timeout_ms))
                timeout_ms = static_cast<int>(left / 1000) + 1;
        }
        const int nready =
            ::poll(pfds.data(), pfds.size(), timeout_ms);
        if (nready < 0 && errno != EINTR)
            break;
        bool activity = false;
        for (std::size_t i = 0; i < pfds.size(); ++i) {
            if ((pfds[i].revents & (POLLIN | POLLHUP | POLLERR)) == 0)
                continue;
            for (;;) {
                const ssize_t n = ::read(pfds[i].fd, buf, sizeof buf);
                if (n > 0) {
                    activity = true;
                    Stream& s = streams[i];
                    if (s.tail != nullptr) {
                        appendTail(s.tail, buf, static_cast<std::size_t>(n),
                                   opts.tailBytes);
                    } else {
                        res.heartbeats += static_cast<std::uint64_t>(n);
                        if (opts.onHeartbeat)
                            opts.onHeartbeat(res.heartbeats);
                    }
                    continue;
                }
                if (n == 0) {
                    streams[i].fd = -1; // EOF
                    break;
                }
                break; // EAGAIN or error: poll again
            }
        }
        for (std::size_t i = streams.size(); i-- > 0;) {
            if (streams[i].fd == -1)
                streams.erase(streams.begin() +
                              static_cast<std::ptrdiff_t>(i));
        }
        const std::uint64_t now = hostClockNowUs();
        if (activity)
            last_activity_us = now;
        else if (budget_us > 0 && !killed_for_silence &&
                 now - last_activity_us >= budget_us) {
            // Kill the whole group: grandchildren holding the pipe
            // write ends would otherwise stall the EOF drain below.
            if (::kill(-pid, SIGKILL) != 0)
                ::kill(pid, SIGKILL);
            killed_for_silence = true;
            // Keep draining until the pipes report EOF; the kill makes
            // that prompt.
        }
    }
    out.closeBoth();
    err.closeBoth();
    hb.closeBoth();

    int status = 0;
    struct rusage ru;
    std::memset(&ru, 0, sizeof ru);
    pid_t waited;
    do {
        waited = ::wait4(pid, &status, 0, &ru);
    } while (waited < 0 && errno == EINTR);

    res.wallSeconds =
        static_cast<double>(hostClockNowUs() - start_us) / 1e6;
    res.maxRssKb = static_cast<std::uint64_t>(ru.ru_maxrss);
    if (killed_for_silence) {
        res.end = SubprocessResult::End::TimedOut;
        res.termSignal = SIGKILL;
        res.signalName = cosim::signalName(SIGKILL);
    } else if (WIFSIGNALED(status)) {
        res.end = SubprocessResult::End::Signaled;
        res.termSignal = WTERMSIG(status);
        res.signalName = cosim::signalName(res.termSignal);
    } else {
        res.end = SubprocessResult::End::Exited;
        res.exitCode = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
    }
    return res;
}

} // namespace cosim
