#include "base/atomic_file.hh"

#include <cstdio>

#include <fcntl.h>
#include <unistd.h>

#include "base/fault.hh"
#include "base/logging.hh"

namespace cosim {

AtomicFile::AtomicFile(const std::string& path, bool binary)
    : path_(path), tmpPath_(path + ".tmp")
{
    std::ios_base::openmode mode = std::ios_base::out |
                                   std::ios_base::trunc;
    if (binary)
        mode |= std::ios_base::binary;
    out_.open(tmpPath_, mode);
    if (!out_.is_open()) {
        done_ = true;
        throw IoError("cannot open '" + tmpPath_ + "' for writing");
    }
}

AtomicFile::~AtomicFile()
{
    abort();
}

void
AtomicFile::commit()
{
    panic_if(done_, "AtomicFile::commit() after commit/abort (%s)",
             path_.c_str());
    // An armed "io.write.fail" plan poisons the stream here so the
    // whole failure path (error check, temp cleanup, IoError) runs.
    if (faultPending("io.write.fail"))
        out_.setstate(std::ios_base::failbit);
    out_.flush();
    if (!out_) {
        abort();
        throw IoError("write to '" + path_ +
                      "' failed (disk full or I/O error)");
    }
    out_.close();
    if (out_.fail()) {
        abort();
        throw IoError("closing '" + tmpPath_ + "' failed");
    }
    if (std::rename(tmpPath_.c_str(), path_.c_str()) != 0) {
        abort();
        throw IoError("cannot rename '" + tmpPath_ + "' to '" + path_ +
                      "'");
    }
    done_ = true;
}

void
AtomicFile::abort() noexcept
{
    if (done_)
        return;
    done_ = true;
    if (out_.is_open())
        out_.close();
    std::remove(tmpPath_.c_str());
}

void
writeFileAtomic(const std::string& path, const std::string& body,
                bool binary)
{
    AtomicFile file(path, binary);
    file.write(body);
    file.commit();
}

AppendFile::AppendFile(const std::string& path) : path_(path)
{
    out_.open(path_, std::ios_base::out | std::ios_base::trunc);
    if (!out_.is_open())
        throw IoError("cannot open '" + path_ + "' for appending");
}

bool
AppendFile::appendLine(const std::string& line)
{
    if (!out_)
        return false;
    out_ << line << '\n';
    out_.flush();
    return static_cast<bool>(out_);
}

DurableAppendFile::DurableAppendFile(const std::string& path,
                                     bool truncate)
    : path_(path)
{
    int flags = O_WRONLY | O_CREAT | O_APPEND | O_CLOEXEC;
    if (truncate)
        flags |= O_TRUNC;
    fd_ = ::open(path_.c_str(), flags, 0644);
    if (fd_ < 0)
        throw IoError("cannot open '" + path_ + "' for appending");
}

DurableAppendFile::~DurableAppendFile()
{
    if (fd_ >= 0)
        ::close(fd_);
}

bool
DurableAppendFile::appendLine(const std::string& line)
{
    if (fd_ < 0)
        return false;
    std::string rec = line;
    rec += '\n';
    // One write() per record: O_APPEND places it contiguously at EOF.
    const ssize_t n = ::write(fd_, rec.data(), rec.size());
    if (n != static_cast<ssize_t>(rec.size()) ||
        ::fdatasync(fd_) != 0) {
        ::close(fd_);
        fd_ = -1;
        return false;
    }
    return true;
}

} // namespace cosim
