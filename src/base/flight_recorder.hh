/**
 * @file
 * Crash flight recorder: per-thread ring buffers of recent events.
 *
 * When a sweep cell dies, run.json records *that* it failed; this
 * recorder captures *what the process was doing* just before. Each
 * thread owns a fixed-size ring of structured events (FSB chunks
 * published and emulated, fault-point arms and fires, worker deaths,
 * lock-phase transitions, cell attempt boundaries). Recording is wait
 * free on the owning thread: a handful of relaxed stores into
 * pre-allocated atomic slots plus one release store to publish -- and
 * when recording is disabled it is a single relaxed load. No locks, no
 * allocation, no I/O on the hot path.
 *
 * dumpAll() scrapes every ring (including those of exited threads --
 * rings are kept alive by a global registry) from whatever thread
 * handles the failure and feeds obs/postmortem.hh, which renders the
 * merged history into postmortem.json via writeFileAtomic. Readers and
 * writers never block each other; a dump taken while a thread is
 * mid-event may see that one slot torn (stale field mix), which is
 * acceptable for a post-mortem diagnostic and is why every slot field
 * is an individual atomic (keeps TSan clean).
 *
 * Site strings: note() stores the `const char*` it is given without
 * copying, so callers must pass string literals or other
 * static-storage strings. Per-thread context that is dynamic (the cell
 * a worker is running) goes through setThreadLabel(), which copies.
 */

#ifndef COSIM_BASE_FLIGHT_RECORDER_HH
#define COSIM_BASE_FLIGHT_RECORDER_HH

#include <cstdint>
#include <string>
#include <vector>

namespace cosim {

/** What a flight-recorder event describes. */
enum class FrKind : std::uint16_t {
    None = 0,        ///< empty slot
    Mark,            ///< free-form milestone; site names it
    ChunkPublished,  ///< FSB chunk queued to workers; a=txns, b=worker
    ChunkEmulated,   ///< worker finished a chunk; a=txns, b=worker
    WorkerDied,      ///< emulator worker poisoned its queue; a=worker
    FaultArmed,      ///< a fault plan was armed; a=#sites
    FaultFired,      ///< site fired; a=1-based hit index
    PhaseEnter,      ///< entering a named phase (site names it)
    PhaseExit,       ///< leaving a named phase
    CellAttempt,     ///< guarded cell attempt started; a=attempt index
    CellDone,        ///< guarded cell attempt finished; a=attempt, b=ok
};

/** Stable lower-case name for @p kind ("chunk_published", ...). */
const char* frKindName(FrKind kind);

/** One decoded event, as returned by FlightRecorder::dumpAll(). */
struct FrEvent
{
    std::uint64_t seq = 0;  ///< global order across threads (1-based)
    std::uint64_t tUs = 0;  ///< hostClockNowUs() at record time
    FrKind kind = FrKind::None;
    const char* site = nullptr; ///< static string or nullptr
    std::uint64_t a = 0;
    std::uint64_t b = 0;
};

/** See file comment. All methods are static; state is process-wide. */
class FlightRecorder
{
  public:
    /** Events retained per thread. */
    static constexpr std::size_t kEventsPerThread = 128;

    /** Record an event on the calling thread's ring (see file comment
     * for the @p site lifetime contract). */
    static void note(FrKind kind, const char* site, std::uint64_t a = 0,
                     std::uint64_t b = 0);

    /** Label the calling thread's ring ("emu.worker/1", "cell/PLSA");
     * copied, so dynamic strings are fine here. */
    static void setThreadLabel(const std::string& label);

    /** Master switch; defaults to enabled. Disabling reduces note()
     * to one relaxed load. */
    static void setEnabled(bool on);
    static bool enabled();

    /** One thread's retained history, oldest event first. */
    struct ThreadDump
    {
        std::string label;
        std::vector<FrEvent> events;
    };

    /** Snapshot every thread's ring (live and exited), in ring
     * registration order. Safe from any thread, any time. */
    static std::vector<ThreadDump> dumpAll();

    /** Drop all rings and reset the sequence counter (tests only;
     * racing note() calls on other threads are undefined). */
    static void reset();
};

} // namespace cosim

#endif // COSIM_BASE_FLIGHT_RECORDER_HH
