/**
 * @file
 * Deterministic, seeded, site-keyed fault injection.
 *
 * Long co-simulation campaigns are only trustworthy if their failure
 * paths are exercisable on demand: a worker thread dying mid-chunk, a
 * full disk truncating run.json, one sweep cell throwing. This header
 * provides the single switchboard for provoking those failures
 * reproducibly.
 *
 * A *site* is a stable string naming one failure point in the code
 * (e.g. "emu.worker.crash", "io.write.fail", "cell.throw"). A
 * FaultPlan maps sites to *triggers*:
 *
 *   --faults=site:nth=K[,site:p=X,...]
 *
 *   nth=K   fire on the K-th hit of the site (1-based), once
 *   p=X     fire independently with probability X per hit, drawn
 *           from cosim::Rng seeded from (plan seed ^ fnv1a(site)),
 *           so a given plan+seed replays bit-for-bit
 *
 * Code declares a failure point with COSIM_FAULT_POINT("site"): when
 * no plan is armed this compiles to a single predictable branch on a
 * relaxed atomic (no lock, no map lookup); when the armed plan's
 * trigger fires it throws FaultInjected. faultPending() is the
 * non-throwing variant for call sites that want to fail through their
 * normal error path (e.g. setting failbit on a stream) instead of via
 * an exception.
 *
 * Counting caveat: with nth=K and multiple threads hitting the same
 * site, *which* thread observes the K-th hit depends on scheduling;
 * the count itself is exact (taken under a mutex). Tests that need a
 * specific victim either run serially or assert "exactly one clean
 * error", not "worker 2 failed".
 */

#ifndef COSIM_BASE_FAULT_HH
#define COSIM_BASE_FAULT_HH

#include <atomic>
#include <cstdint>
#include <map>
#include <stdexcept>
#include <string>
#include <vector>

#include "base/annotations.hh"
#include "base/mutex.hh"
#include "base/random.hh"

namespace cosim {

/** Thrown by COSIM_FAULT_POINT when an armed trigger fires. */
class FaultInjected : public std::runtime_error
{
  public:
    FaultInjected(const std::string& site, std::uint64_t hit);

    const std::string& site() const { return site_; }
    /** 1-based hit count at which the fault fired. */
    std::uint64_t hit() const { return hit_; }

  private:
    std::string site_;
    std::uint64_t hit_;
};

/** When an armed site fails: on its K-th hit, or per-hit with p. */
struct FaultTrigger
{
    enum class Kind { Nth, Probability };

    Kind kind = Kind::Nth;
    std::uint64_t nth = 1;   ///< 1-based hit index (Kind::Nth)
    double probability = 0;  ///< per-hit chance (Kind::Probability)
};

/**
 * A parsed --faults= spec: which sites fail, and when. The seed feeds
 * the per-site Rng for probability triggers; the harness sets it to
 * the run seed so fault schedules replay with the experiment.
 */
struct FaultPlan
{
    struct Site
    {
        std::string site;
        FaultTrigger trigger;
    };

    std::vector<Site> sites;
    std::uint64_t seed = 42;

    bool empty() const { return sites.empty(); }

    /**
     * Parse "site:nth=K[,site:p=X,...]" into @p out. @return false
     * with a human-readable message in @p error on malformed input.
     */
    static bool parse(const std::string& spec, FaultPlan* out,
                      std::string* error);
};

/**
 * Process-wide fault switchboard. Sites are evaluated against the
 * armed plan; unarmed sites still count hits (visible via hits()) but
 * never fire. See file comment for the fast-path contract.
 */
class FaultInjector
{
  public:
    static FaultInjector& global();

    /** True iff a non-empty plan is armed; lock-free fast path. */
    static bool
    enabled()
    {
        return armed_.load(std::memory_order_relaxed);
    }

    void arm(const FaultPlan& plan) EXCLUDES(mutex_);
    void disarm() EXCLUDES(mutex_);

    /** Count a hit of @p site; throws FaultInjected if it fires. */
    void hit(const char* site) EXCLUDES(mutex_);

    /**
     * Count a hit of @p site; @return true if it fires. For call
     * sites that fail through their normal error path rather than by
     * exception.
     */
    bool shouldFail(const char* site) EXCLUDES(mutex_);

    /** Total hits recorded for @p site since the last arm(). */
    std::uint64_t hits(const std::string& site) const EXCLUDES(mutex_);

    /** Times @p site actually fired since the last arm(). */
    std::uint64_t fired(const std::string& site) const EXCLUDES(mutex_);

    /** Snapshot of one site's counters, for post-mortem reporting. */
    struct SiteReport
    {
        std::string site;
        std::uint64_t hits = 0;
        std::uint64_t fired = 0;
        bool armed = false;
    };

    /** All sites seen since the last arm(), sorted by name. */
    std::vector<SiteReport> report() const EXCLUDES(mutex_);

  private:
    FaultInjector() = default;

    struct SiteState
    {
        FaultTrigger trigger;
        Rng rng;
        std::uint64_t hits = 0;
        std::uint64_t fired = 0;
        bool armed = false;
    };

    /** @return the 1-based hit index if the site fires, else 0. */
    std::uint64_t evaluate(const char* site) EXCLUDES(mutex_);

    static std::atomic<bool> armed_;

    mutable Mutex mutex_;
    std::map<std::string, SiteState> sites_ GUARDED_BY(mutex_);
    std::uint64_t seed_ GUARDED_BY(mutex_) = 42;
};

/**
 * Non-throwing probe: true when a plan is armed and @p site fires on
 * this hit. Compiles to one predictable branch when nothing is armed.
 */
inline bool
faultPending(const char* site)
{
    return FaultInjector::enabled() &&
           FaultInjector::global().shouldFail(site);
}

/**
 * Declares a failure point. No plan armed: a single relaxed-atomic
 * branch. Armed and the site's trigger fires: throws FaultInjected.
 */
#define COSIM_FAULT_POINT(site)                                        \
    do {                                                               \
        if (::cosim::FaultInjector::enabled())                         \
            ::cosim::FaultInjector::global().hit(site);                \
    } while (0)

/** RAII plan for tests: arms on construction, disarms on scope exit. */
class ScopedFaultPlan
{
  public:
    explicit ScopedFaultPlan(const FaultPlan& plan)
    {
        FaultInjector::global().arm(plan);
    }

    /** Arm from a spec string; panics on parse error (test misuse). */
    explicit ScopedFaultPlan(const std::string& spec,
                             std::uint64_t seed = 42);

    ~ScopedFaultPlan() { FaultInjector::global().disarm(); }

    ScopedFaultPlan(const ScopedFaultPlan&) = delete;
    ScopedFaultPlan& operator=(const ScopedFaultPlan&) = delete;
};

} // namespace cosim

#endif // COSIM_BASE_FAULT_HH
