/**
 * @file
 * Fixed-capacity overwrite-oldest ring buffer.
 *
 * A bounded history window: push() never allocates after construction
 * and never fails -- once full, the oldest element is overwritten.
 * Used wherever "the last N things that happened" is the right shape:
 * host-profiler gauge samples, recent-event windows in tests.
 *
 * Not thread-safe; callers that share one across threads guard it
 * themselves (the lock-free variant lives in base/flight_recorder.hh).
 */

#ifndef COSIM_BASE_RING_BUFFER_HH
#define COSIM_BASE_RING_BUFFER_HH

#include <cstddef>
#include <cstdint>
#include <vector>

#include "base/logging.hh"

namespace cosim {

/** See file comment. */
template <typename T>
class RingBuffer
{
  public:
    explicit RingBuffer(std::size_t capacity) : slots_(capacity)
    {
        panic_if(capacity == 0, "RingBuffer capacity must be positive");
    }

    /** Append @p value, overwriting the oldest element when full. */
    void
    push(const T& value)
    {
        slots_[head_ % slots_.size()] = value;
        ++head_;
    }

    /** Elements currently retained: min(pushed(), capacity()). */
    std::size_t
    size() const
    {
        return head_ < slots_.size() ? static_cast<std::size_t>(head_)
                                     : slots_.size();
    }

    std::size_t capacity() const { return slots_.size(); }

    /** Total elements ever pushed, including overwritten ones. */
    std::uint64_t pushed() const { return head_; }

    /** Retained element @p i, oldest first (0 .. size()-1). */
    const T&
    at(std::size_t i) const
    {
        panic_if(i >= size(), "RingBuffer::at(%zu) with size %zu", i,
                 size());
        std::uint64_t oldest = head_ - size();
        return slots_[(oldest + i) % slots_.size()];
    }

    void clear() { head_ = 0; }

  private:
    std::vector<T> slots_;
    std::uint64_t head_ = 0;
};

} // namespace cosim

#endif // COSIM_BASE_RING_BUFFER_HH
