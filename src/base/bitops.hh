/**
 * @file
 * Small bit-manipulation helpers used by caches and address mapping.
 */

#ifndef COSIM_BASE_BITOPS_HH
#define COSIM_BASE_BITOPS_HH

#include <bit>
#include <cstdint>

#include "base/types.hh"

namespace cosim {

/** True iff @p v is a (nonzero) power of two. */
constexpr bool
isPowerOf2(std::uint64_t v)
{
    return v != 0 && (v & (v - 1)) == 0;
}

/** floor(log2(v)); @p v must be nonzero. */
constexpr unsigned
floorLog2(std::uint64_t v)
{
    return 63u - static_cast<unsigned>(std::countl_zero(v));
}

/** ceil(log2(v)); @p v must be nonzero. */
constexpr unsigned
ceilLog2(std::uint64_t v)
{
    return v <= 1 ? 0 : floorLog2(v - 1) + 1;
}

/** Round @p a down to a multiple of power-of-two @p align. */
constexpr Addr
alignDown(Addr a, std::uint64_t align)
{
    return a & ~(align - 1);
}

/** Round @p a up to a multiple of power-of-two @p align. */
constexpr Addr
alignUp(Addr a, std::uint64_t align)
{
    return (a + align - 1) & ~(align - 1);
}

/** Extract bits [first, last] (inclusive, last >= first) of @p v. */
constexpr std::uint64_t
bits(std::uint64_t v, unsigned last, unsigned first)
{
    std::uint64_t mask =
        (last >= 63) ? ~std::uint64_t{0} : ((std::uint64_t{1} << (last + 1)) - 1);
    return (v & mask) >> first;
}

} // namespace cosim

#endif // COSIM_BASE_BITOPS_HH
