/**
 * @file
 * Small string helpers shared by the report writers and CLIs.
 */

#ifndef COSIM_BASE_STR_HH
#define COSIM_BASE_STR_HH

#include <string>
#include <vector>

namespace cosim {

/** Split @p text on @p sep, keeping empty fields. */
std::vector<std::string> split(const std::string& text, char sep);

/** Strip leading/trailing whitespace. */
std::string trim(const std::string& text);

/** Lower-case an ASCII string. */
std::string toLower(const std::string& text);

/** printf-style formatting into a std::string. */
std::string strFormat(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** True iff @p text begins with @p prefix. */
bool startsWith(const std::string& text, const std::string& prefix);

/** Fixed-point formatting with @p decimals digits, e.g. 3.14159 -> "3.14". */
std::string formatFixed(double v, int decimals);

} // namespace cosim

#endif // COSIM_BASE_STR_HH
