/**
 * @file
 * Bounded single-producer/single-consumer queue with backpressure.
 *
 * The AsyncEmulatorBank moves *chunks* of a few thousand bus transactions
 * per queue operation, so the per-op cost is amortized thousands of ways;
 * this implementation therefore favours a plain mutex + condition
 * variable over a lock-free ring -- it is trivially correct under
 * ThreadSanitizer, never burns a host core spinning (the test hosts may
 * have a single core), and the blocking push *is* the backpressure that
 * stops a fast producer from buffering unbounded trace history.
 *
 * All queue state is GUARDED_BY(mutex_), so Clang's -Wthread-safety
 * proves the locking discipline at compile time; waits are explicit
 * `while (!cond) cv.wait(lock)` loops for the same reason (see
 * base/mutex.hh).
 *
 * Contract: exactly one producer thread calls push()/close() and exactly
 * one consumer thread calls pop(). Capacity is fixed at construction.
 *
 * A consumer that dies (worker thread caught an exception) calls
 * poison(): this wakes and permanently fails the producer-side wait in
 * push(), so a dead worker can never deadlock the workload thread
 * against a full queue. The producer then reclaims undelivered items
 * with drainNow() if it wants to process them elsewhere.
 */

#ifndef COSIM_BASE_SPSC_QUEUE_HH
#define COSIM_BASE_SPSC_QUEUE_HH

#include <cstddef>
#include <deque>
#include <utility>
#include <vector>

#include "base/annotations.hh"
#include "base/mutex.hh"

namespace cosim {

/** See file comment. */
template <typename T>
class SpscQueue
{
  public:
    explicit SpscQueue(std::size_t capacity)
        : capacity_(capacity == 0 ? 1 : capacity)
    {}

    /**
     * Blocks while the queue is full (backpressure). @return false
     * without enqueueing when the queue is poisoned -- the wait loop
     * observes the poison flag, so a dead consumer cannot strand a
     * producer blocked on a full queue.
     */
    bool
    push(T item)
    {
        {
            LockGuard lock(mutex_);
            while (items_.size() >= capacity_ && !poisoned_)
                notFull_.wait(lock);
            if (poisoned_)
                return false;
            items_.push_back(std::move(item));
            if (items_.size() > peakDepth_)
                peakDepth_ = items_.size();
        }
        notEmpty_.notifyOne();
        return true;
    }

    /**
     * Blocks until an item is available or the queue is closed and
     * drained. @return false on closed-and-drained or poisoned.
     */
    bool
    pop(T& out)
    {
        {
            LockGuard lock(mutex_);
            while (!closed_ && !poisoned_ && items_.empty())
                notEmpty_.wait(lock);
            if (poisoned_ || items_.empty())
                return false;
            out = std::move(items_.front());
            items_.pop_front();
        }
        notFull_.notifyOne();
        return true;
    }

    /** Producer side: no more pushes; wakes a waiting consumer. */
    void
    close()
    {
        {
            LockGuard lock(mutex_);
            closed_ = true;
        }
        notEmpty_.notifyAll();
    }

    /**
     * Consumer side, on fatal failure: permanently fail both ends.
     * push() returns false, pop() returns false, all waiters wake.
     */
    void
    poison()
    {
        {
            LockGuard lock(mutex_);
            poisoned_ = true;
        }
        notFull_.notifyAll();
        notEmpty_.notifyAll();
    }

    bool
    poisoned() const
    {
        LockGuard lock(mutex_);
        return poisoned_;
    }

    /**
     * Move out everything still queued (poisoned or not). Used by the
     * producer to reclaim undelivered items after observing poison.
     */
    std::vector<T>
    drainNow()
    {
        LockGuard lock(mutex_);
        std::vector<T> out;
        out.reserve(items_.size());
        while (!items_.empty()) {
            out.push_back(std::move(items_.front()));
            items_.pop_front();
        }
        return out;
    }

    std::size_t
    size() const
    {
        LockGuard lock(mutex_);
        return items_.size();
    }

    std::size_t capacity() const { return capacity_; }

    /** High-water mark of the queue depth since the last resetPeak(). */
    std::size_t
    peakDepth() const
    {
        LockGuard lock(mutex_);
        return peakDepth_;
    }

    void
    resetPeak()
    {
        LockGuard lock(mutex_);
        peakDepth_ = items_.size();
    }

  private:
    mutable Mutex mutex_;
    CondVar notFull_;
    CondVar notEmpty_;
    std::deque<T> items_ GUARDED_BY(mutex_);
    const std::size_t capacity_;
    std::size_t peakDepth_ GUARDED_BY(mutex_) = 0;
    bool closed_ GUARDED_BY(mutex_) = false;
    bool poisoned_ GUARDED_BY(mutex_) = false;
};

} // namespace cosim

#endif // COSIM_BASE_SPSC_QUEUE_HH
