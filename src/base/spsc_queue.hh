/**
 * @file
 * Bounded single-producer/single-consumer queue with backpressure.
 *
 * The AsyncEmulatorBank moves *chunks* of a few thousand bus transactions
 * per queue operation, so the per-op cost is amortized thousands of ways;
 * this implementation therefore favours a plain mutex + condition
 * variable over a lock-free ring -- it is trivially correct under
 * ThreadSanitizer, never burns a host core spinning (the test hosts may
 * have a single core), and the blocking push *is* the backpressure that
 * stops a fast producer from buffering unbounded trace history.
 *
 * Contract: exactly one producer thread calls push()/close() and exactly
 * one consumer thread calls pop(). Capacity is fixed at construction.
 */

#ifndef COSIM_BASE_SPSC_QUEUE_HH
#define COSIM_BASE_SPSC_QUEUE_HH

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <utility>

namespace cosim {

/** See file comment. */
template <typename T>
class SpscQueue
{
  public:
    explicit SpscQueue(std::size_t capacity)
        : capacity_(capacity == 0 ? 1 : capacity)
    {}

    /** Blocks while the queue is full (backpressure). */
    void
    push(T item)
    {
        {
            std::unique_lock<std::mutex> lock(mutex_);
            notFull_.wait(lock,
                          [this] { return items_.size() < capacity_; });
            items_.push_back(std::move(item));
            if (items_.size() > peakDepth_)
                peakDepth_ = items_.size();
        }
        notEmpty_.notify_one();
    }

    /**
     * Blocks until an item is available or the queue is closed and
     * drained. @return false only on closed-and-drained.
     */
    bool
    pop(T& out)
    {
        {
            std::unique_lock<std::mutex> lock(mutex_);
            notEmpty_.wait(lock,
                           [this] { return closed_ || !items_.empty(); });
            if (items_.empty())
                return false;
            out = std::move(items_.front());
            items_.pop_front();
        }
        notFull_.notify_one();
        return true;
    }

    /** Producer side: no more pushes; wakes a waiting consumer. */
    void
    close()
    {
        {
            std::lock_guard<std::mutex> lock(mutex_);
            closed_ = true;
        }
        notEmpty_.notify_all();
    }

    std::size_t
    size() const
    {
        std::lock_guard<std::mutex> lock(mutex_);
        return items_.size();
    }

    std::size_t capacity() const { return capacity_; }

    /** High-water mark of the queue depth since the last resetPeak(). */
    std::size_t
    peakDepth() const
    {
        std::lock_guard<std::mutex> lock(mutex_);
        return peakDepth_;
    }

    void
    resetPeak()
    {
        std::lock_guard<std::mutex> lock(mutex_);
        peakDepth_ = items_.size();
    }

  private:
    mutable std::mutex mutex_;
    std::condition_variable notFull_;
    std::condition_variable notEmpty_;
    std::deque<T> items_;
    const std::size_t capacity_;
    std::size_t peakDepth_ = 0;
    bool closed_ = false;
};

} // namespace cosim

#endif // COSIM_BASE_SPSC_QUEUE_HH
