/**
 * @file
 * Deterministic pseudo-random number generation (xoshiro256**).
 *
 * All synthetic data generation in the workloads is seeded explicitly so
 * that every experiment is bit-for-bit reproducible across runs and hosts.
 *
 * cosim::Rng is the only sanctioned randomness source in simulation
 * code: cosim_analyze's no-rand / no-random-device rules reject libc and
 * <random> entropy there precisely so every random draw can be traced
 * back to a recorded seed. seed() exposes the construction seed so run
 * manifests can record the provenance of each experiment.
 */

#ifndef COSIM_BASE_RANDOM_HH
#define COSIM_BASE_RANDOM_HH

#include <cstdint>

namespace cosim {

/**
 * xoshiro256** 1.0 by Blackman & Vigna (public domain reference
 * algorithm), wrapped in a small value-type class. Satisfies the needs of
 * synthetic data generation; not a cryptographic generator.
 */
class Rng
{
  public:
    /** Construct from a 64-bit seed (expanded with splitmix64). */
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull);

    /** Next raw 64-bit value. */
    std::uint64_t next();

    /** Uniform integer in [0, bound) using rejection-free scaling. */
    std::uint64_t nextBounded(std::uint64_t bound);

    /** Uniform integer in [lo, hi] inclusive. */
    std::int64_t nextRange(std::int64_t lo, std::int64_t hi);

    /** Uniform double in [0, 1). */
    double nextDouble();

    /** Gaussian sample via Box-Muller. */
    double nextGaussian(double mean = 0.0, double stddev = 1.0);

    /**
     * Sample from a bounded Zipf-like (power-law) distribution over
     * [0, n): rank r has weight 1 / (r + 1)^s. Used for Kosarak-like
     * transaction synthesis.
     */
    std::uint64_t nextZipf(std::uint64_t n, double s);

    /** Bernoulli draw with probability @p p. */
    bool nextBool(double p = 0.5);

    /** The seed this generator was constructed from. */
    std::uint64_t seed() const { return seed_; }

  private:
    std::uint64_t seed_;
    std::uint64_t s_[4];
    bool haveSpareGauss_ = false;
    double spareGauss_ = 0.0;
};

} // namespace cosim

#endif // COSIM_BASE_RANDOM_HH
