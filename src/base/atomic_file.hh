/**
 * @file
 * Crash-safe artifact writing: write-temp + flush + rename.
 *
 * Every artifact the harness emits (run.json, stats dumps, CSVs,
 * Chrome traces, FSBC captures, golden digests) is written through
 * this class so that a crash, full disk, or injected I/O fault leaves
 * either the complete new file or the previous one -- never a
 * truncated hybrid. The protocol:
 *
 *   1. open "<path>.tmp" (fresh, truncated)
 *   2. stream the body into it
 *   3. commit(): flush, close, check the stream, rename over <path>
 *
 * Any failure removes the temp file and throws IoError naming the
 * path, so callers can either propagate (cell isolation) or convert
 * to fatal() (top-level writers). An AtomicFile destroyed without
 * commit() aborts the write and removes its temp file.
 *
 * commit() honours the "io.write.fail" fault-injection site (see
 * base/fault.hh): an armed trigger poisons the stream just before the
 * final flush, exercising the full error path including temp-file
 * cleanup.
 *
 * std::rename is atomic within a filesystem on POSIX; the temp file
 * lives next to its target, so the pair is always on one filesystem.
 */

#ifndef COSIM_BASE_ATOMIC_FILE_HH
#define COSIM_BASE_ATOMIC_FILE_HH

#include <fstream>
#include <stdexcept>
#include <string>

namespace cosim {

/** Thrown when an artifact write fails; what() names the path. */
class IoError : public std::runtime_error
{
  public:
    explicit IoError(const std::string& what)
        : std::runtime_error(what)
    {}
};

/** See file comment. */
class AtomicFile
{
  public:
    /**
     * Opens "<path>.tmp" for writing. @throws IoError when the temp
     * file cannot be created (missing directory, permissions).
     */
    explicit AtomicFile(const std::string& path, bool binary = false);

    /** Aborts (removes the temp file) if not committed. */
    ~AtomicFile();

    AtomicFile(const AtomicFile&) = delete;
    AtomicFile& operator=(const AtomicFile&) = delete;

    /** The stream to write the body into. */
    std::ofstream& stream() { return out_; }

    /** Convenience: append @p body to the stream. */
    void write(const std::string& body) { out_ << body; }

    /**
     * Flush, close, and rename the temp file over the target.
     * @throws IoError (after removing the temp file) on any failure.
     * The object is inert afterwards; commit() twice is an error.
     */
    void commit();

    /** Drops the temp file without touching the target. Idempotent. */
    void abort() noexcept;

    const std::string& path() const { return path_; }

  private:
    std::string path_;
    std::string tmpPath_;
    std::ofstream out_;
    bool done_ = false;
};

/** One-shot helper: write @p body to @p path atomically. */
void writeFileAtomic(const std::string& path, const std::string& body,
                     bool binary = false);

/**
 * Line-granular append stream for event logs (progress.jsonl).
 *
 * Atomic-rename is the wrong shape for a stream that must hit disk
 * *while the run is still going* -- the whole point is that a wedged
 * or killed sweep is diagnosable from the partial file. AppendFile is
 * the sanctioned discipline for that case: the file is created fresh
 * (truncated) on open, and every appendLine() writes exactly one
 * complete line and flushes it, so the file on disk is always a whole
 * number of well-formed lines; a crash can lose at most the line being
 * written, never interleave or truncate earlier ones.
 *
 * Diagnostics channel, deliberately best-effort past open: open
 * failures throw IoError (caller misconfiguration), but a write
 * failure mid-run only makes appendLine() return false -- a full disk
 * must not take down the simulation it is reporting on. Not
 * fault-instrumented ("io.write.fail" targets artifact writers).
 *
 * Not internally synchronized; callers serialize appendLine() calls
 * (obs/progress.hh holds its stream mutex across each append).
 */
class AppendFile
{
  public:
    /** Creates/truncates @p path. @throws IoError when it cannot. */
    explicit AppendFile(const std::string& path);

    AppendFile(const AppendFile&) = delete;
    AppendFile& operator=(const AppendFile&) = delete;

    /**
     * Write @p line plus a trailing newline and flush. @return false
     * once the stream has failed (and on every later call).
     */
    bool appendLine(const std::string& line);

    const std::string& path() const { return path_; }

  private:
    std::string path_;
    std::ofstream out_;
};

/**
 * Durable atomic-append stream: the write-ahead-journal discipline.
 *
 * AppendFile is the right shape for diagnostics (truncate on open,
 * buffered ofstream, lost on power cut); a *journal* that crash
 * recovery replays needs more: an existing file must be appendable
 * (resume), each record must reach the disk before the caller acts on
 * its success, and a record must never tear even when several
 * processes hold the file open. DurableAppendFile provides exactly
 * that:
 *
 *   - open(2) with O_APPEND: POSIX makes each write() land at the
 *     current end atomically, so one appendLine() is one contiguous
 *     record regardless of who else appends.
 *   - one write() call per line (line + '\n' in a single buffer), so a
 *     crash mid-append leaves at most one torn *final* line, which a
 *     reader can detect (no trailing newline) and discard.
 *   - fdatasync() before reporting success, so "appendLine() returned
 *     true" means "the record survives a power cut".
 *
 * Like AppendFile, write failures after open are reported by a false
 * return rather than an exception -- journal writers degrade to
 * journal-less operation instead of killing the sweep they protect.
 * harness/sweep_journal.cc layers the "journal.write.fail" fault site
 * on top; cosim_analyze's journal-atomic-append rule keeps journal
 * writers on this class.
 */
class DurableAppendFile
{
  public:
    /**
     * Opens @p path for appending, creating it when absent. With
     * @p truncate, any existing content is discarded first (fresh
     * journal); without, appends continue after the existing records
     * (resume). @throws IoError when the file cannot be opened.
     */
    explicit DurableAppendFile(const std::string& path,
                               bool truncate = false);
    ~DurableAppendFile();

    DurableAppendFile(const DurableAppendFile&) = delete;
    DurableAppendFile& operator=(const DurableAppendFile&) = delete;

    /**
     * Append @p line plus a trailing newline as one write() and sync
     * it to disk. @return false on failure (and on every later call);
     * never throws. Lines must not themselves contain '\n'.
     */
    bool appendLine(const std::string& line);

    const std::string& path() const { return path_; }

  private:
    std::string path_;
    int fd_ = -1;
};

} // namespace cosim

#endif // COSIM_BASE_ATOMIC_FILE_HH
