/**
 * @file
 * Hardware prefetcher interface.
 *
 * The Unisys Xeon machine of Section 4.4 had a stride-based hardware
 * prefetcher that could be switched off; these models reproduce that
 * study. A prefetcher watches the stream of accesses arriving at the
 * level it protects (here, the L1-miss stream feeding the L2) and
 * proposes line addresses to bring in.
 */

#ifndef COSIM_PREFETCH_PREFETCHER_HH
#define COSIM_PREFETCH_PREFETCHER_HH

#include <cstdint>
#include <vector>

#include "base/types.hh"

namespace cosim {

/** Statistics common to all prefetchers. */
struct PrefetcherStats
{
    std::uint64_t observed = 0;   ///< accesses shown to the prefetcher
    std::uint64_t trained = 0;    ///< observations that confirmed a stride
    std::uint64_t issued = 0;     ///< prefetch candidates produced

    void reset() { *this = PrefetcherStats(); }
};

/** Base class for hardware prefetcher models. */
class Prefetcher
{
  public:
    virtual ~Prefetcher() = default;

    /**
     * Show the prefetcher one demand access and collect its prefetch
     * proposals (absolute byte addresses; the consumer line-aligns them).
     *
     * @param addr demand address
     * @param was_miss whether the access missed at the protected level
     * @param out proposals are appended here (not cleared)
     */
    virtual void observe(Addr addr, bool was_miss,
                         std::vector<Addr>& out) = 0;

    /** Model name for reports. */
    virtual const char* name() const = 0;

    /** Forget all training state. */
    virtual void reset() = 0;

    const PrefetcherStats& stats() const { return stats_; }
    void resetStats() { stats_.reset(); }

  protected:
    PrefetcherStats stats_;
};

} // namespace cosim

#endif // COSIM_PREFETCH_PREFETCHER_HH
