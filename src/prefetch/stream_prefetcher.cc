#include "prefetch/stream_prefetcher.hh"

#include "base/bitops.hh"
#include "base/logging.hh"

namespace cosim {

StreamPrefetcher::StreamPrefetcher(const StreamPrefetcherParams& params)
    : params_(params), table_(params.tableEntries)
{
    fatal_if(!isPowerOf2(params_.lineSize), "line size must be power of 2");
    fatal_if(params_.tableEntries == 0, "stream table needs entries");
}

void
StreamPrefetcher::observe(Addr addr, bool was_miss, std::vector<Addr>& out)
{
    ++stats_.observed;
    if (!was_miss)
        return;

    unsigned line_bits = floorLog2(params_.lineSize);
    Addr line = addr >> line_bits;
    std::uint64_t region = addr >> params_.regionBits;
    Entry& e = table_[region % table_.size()];

    if (e.regionTag != region) {
        e.regionTag = region;
        e.lastLine = line;
        e.direction = 0;
        return;
    }

    std::int64_t delta = static_cast<std::int64_t>(line) -
                         static_cast<std::int64_t>(e.lastLine);
    e.lastLine = line;
    if (delta == 0)
        return;

    int dir = delta > 0 ? 1 : -1;
    if (e.direction != dir) {
        e.direction = dir;
        return;
    }

    ++stats_.trained;
    for (unsigned d = 1; d <= params_.depth; ++d) {
        std::int64_t target =
            static_cast<std::int64_t>(line) + dir * static_cast<int>(d);
        if (target < 0)
            break;
        out.push_back(static_cast<Addr>(target) << line_bits);
        ++stats_.issued;
    }
}

void
StreamPrefetcher::reset()
{
    for (auto& e : table_)
        e = Entry();
}

} // namespace cosim
