#include "prefetch/stride_prefetcher.hh"

#include "base/logging.hh"

namespace cosim {

StridePrefetcher::StridePrefetcher(const StridePrefetcherParams& params)
    : params_(params), table_(params.tableEntries)
{
    fatal_if(params_.tableEntries == 0, "stride table needs entries");
    fatal_if(params_.degree == 0, "stride degree must be >= 1");
}

void
StridePrefetcher::observe(Addr addr, bool was_miss, std::vector<Addr>& out)
{
    (void)was_miss; // trains on the full stream it is shown
    ++stats_.observed;

    std::uint64_t region = addr >> params_.regionBits;
    Entry& e = table_[region % table_.size()];

    if (e.regionTag != region) {
        // New stream (or table conflict): start training from scratch.
        e.regionTag = region;
        e.lastAddr = addr;
        e.stride = 0;
        e.confidence = 0;
        return;
    }

    std::int64_t delta = static_cast<std::int64_t>(addr) -
                         static_cast<std::int64_t>(e.lastAddr);
    e.lastAddr = addr;
    if (delta == 0)
        return;

    if (delta == e.stride) {
        if (e.confidence < params_.maxConfidence)
            ++e.confidence;
    } else {
        if (e.confidence > 0) {
            --e.confidence;
        } else {
            e.stride = delta;
        }
        return;
    }

    if (e.confidence >= params_.threshold) {
        ++stats_.trained;
        for (unsigned d = 1; d <= params_.degree; ++d) {
            std::int64_t target = static_cast<std::int64_t>(addr) +
                                  e.stride * static_cast<std::int64_t>(d);
            if (target < 0)
                break;
            out.push_back(static_cast<Addr>(target));
            ++stats_.issued;
        }
    }
}

void
StridePrefetcher::reset()
{
    for (auto& e : table_)
        e = Entry();
}

} // namespace cosim
