/**
 * @file
 * Region-keyed stride prefetcher.
 *
 * Without program counters (the co-simulation sees only addresses on the
 * bus, just as Dragonhead did), streams are identified by the memory
 * region they walk: accesses are grouped by their 4 KB-aligned region,
 * deltas within a region train a stride, and a confident entry prefetches
 * `degree` strides ahead. Forward and backward strides both train --
 * Section 4.4 notes the workloads stream "in forward and backward
 * directions".
 */

#ifndef COSIM_PREFETCH_STRIDE_PREFETCHER_HH
#define COSIM_PREFETCH_STRIDE_PREFETCHER_HH

#include "prefetch/prefetcher.hh"

namespace cosim {

/** Tuning knobs of the stride prefetcher. */
struct StridePrefetcherParams
{
    /** log2 of the region used as the stream key (default 4 KB). */
    unsigned regionBits = 12;
    /** Number of tracked streams (direct-mapped table). */
    unsigned tableEntries = 64;
    /** Confidence needed before prefetches are issued. */
    unsigned threshold = 2;
    /** Saturation value of the confidence counter. */
    unsigned maxConfidence = 3;
    /** How many strides ahead to prefetch once confident. */
    unsigned degree = 2;
};

/** See file comment. */
class StridePrefetcher : public Prefetcher
{
  public:
    explicit StridePrefetcher(
        const StridePrefetcherParams& params = StridePrefetcherParams());

    void observe(Addr addr, bool was_miss, std::vector<Addr>& out) override;
    const char* name() const override { return "stride"; }
    void reset() override;

    const StridePrefetcherParams& params() const { return params_; }

  private:
    struct Entry
    {
        std::uint64_t regionTag = ~std::uint64_t{0};
        Addr lastAddr = 0;
        std::int64_t stride = 0;
        unsigned confidence = 0;
    };

    StridePrefetcherParams params_;
    std::vector<Entry> table_;
};

} // namespace cosim

#endif // COSIM_PREFETCH_STRIDE_PREFETCHER_HH
