/**
 * @file
 * Miss-triggered next-N-line stream prefetcher.
 *
 * A simpler contrast to the stride prefetcher, used by the ablation
 * bench: on a miss it detects the stream direction from the last few
 * misses in the same region and fetches the next @p depth lines.
 */

#ifndef COSIM_PREFETCH_STREAM_PREFETCHER_HH
#define COSIM_PREFETCH_STREAM_PREFETCHER_HH

#include "prefetch/prefetcher.hh"

namespace cosim {

/** Tuning knobs of the stream prefetcher. */
struct StreamPrefetcherParams
{
    unsigned lineSize = 64;
    unsigned regionBits = 12;
    unsigned tableEntries = 32;
    /** Lines fetched ahead on a confirmed stream. */
    unsigned depth = 2;
};

/** See file comment. */
class StreamPrefetcher : public Prefetcher
{
  public:
    explicit StreamPrefetcher(
        const StreamPrefetcherParams& params = StreamPrefetcherParams());

    void observe(Addr addr, bool was_miss, std::vector<Addr>& out) override;
    const char* name() const override { return "stream"; }
    void reset() override;

  private:
    struct Entry
    {
        std::uint64_t regionTag = ~std::uint64_t{0};
        Addr lastLine = 0;
        int direction = 0; ///< +1 ascending, -1 descending, 0 untrained
    };

    StreamPrefetcherParams params_;
    std::vector<Entry> table_;
};

} // namespace cosim

#endif // COSIM_PREFETCH_STREAM_PREFETCHER_HH
