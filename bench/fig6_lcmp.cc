/**
 * @file
 * Figure 6: LLC misses per 1000 instructions on the LCMP (32 cores),
 * 64 B lines, cache sizes 4 MB - 256 MB. One workload execution feeds
 * all seven passive Dragonhead instances.
 */

#include <cstdio>

#include "core/experiment.hh"
#include "harness/report.hh"
#include "harness/sweep_runner.hh"

using namespace cosim;

int
main(int argc, char** argv)
{
    BenchOptions opts = parseBenchArgs(
        argc, argv,
        "Figure 6: LLC MPKI vs cache size on the 32-core LCMP");
    printBanner("Figure 6: LLC miss per 1000 instructions on LCMP "
                "(32 cores)", opts);
    ensureOutputDir(opts.outDir);

    SweepRunner runner(opts);
    FigureData fig = runner.runCacheSizeFigure("Figure 6 (LCMP)",
                                               presets::lcmp());
    std::printf("\n%s\n", fig.render("LLC misses / 1000 inst").c_str());
    fig.writeCsv(opts.outDir + "/fig6_lcmp.csv");
    std::printf("CSV: %s\n", (opts.outDir + "/fig6_lcmp.csv").c_str());
    return 0;
}
