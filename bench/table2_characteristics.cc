/**
 * @file
 * Table 2: single-threaded workload characteristics on a Pentium 4-like
 * core (8 KB DL1, 512 KB L2): IPC, instruction count, memory-instruction
 * shares, and DL1/DL2 accesses and misses per kilo-instruction.
 */

#include <cstdio>
#include <map>

#include "base/csv.hh"
#include "base/logging.hh"
#include "base/str.hh"
#include "base/table.hh"
#include "core/experiment.hh"
#include "harness/report.hh"
#include "workloads/workload_factory.hh"

using namespace cosim;

namespace {

/** The paper's Table 2, for side-by-side comparison. */
struct PaperRow
{
    double ipc;
    double instBillions;
    double memPct;
    double readPct;
    double dl1Mpki;
    double dl2Mpki;
};

const std::map<std::string, PaperRow> paperTable2 = {
    {"SNP", {0.12, 71.26, 50.75, 37.41, 12.01, 7.77}},
    {"SVM-RFE", {0.87, 37.02, 45.14, 43.64, 61.40, 2.96}},
    {"MDS", {0.06, 217.8, 49.34, 43.46, 51.00, 18.95}},
    {"SHOT", {0.61, 15.01, 53.85, 30.66, 18.86, 4.07}},
    {"FIMI", {0.51, 50.28, 47.10, 35.74, 15.99, 3.76}},
    {"VIEWTYPE", {0.49, 33.61, 49.02, 36.86, 31.77, 3.56}},
    {"PLSA", {1.08, 356.8, 83.10, 46.66, 4.60, 0.18}},
    {"RSEARCH", {0.62, 53.9, 42.3, 33.2, 10.65, 0.72}},
};

} // namespace

int
main(int argc, char** argv)
{
    BenchOptions opts = parseBenchArgs(
        argc, argv,
        "Table 2: single-thread workload characteristics (P4-like core)");
    printBanner("Table 2: Workload characteristics", opts);
    ensureOutputDir(opts.outDir);

    PlatformParams platform;
    platform.name = "P4";
    platform.nCores = 1;
    platform.cpu = presets::pentium4Cpu();
    platform.dram.baseLatency = 350; // NetBurst-era memory round trip
    platform.dex.quantumInsts = 100000;
    VirtualPlatform vp(platform);

    TableWriter table(
        "Table 2 -- measured (this reproduction) | paper in [brackets]");
    table.setHeader({"Workload", "IPC", "Insts (M)", "%Mem", "%MemRead",
                     "DL1 acc/1k", "DL1 miss/1k", "DL2 miss/1k",
                     "verified"});

    CsvWriter csv(opts.outDir + "/table2.csv");
    csv.writeRow({"workload", "ipc", "insts", "mem_pct", "read_pct",
                  "dl1_apki", "dl1_mpki", "dl2_mpki", "paper_ipc",
                  "paper_dl1_mpki", "paper_dl2_mpki"});

    for (const std::string& name : opts.workloads) {
        auto wl = createWorkload(name, opts.scale);
        WorkloadConfig cfg;
        cfg.nThreads = 1;
        cfg.scale = opts.scale;
        cfg.seed = opts.seed;
        RunResult r = vp.run(*wl, cfg);
        if (!r.verified && opts.strictVerify)
            fatal("%s failed self-verification", name.c_str());

        const PaperRow& p = paperTable2.at(wl->name());
        table.addRow({
            wl->name(),
            strFormat("%.2f [%.2f]", r.ipc(), p.ipc),
            strFormat("%.1f [%gB]",
                      static_cast<double>(r.totalInsts) / 1e6,
                      p.instBillions),
            strFormat("%.1f%% [%.1f%%]", r.memInstPercent(), p.memPct),
            strFormat("%.1f%% [%.1f%%]", r.memReadPercent(), p.readPct),
            strFormat("%.0f", r.l1AccessesPerKiloInst()),
            strFormat("%.2f [%.2f]", r.l1MissesPerKiloInst(), p.dl1Mpki),
            strFormat("%.2f [%.2f]", r.l2MissesPerKiloInst(), p.dl2Mpki),
            r.verified ? "yes" : "NO",
        });
        csv.writeNumericRow(
            wl->name(),
            {r.ipc(), static_cast<double>(r.totalInsts),
             r.memInstPercent(), r.memReadPercent(),
             r.l1AccessesPerKiloInst(), r.l1MissesPerKiloInst(),
             r.l2MissesPerKiloInst(), p.ipc, p.dl1Mpki, p.dl2Mpki});
    }

    std::printf("%s\n", table.renderAscii().c_str());
    std::printf("Notes: instruction counts are scaled inputs (the paper "
                "ran 15-357 *billion*\ninstructions on real hardware); "
                "compare shapes, not absolutes. CSV: %s\n",
                (opts.outDir + "/table2.csv").c_str());
    return 0;
}
