/**
 * @file
 * Google-benchmark microbenchmarks of the co-simulation's own speed,
 * mirroring the paper's headline claim that HW/SW co-simulation runs at
 * 30-50 MIPS (vs KIPS for detailed software simulators). Reports
 * simulated instructions per second for the platform alone and with
 * increasing numbers of passive Dragonhead emulators attached.
 */

#include <benchmark/benchmark.h>

#include "base/units.hh"
#include "core/cosim.hh"
#include "core/experiment.hh"
#include "test_workload_loop.hh"

using namespace cosim;

namespace {

PlatformParams
smallPlatform(unsigned cores)
{
    PlatformParams p;
    p.nCores = cores;
    p.cpu.baseCpi = 0.85;
    p.cpu.caches.l1 = {"l1", 32 * KiB, 64, 8, ReplPolicy::LRU};
    p.cpu.caches.hasL2 = false;
    p.cpu.useDramLatency = false;
    p.cpu.emitFsbTraffic = true;
    p.dex.quantumInsts = 50000;
    return p;
}

void
reportMips(benchmark::State& state, std::uint64_t insts_per_iter)
{
    state.counters["MIPS"] = benchmark::Counter(
        static_cast<double>(insts_per_iter) * state.iterations() / 1e6,
        benchmark::Counter::kIsRate);
}

void
BM_PlatformOnly(benchmark::State& state)
{
    unsigned cores = static_cast<unsigned>(state.range(0));
    VirtualPlatform vp(smallPlatform(cores));
    std::uint64_t insts = 0;
    for (auto _ : state) {
        bench::LoopWorkload wl(64 * KiB, 4);
        WorkloadConfig cfg;
        cfg.nThreads = cores;
        RunResult r = vp.run(wl, cfg);
        insts = r.totalInsts;
    }
    reportMips(state, insts);
}
BENCHMARK(BM_PlatformOnly)->Arg(1)->Arg(8)->Arg(32)
    ->Unit(benchmark::kMillisecond);

void
BM_CoSimWithEmulators(benchmark::State& state)
{
    unsigned n_emus = static_cast<unsigned>(state.range(0));
    CoSimParams params;
    params.platform = smallPlatform(8);
    for (unsigned e = 0; e < n_emus; ++e) {
        DragonheadParams dh;
        dh.llc = {"llc", (4u << e) * MiB, 64, 16, ReplPolicy::LRU};
        params.emulators.push_back(dh);
    }
    CoSimulation cosim(params);
    std::uint64_t insts = 0;
    for (auto _ : state) {
        bench::LoopWorkload wl(256 * KiB, 2);
        WorkloadConfig cfg;
        cfg.nThreads = 8;
        RunResult r = cosim.run(wl, cfg);
        insts = r.totalInsts;
    }
    reportMips(state, insts);
}
BENCHMARK(BM_CoSimWithEmulators)->Arg(1)->Arg(4)->Arg(7)
    ->Unit(benchmark::kMillisecond);

void
BM_CacheAccessThroughput(benchmark::State& state)
{
    CacheParams p{"llc", 32 * MiB, 64, 16, ReplPolicy::LRU};
    Cache cache(p);
    Addr a = 0;
    for (auto _ : state) {
        cache.access(a, false);
        a += 64;
        if (a >= 64 * MiB)
            a = 0;
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CacheAccessThroughput);

void
BM_DragonheadObserve(benchmark::State& state)
{
    DragonheadParams dp;
    dp.llc = {"llc", 32 * MiB, 64, 16, ReplPolicy::LRU};
    Dragonhead dh(dp);
    dh.observe(msg::encode(msg::Type::StartEmulation, 0));
    BusTransaction txn;
    txn.size = 64;
    txn.kind = TxnKind::ReadLine;
    Addr a = 0;
    for (auto _ : state) {
        txn.addr = a;
        dh.observe(txn);
        a += 64;
        if (a >= 64 * MiB)
            a = 0;
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DragonheadObserve);

} // namespace

BENCHMARK_MAIN();
