/**
 * @file
 * Google-benchmark microbenchmarks of the co-simulation's own speed,
 * mirroring the paper's headline claim that HW/SW co-simulation runs at
 * 30-50 MIPS (vs KIPS for detailed software simulators). Reports
 * simulated instructions per second for the platform alone and with
 * increasing numbers of passive Dragonhead emulators attached, serial
 * and host-parallel.
 *
 * In addition to the google-benchmark tables, the binary always runs one
 * serial-vs-parallel 7-emulator sweep comparison and writes it as
 * machine-readable JSON (BENCH_mips.json, or $COSIM_BENCH_MIPS_JSON) so
 * future revisions can track throughput regressions; the comparison also
 * cross-checks that both modes produced bit-identical emulator results.
 * Pass --benchmark_filter=NONE to skip the tables and only emit the JSON.
 */

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "base/mutex.hh"
#include "base/thread_pool.hh"
#include "base/units.hh"
#include "core/cosim.hh"
#include "core/experiment.hh"
#include "obs/json.hh"
#include "obs/run_manifest.hh"
#include "obs/stats_registry.hh"
#include "trace/fsb_capture.hh"
#include "trace/phase_cluster.hh"
#include "test_workload_loop.hh"

using namespace cosim;

namespace json = cosim::obs::json;

namespace {

PlatformParams
smallPlatform(unsigned cores)
{
    PlatformParams p;
    p.nCores = cores;
    p.cpu.baseCpi = 0.85;
    p.cpu.caches.l1 = {"l1", 32 * KiB, 64, 8, ReplPolicy::LRU};
    p.cpu.caches.hasL2 = false;
    p.cpu.useDramLatency = false;
    p.cpu.emitFsbTraffic = true;
    p.dex.quantumInsts = 50000;
    return p;
}

/** The Figure-4-shaped sweep: 7 LLC sizes from 4 MB up. */
std::vector<DragonheadParams>
sweepEmulators(unsigned n_emus)
{
    std::vector<DragonheadParams> emus;
    for (unsigned e = 0; e < n_emus; ++e) {
        DragonheadParams dh;
        dh.llc = {"llc", (4ull << e) * MiB, 64, 16, ReplPolicy::LRU};
        emus.push_back(dh);
    }
    return emus;
}

void
reportMips(benchmark::State& state, std::uint64_t insts_per_iter)
{
    state.counters["MIPS"] = benchmark::Counter(
        static_cast<double>(insts_per_iter) * state.iterations() / 1e6,
        benchmark::Counter::kIsRate);
}

void
BM_PlatformOnly(benchmark::State& state)
{
    unsigned cores = static_cast<unsigned>(state.range(0));
    VirtualPlatform vp(smallPlatform(cores));
    std::uint64_t insts = 0;
    for (auto _ : state) {
        bench::LoopWorkload wl(64 * KiB, 4);
        WorkloadConfig cfg;
        cfg.nThreads = cores;
        RunResult r = vp.run(wl, cfg);
        insts = r.totalInsts;
    }
    reportMips(state, insts);
}
BENCHMARK(BM_PlatformOnly)->Arg(1)->Arg(8)->Arg(32)
    ->Unit(benchmark::kMillisecond);

void
BM_CoSimWithEmulators(benchmark::State& state)
{
    unsigned n_emus = static_cast<unsigned>(state.range(0));
    CoSimParams params;
    params.platform = smallPlatform(8);
    params.emulators = sweepEmulators(n_emus);
    CoSimulation cosim(params);
    std::uint64_t insts = 0;
    for (auto _ : state) {
        bench::LoopWorkload wl(256 * KiB, 2);
        WorkloadConfig cfg;
        cfg.nThreads = 8;
        RunResult r = cosim.run(wl, cfg);
        insts = r.totalInsts;
    }
    reportMips(state, insts);
}
BENCHMARK(BM_CoSimWithEmulators)->Arg(1)->Arg(4)->Arg(7)
    ->Unit(benchmark::kMillisecond);

void
BM_CoSimParallelEmulators(benchmark::State& state)
{
    unsigned n_emus = static_cast<unsigned>(state.range(0));
    CoSimParams params;
    params.platform = smallPlatform(8);
    params.emulators = sweepEmulators(n_emus);
    params.emulationThreads = ThreadPool::hardwareThreads();
    CoSimulation cosim(params);
    std::uint64_t insts = 0;
    for (auto _ : state) {
        bench::LoopWorkload wl(256 * KiB, 2);
        WorkloadConfig cfg;
        cfg.nThreads = 8;
        RunResult r = cosim.run(wl, cfg);
        insts = r.totalInsts;
    }
    reportMips(state, insts);
}
BENCHMARK(BM_CoSimParallelEmulators)->Arg(1)->Arg(4)->Arg(7)
    ->Unit(benchmark::kMillisecond);

void
BM_CoSimDexShards(benchmark::State& state)
{
    unsigned dex_threads = static_cast<unsigned>(state.range(0));
    CoSimParams params;
    params.platform = smallPlatform(8);
    params.platform.dex.hostThreads = dex_threads;
    params.emulators = sweepEmulators(7);
    CoSimulation cosim(params);
    std::uint64_t insts = 0;
    for (auto _ : state) {
        bench::LoopWorkload wl(256 * KiB, 2);
        WorkloadConfig cfg;
        cfg.nThreads = 8;
        RunResult r = cosim.run(wl, cfg);
        insts = r.totalInsts;
    }
    reportMips(state, insts);
}
BENCHMARK(BM_CoSimDexShards)->Arg(0)->Arg(2)->Arg(4)
    ->Unit(benchmark::kMillisecond);

void
BM_CacheAccessThroughput(benchmark::State& state)
{
    CacheParams p{"llc", 32 * MiB, 64, 16, ReplPolicy::LRU};
    Cache cache(p);
    Addr a = 0;
    for (auto _ : state) {
        cache.access(a, false);
        a += 64;
        if (a >= 64 * MiB)
            a = 0;
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CacheAccessThroughput);

/**
 * Before/after of the de-virtualized hit path: the same resident-line
 * access stream through the full access() path vs tryHitFast().
 */
void
BM_CacheHitFullPath(benchmark::State& state)
{
    CacheParams p{"l1", 32 * KiB, 64, 8, ReplPolicy::LRU};
    Cache cache(p);
    for (Addr a = 0; a < 32 * KiB; a += 64)
        cache.access(a, false); // warm: every line resident
    Addr a = 0;
    for (auto _ : state) {
        cache.access(a, false);
        a += 64;
        if (a >= 32 * KiB)
            a = 0;
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CacheHitFullPath);

void
BM_CacheHitFastPath(benchmark::State& state)
{
    CacheParams p{"l1", 32 * KiB, 64, 8, ReplPolicy::LRU};
    Cache cache(p);
    for (Addr a = 0; a < 32 * KiB; a += 64)
        cache.access(a, false);
    Addr a = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(cache.tryHitFast(a, false));
        a += 64;
        if (a >= 32 * KiB)
            a = 0;
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CacheHitFastPath);

void
BM_DragonheadObserve(benchmark::State& state)
{
    DragonheadParams dp;
    dp.llc = {"llc", 32 * MiB, 64, 16, ReplPolicy::LRU};
    Dragonhead dh(dp);
    dh.observe(msg::encode(msg::Type::StartEmulation, 0));
    BusTransaction txn;
    txn.size = 64;
    txn.kind = TxnKind::ReadLine;
    Addr a = 0;
    for (auto _ : state) {
        txn.addr = a;
        dh.observe(txn);
        a += 64;
        if (a >= 64 * MiB)
            a = 0;
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DragonheadObserve);

/**
 * Stats-registration contention: every parallel sweep cell snapshots
 * its rig into the global registry, so registration throughput under
 * --jobs matters. Each benchmark thread registers (and then removes)
 * its own namespace of groups against one shared registry.
 */
void
BM_StatsRegistration(benchmark::State& state)
{
    static obs::StatsRegistry registry;
    const std::string prefix =
        "cell/bm" + std::to_string(state.thread_index()) + "/";
    std::uint64_t n = 0;
    for (auto _ : state) {
        stats::Group g(prefix + "grp" + std::to_string(n++ % 64));
        g.add("a", [] { return 1.0; });
        g.add("b", [] { return 2.0; });
        registry.add(std::move(g));
    }
    registry.removePrefix(prefix);
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_StatsRegistration)->Threads(1)->Threads(8);

/**
 * The tracked registry number for BENCH_mips.json: group
 * registrations per second with every hardware thread hammering one
 * registry. @p serialize wraps each add() in one shared mutex,
 * emulating the pre-sharding single-lock registry so the JSON carries
 * a measured before/after on the same machine.
 */
double
measureRegistryOps(bool serialize)
{
    static Mutex single_lock;
    const unsigned n_threads = ThreadPool::hardwareThreads();
    const unsigned per_thread = 4000;
    obs::StatsRegistry registry;

    auto t0 = std::chrono::steady_clock::now();
    std::vector<std::thread> threads;
    threads.reserve(n_threads);
    for (unsigned t = 0; t < n_threads; ++t) {
        threads.emplace_back([&registry, serialize, t] {
            const std::string prefix =
                "cell/w" + std::to_string(t) + "/";
            for (unsigned i = 0; i < per_thread; ++i) {
                stats::Group g(prefix + "grp" + std::to_string(i % 128));
                g.add("a", [] { return 1.0; });
                g.add("b", [] { return 2.0; });
                if (serialize) {
                    LockGuard lock(single_lock);
                    registry.add(std::move(g));
                } else {
                    registry.add(std::move(g));
                }
            }
        });
    }
    for (std::thread& th : threads)
        th.join();
    double secs = std::chrono::duration<double>(
                      std::chrono::steady_clock::now() - t0)
                      .count();
    return secs > 0.0
        ? static_cast<double>(n_threads) * per_thread / secs
        : 0.0;
}

/** One mode of the tracked serial-vs-parallel comparison. */
struct ModeResult
{
    double hostSeconds = 0.0;
    double simMips = 0.0;
    std::uint64_t totalInsts = 0;
    std::uint64_t totalCycles = 0;
    std::vector<double> mpkis;
    std::vector<std::uint64_t> misses;
};

ModeResult
runSweepOnce(unsigned emulation_threads, unsigned dex_threads = 0)
{
    CoSimParams params;
    params.platform = smallPlatform(8);
    params.platform.dex.hostThreads = dex_threads;
    params.emulators = sweepEmulators(7);
    params.emulationThreads = emulation_threads;
    CoSimulation cosim(params);

    bench::LoopWorkload wl(1 * MiB, 3);
    WorkloadConfig cfg;
    cfg.nThreads = 8;
    RunResult r = cosim.run(wl, cfg);

    ModeResult out;
    out.hostSeconds = r.hostSeconds;
    out.simMips = r.simMips();
    out.totalInsts = r.totalInsts;
    out.totalCycles = r.totalCycles;
    out.mpkis = cosim.mpkis();
    for (unsigned e = 0; e < cosim.nEmulators(); ++e)
        out.misses.push_back(cosim.emulator(e).results().misses);
    return out;
}

/** Everything the guest run must reproduce bit-identically. */
bool
identicalResults(const ModeResult& a, const ModeResult& b)
{
    return a.totalInsts == b.totalInsts &&
           a.totalCycles == b.totalCycles && a.mpkis == b.mpkis &&
           a.misses == b.misses;
}

std::string
modeJson(const ModeResult& m, unsigned emulation_threads)
{
    std::string out = "{\"host_seconds\": " + json::number(m.hostSeconds) +
                      ", \"sim_mips\": " + json::number(m.simMips) +
                      ", \"emulation_threads\": " +
                      json::number(emulation_threads) + ", \"mpki\": [";
    for (std::size_t i = 0; i < m.mpkis.size(); ++i)
        out += (i ? "," : "") + json::number(m.mpkis[i]);
    out += "]}";
    return out;
}

/** The tracked sampled-replay comparison (full vs plan-gated replay). */
struct SampledResult
{
    double fullSeconds = 0.0;
    double fullMips = 0.0;
    double sampledSeconds = 0.0;
    double sampledMips = 0.0;
    double speedup = 0.0;
    double coverage = 0.0;
    std::uint64_t intervals = 0;
    double mpkiFull = 0.0;
    double mpkiEst = 0.0;
    double mpkiErr = 0.0;
    bool deterministic = false;
};

/** Instruction-weighted estimate over the plan's representative
 * windows (the sweep runner's estimator, restated for the bench). */
double
estimateMpki(const SamplingPlan& plan, const std::vector<Sample>& samples)
{
    double est = 0.0;
    double wsum = 0.0;
    for (const PlanInterval& iv : plan.intervals) {
        if (iv.window >= samples.size() ||
            samples[iv.window].insts == 0) {
            continue;
        }
        const double w =
            iv.instWeight > 0.0 ? iv.instWeight : iv.weight;
        est += w * samples[iv.window].mpki();
        wsum += w;
    }
    return wsum > 0.0 && wsum < 1.0 ? est / wsum : est;
}

/**
 * Capture the 7-emulator sweep's bus stream once, cluster a sampling
 * plan from the first emulator's CB series, then time a full replay
 * against a plan-gated sampled replay through identical rigs. The
 * tracked numbers: replay MIPS both ways, the speedup, and the MPKI
 * estimation error; the sampled pass is also run twice to check the
 * emulator state it leaves is deterministic.
 */
SampledResult
runSampledComparison()
{
    CoSimParams params;
    params.platform = smallPlatform(8);
    params.emulators = sweepEmulators(7);

    // Capture pass (live guest, snooper riding the bus).
    FsbStreamMeta meta;
    meta.workload = "loop";
    meta.platform = params.platform.name;
    meta.nCores = 8;
    std::shared_ptr<const std::vector<std::uint8_t>> stream;
    SamplingPlan plan;
    {
        CoSimulation cosim(params);
        FsbCaptureSnooper capture(meta, 4096);
        cosim.platform().fsb().attach(&capture);
        bench::LoopWorkload wl(1 * MiB, 3);
        WorkloadConfig cfg;
        cfg.nThreads = 8;
        RunResult r = cosim.run(wl, cfg);
        cosim.platform().fsb().detach(&capture);
        capture.writer().setResult(r.totalInsts, r.verified);
        stream = capture.writer().share();

        PhaseClusterParams pc;
        pc.warmupWindows = 2;
        plan = clusterPhases(cosim.emulator(0).samples(), meta.workload,
                             pc);
        plan.samplePeriodUs = static_cast<double>(
            params.emulators[0].cb.samplePeriodUs);
        plan.coreFreqGhz = params.emulators[0].cb.coreFreqGhz;
    }

    SampledResult out;
    out.intervals = plan.intervals.size();
    out.coverage = plan.coverage();

    // Full replay reference.
    {
        CoSimulation cosim(params);
        RunResult r = cosim.replayBuffer(stream, "memory:loop");
        out.fullSeconds = r.hostSeconds;
        out.fullMips = r.simMips();
        out.mpkiFull = cosim.emulator(0).results().mpki();
    }

    // Sampled replay, twice (the second pass checks determinism).
    std::vector<std::uint64_t> first_misses;
    for (int pass = 0; pass < 2; ++pass) {
        CoSimulation cosim(params);
        RunResult r =
            cosim.replaySampledBuffer(stream, "memory:loop", plan);
        std::vector<std::uint64_t> misses;
        for (unsigned e = 0; e < cosim.nEmulators(); ++e)
            misses.push_back(cosim.emulator(e).results().misses);
        if (pass == 0) {
            out.sampledSeconds = r.hostSeconds;
            out.sampledMips = r.simMips();
            out.mpkiEst =
                estimateMpki(plan, cosim.emulator(0).samples());
            first_misses = std::move(misses);
        } else {
            out.deterministic = misses == first_misses;
        }
    }

    out.speedup = out.sampledSeconds > 0.0
        ? out.fullSeconds / out.sampledSeconds
        : 0.0;
    out.mpkiErr = out.mpkiFull != 0.0
        ? std::abs(out.mpkiEst - out.mpkiFull) / out.mpkiFull
        : std::abs(out.mpkiEst);
    return out;
}

/** The tracked comparison: 7-emulator sweep, serial vs parallel. */
void
writeMipsJson()
{
    const char* env = std::getenv("COSIM_BENCH_MIPS_JSON");
    std::string path = env != nullptr ? env : "BENCH_mips.json";

    // Report the host honestly: hardware_concurrency() as the kernel
    // sees it, not a clamped pool size. A DEX/emulation "speedup" on a
    // box with fewer cores than requested threads is noise, and the
    // JSON must say so rather than flatter the run.
    const unsigned host_cores = std::thread::hardware_concurrency();
    const unsigned host_threads = ThreadPool::hardwareThreads();
    ModeResult serial = runSweepOnce(0);
    ModeResult parallel = runSweepOnce(host_threads);

    bool identical = identicalResults(serial, parallel);
    double speedup = parallel.hostSeconds > 0.0
        ? serial.hostSeconds / parallel.hostSeconds
        : 0.0;

    // The --dex-threads sweep column: same rig, guest execution
    // sharded 0 (classic) / 2 / 4 ways. Results must stay
    // bit-identical; MIPS is the tracked number.
    const unsigned dex_values[] = {0, 2, 4};
    std::vector<ModeResult> dex_results;
    bool dex_identical = true;
    for (unsigned dex : dex_values) {
        if (dex > host_cores) {
            std::fprintf(stderr,
                         "microbench_mips: WARNING: host has %u "
                         "core(s) but the DEX sweep requests %u "
                         "threads; the dex_sweep timing columns are "
                         "oversubscribed and NOT evidence of "
                         "speedup\n", host_cores, dex);
        }
        dex_results.push_back(runSweepOnce(0, dex));
        dex_identical = dex_identical &&
                        identicalResults(serial, dex_results.back());
    }
    const double dex_best_mips =
        std::max(dex_results[1].simMips, dex_results[2].simMips);
    const double dex_speedup = dex_results[0].simMips > 0.0
        ? dex_best_mips / dex_results[0].simMips
        : 0.0;

    const double reg_single = measureRegistryOps(/*serialize=*/true);
    const double reg_sharded = measureRegistryOps(/*serialize=*/false);
    const double reg_speedup =
        reg_single > 0.0 ? reg_sharded / reg_single : 0.0;

    const SampledResult sampled = runSampledComparison();

    std::string out = "{\n";
    out += "  \"schema\": \"cosim-bench-mips/3\",\n";
    out += "  \"git\": " + json::quote(obs::buildRevision()) + ",\n";
    out += "  \"host_cores\": " + json::number(host_cores) + ",\n";
    out += "  \"host_threads\": " + json::number(host_threads) + ",\n";
    out += "  \"emulators\": 7,\n";
    out += "  \"serial\": " + modeJson(serial, 0) + ",\n";
    out += "  \"parallel\": " + modeJson(parallel, host_threads) + ",\n";
    out += "  \"speedup\": " + json::number(speedup) + ",\n";
    out += std::string("  \"identical_results\": ") +
           (identical ? "true" : "false") + ",\n";
    out += "  \"dex_sweep\": [";
    for (std::size_t i = 0; i < dex_results.size(); ++i) {
        const ModeResult& m = dex_results[i];
        out += std::string(i ? "," : "") + "\n    {\"dex_threads\": " +
               json::number(dex_values[i]) + ", \"host_seconds\": " +
               json::number(m.hostSeconds) + ", \"sim_mips\": " +
               json::number(m.simMips) + "}";
    }
    out += "\n  ],\n";
    out += "  \"dex_speedup\": " + json::number(dex_speedup) + ",\n";
    out += std::string("  \"dex_identical_results\": ") +
           (dex_identical ? "true" : "false") + ",\n";
    out += std::string("  \"dex_honest_cores\": ") +
           (host_cores >= 2 ? "true" : "false") + ",\n";
    out += "  \"stats_registration\": {\"single_lock_ops_per_s\": " +
           json::number(reg_single) + ", \"sharded_ops_per_s\": " +
           json::number(reg_sharded) + ", \"speedup\": " +
           json::number(reg_speedup) + "},\n";
    // The sampled-replay column: sim_mips is the sampled pass's
    // throughput so compare-mips gates it like serial/parallel.
    out += "  \"sampled\": {\"sim_mips\": " +
           json::number(sampled.sampledMips) + ", \"host_seconds\": " +
           json::number(sampled.sampledSeconds) +
           ",\n    \"full_mips\": " + json::number(sampled.fullMips) +
           ", \"full_seconds\": " + json::number(sampled.fullSeconds) +
           ", \"speedup\": " + json::number(sampled.speedup) +
           ",\n    \"intervals\": " +
           json::number(static_cast<double>(sampled.intervals)) +
           ", \"coverage\": " + json::number(sampled.coverage) +
           ", \"mpki_full\": " + json::number(sampled.mpkiFull) +
           ", \"mpki_est\": " + json::number(sampled.mpkiEst) +
           ", \"mpki_err\": " + json::number(sampled.mpkiErr) +
           ",\n    \"deterministic\": " +
           (sampled.deterministic ? "true" : "false") + "},\n";
    out += "  \"notes\": " +
           json::quote("stats_registration compares group add() "
                       "throughput with every hardware thread "
                       "registering concurrently: single_lock wraps "
                       "the sharded registry in one global mutex "
                       "(the pre-sharding behaviour), sharded is the "
                       "16-way lock-striped registry as shipped. "
                       "dex_sweep shards guest execution with "
                       "--dex-threads; when dex_honest_cores is false "
                       "the host cannot run the shards concurrently "
                       "and the timing column is not evidence of "
                       "speedup (dex_identical_results still is "
                       "evidence of determinism)") +
           "\n";
    out += "}\n";

    std::ofstream file(path);
    if (!file || !(file << out)) {
        std::fprintf(stderr, "microbench_mips: cannot write %s\n",
                     path.c_str());
        std::exit(1);
    }
    std::printf("serial %.1f MIPS, parallel(%u) %.1f MIPS, speedup "
                "%.2fx, identical=%s -> %s\n", serial.simMips,
                host_threads, parallel.simMips, speedup,
                identical ? "yes" : "NO", path.c_str());
    std::printf("dex sweep: classic %.1f MIPS, 2-shard %.1f MIPS, "
                "4-shard %.1f MIPS (speedup %.2fx on %u host "
                "core(s)), identical=%s\n", dex_results[0].simMips,
                dex_results[1].simMips, dex_results[2].simMips,
                dex_speedup, host_cores, dex_identical ? "yes" : "NO");
    std::printf("stats registration: single-lock %.0f ops/s, sharded "
                "%.0f ops/s (%.2fx)\n", reg_single, reg_sharded,
                reg_speedup);
    std::printf("sampled replay: full %.1f MIPS, sampled %.1f MIPS "
                "(%.2fx, %llu intervals, %.1f%% coverage), mpki err "
                "%.2f%%, deterministic=%s\n", sampled.fullMips,
                sampled.sampledMips, sampled.speedup,
                static_cast<unsigned long long>(sampled.intervals),
                100.0 * sampled.coverage, 100.0 * sampled.mpkiErr,
                sampled.deterministic ? "yes" : "NO");
    if (!identical) {
        std::fprintf(stderr, "microbench_mips: parallel emulation "
                     "diverged from serial!\n");
        std::exit(1);
    }
    if (!dex_identical) {
        std::fprintf(stderr, "microbench_mips: sharded DEX execution "
                     "diverged from the classic scheduler!\n");
        std::exit(1);
    }
    if (!sampled.deterministic) {
        std::fprintf(stderr, "microbench_mips: sampled replay left "
                     "different emulator state across two passes!\n");
        std::exit(1);
    }
}

} // namespace

int
main(int argc, char** argv)
{
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv))
        return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    writeMipsJson();
    return 0;
}
