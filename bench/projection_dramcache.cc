/**
 * @file
 * Extension: quantifying the paper's DRAM-cache proposal.
 *
 * The paper's conclusion argues that "large DRAM caches (eDRAM, off-die
 * DRAM, 3D die-stacking) are essential to reduce the latency and
 * bandwidth to main memory" for the large-working-set workloads, but
 * never quantifies the benefit. This bench does, to first order: run
 * the 32-core LCMP co-simulation once with the LLC size sweep attached,
 * then combine each configuration's measured hit rate with a two-point
 * latency model
 *
 *     t_avg = hit_rate * t_dram_cache + miss_rate * t_memory
 *
 * to report the projected stall-cycle reduction of a 128 MB DRAM cache
 * (slower than SRAM but far larger) against an 8 MB SRAM LLC baseline.
 */

#include <cstdio>

#include "base/csv.hh"
#include "base/logging.hh"
#include "base/str.hh"
#include "base/table.hh"
#include "base/units.hh"
#include "core/experiment.hh"
#include "harness/report.hh"
#include "workloads/workload_factory.hh"

using namespace cosim;

namespace {

constexpr double sramLlcLatency = 40.0;   // 8 MB on-die SRAM
constexpr double dramCacheLatency = 110.0; // stacked/eDRAM cache
constexpr double memoryLatency = 400.0;    // off-chip DRAM

/** Average beyond-L1 service time given an LLC hit rate. */
double
avgLatency(double hit_rate, double llc_latency)
{
    return hit_rate * llc_latency + (1.0 - hit_rate) * memoryLatency;
}

} // namespace

int
main(int argc, char** argv)
{
    BenchOptions opts = parseBenchArgs(
        argc, argv,
        "DRAM-cache projection from the LCMP cache-size sweep");
    printBanner("Projection: 128MB DRAM cache vs 8MB SRAM LLC (LCMP)",
                opts);
    ensureOutputDir(opts.outDir);

    CoSimParams params;
    params.platform = presets::lcmp();
    params.emulators = {presets::llcConfig(8 * MiB, 64),
                        presets::llcConfig(128 * MiB, 64)};
    CoSimulation cosim(params);

    TableWriter table("projected beyond-L1 average service latency "
                      "(cycles) and stall reduction");
    table.setHeader({"Workload", "hit% 8MB", "hit% 128MB", "t_avg SRAM",
                     "t_avg DRAM$", "stall reduction"});
    CsvWriter csv(opts.outDir + "/projection_dramcache.csv");
    csv.writeRow({"workload", "hit8", "hit128", "t_sram", "t_dram",
                  "reduction_pct"});

    for (const std::string& name : opts.workloads) {
        auto wl = createWorkload(name, opts.scale);
        WorkloadConfig cfg;
        cfg.nThreads = params.platform.nCores;
        cfg.scale = opts.scale;
        cfg.seed = opts.seed;
        RunResult r = cosim.run(*wl, cfg);
        if (!r.verified && opts.strictVerify)
            fatal("%s failed self-verification", name.c_str());

        double hit8 = 1.0 - cosim.emulator(0).results().missRate();
        double hit128 = 1.0 - cosim.emulator(1).results().missRate();
        double t_sram = avgLatency(hit8, sramLlcLatency);
        double t_dram = avgLatency(hit128, dramCacheLatency);
        double reduction = 100.0 * (1.0 - t_dram / t_sram);

        table.addRow({wl->name(), strFormat("%.1f%%", 100.0 * hit8),
                      strFormat("%.1f%%", 100.0 * hit128),
                      strFormat("%.0f", t_sram),
                      strFormat("%.0f", t_dram),
                      strFormat("%+.1f%%", reduction)});
        csv.writeNumericRow(wl->name(), {100.0 * hit8, 100.0 * hit128,
                                         t_sram, t_dram, reduction});
    }

    std::printf("%s\n", table.renderAscii().c_str());
    std::printf("Positive reductions for the large-working-set "
                "workloads (SNP, SHOT, VIEWTYPE,\nFIMI at scale) support "
                "the paper's DRAM-cache recommendation; PLSA/RSEARCH,\n"
                "whose working sets fit SRAM, prefer the faster small "
                "LLC -- also as argued.\nCSV: %s\n",
                (opts.outDir + "/projection_dramcache.csv").c_str());
    return 0;
}
