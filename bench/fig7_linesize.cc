/**
 * @file
 * Figure 7: line-size sensitivity on the LCMP (32 cores) with a 32 MB
 * LLC, line sizes 64 B - 4 KB.
 */

#include <cstdio>

#include "core/experiment.hh"
#include "harness/report.hh"
#include "harness/sweep_runner.hh"

using namespace cosim;

int
main(int argc, char** argv)
{
    BenchOptions opts = parseBenchArgs(
        argc, argv,
        "Figure 7: LLC MPKI vs line size (32 MB LLC, 32-core LCMP)");
    printBanner("Figure 7: Line size sensitivity on LCMP with 32MB LLC",
                opts);
    ensureOutputDir(opts.outDir);

    SweepRunner runner(opts);
    FigureData fig = runner.runLineSizeFigure("Figure 7 (LCMP, 32MB)",
                                              presets::lcmp());
    std::printf("\n%s\n", fig.render("LLC misses / 1000 inst").c_str());
    fig.writeCsv(opts.outDir + "/fig7_linesize.csv");
    std::printf("CSV: %s\n", (opts.outDir + "/fig7_linesize.csv").c_str());
    return 0;
}
