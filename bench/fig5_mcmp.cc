/**
 * @file
 * Figure 5: LLC misses per 1000 instructions on the MCMP (16 cores),
 * 64 B lines, cache sizes 4 MB - 256 MB. One workload execution feeds
 * all seven passive Dragonhead instances.
 */

#include <cstdio>

#include "core/experiment.hh"
#include "harness/report.hh"
#include "harness/sweep_runner.hh"

using namespace cosim;

int
main(int argc, char** argv)
{
    BenchOptions opts = parseBenchArgs(
        argc, argv,
        "Figure 5: LLC MPKI vs cache size on the 16-core MCMP");
    printBanner("Figure 5: LLC miss per 1000 instructions on MCMP "
                "(16 cores)", opts);
    ensureOutputDir(opts.outDir);

    SweepRunner runner(opts);
    FigureData fig = runner.runCacheSizeFigure("Figure 5 (MCMP)",
                                               presets::mcmp());
    std::printf("\n%s\n", fig.render("LLC misses / 1000 inst").c_str());
    fig.writeCsv(opts.outDir + "/fig5_mcmp.csv");
    std::printf("CSV: %s\n", (opts.outDir + "/fig5_mcmp.csv").c_str());
    return 0;
}
