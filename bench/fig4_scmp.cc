/**
 * @file
 * Figure 4: LLC misses per 1000 instructions on the SCMP (8 cores),
 * 64 B lines, cache sizes 4 MB - 256 MB. One workload execution feeds
 * all seven passive Dragonhead instances.
 */

#include <cstdio>

#include "core/experiment.hh"
#include "harness/report.hh"
#include "harness/sweep_runner.hh"

using namespace cosim;

int
main(int argc, char** argv)
{
    BenchOptions opts = parseBenchArgs(
        argc, argv,
        "Figure 4: LLC MPKI vs cache size on the 8-core SCMP");
    printBanner("Figure 4: LLC miss per 1000 instructions on SCMP "
                "(8 cores)", opts);
    ensureOutputDir(opts.outDir);

    SweepRunner runner(opts);
    FigureData fig = runner.runCacheSizeFigure("Figure 4 (SCMP)",
                                               presets::scmp());
    std::printf("\n%s\n", fig.render("LLC misses / 1000 inst").c_str());
    fig.writeCsv(opts.outDir + "/fig4_scmp.csv");
    std::printf("CSV: %s\n", (opts.outDir + "/fig4_scmp.csv").c_str());
    return 0;
}
