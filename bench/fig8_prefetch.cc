/**
 * @file
 * Figure 8: performance gain of hardware prefetching on a 16-way
 * Xeon-like SMP, for serial and 16-thread runs of every workload.
 * Speedup = cycles(prefetch off) / cycles(prefetch on) - 1, using the
 * slowest core's cycles (parallel wall clock).
 */

#include <cstdio>

#include "base/csv.hh"
#include "base/logging.hh"
#include "base/str.hh"
#include "base/table.hh"
#include "core/experiment.hh"
#include "harness/report.hh"
#include "workloads/workload_factory.hh"

using namespace cosim;

namespace {

Cycles
runCycles(const std::string& name, unsigned threads, bool prefetch,
          const BenchOptions& opts, bool& verified, double& pf_admit)
{
    PlatformParams platform = presets::unisysSmp(16, prefetch);
    VirtualPlatform vp(platform);
    auto wl = createWorkload(name, opts.scale);
    WorkloadConfig cfg;
    cfg.nThreads = threads;
    cfg.scale = opts.scale;
    cfg.seed = opts.seed;
    RunResult r = vp.run(*wl, cfg);
    verified = r.verified;
    pf_admit = r.prefetch.candidates == 0
        ? 1.0
        : static_cast<double>(r.prefetch.admitted) /
              static_cast<double>(r.prefetch.candidates);
    return r.maxCoreCycles;
}

} // namespace

int
main(int argc, char** argv)
{
    BenchOptions opts = parseBenchArgs(
        argc, argv,
        "Figure 8: hardware-prefetch speedup, serial and 16 threads");
    printBanner("Figure 8: Performance gain of hardware prefetch", opts);
    ensureOutputDir(opts.outDir);

    TableWriter table("Figure 8 -- speedup from enabling the stride "
                      "prefetcher");
    table.setHeader({"Workload", "Serial gain", "16-thread gain",
                     "16t prefetch admitted", "parallel>serial?"});
    CsvWriter csv(opts.outDir + "/fig8_prefetch.csv");
    csv.writeRow({"workload", "serial_gain_pct", "parallel_gain_pct",
                  "parallel_admit_fraction"});

    for (const std::string& name : opts.workloads) {
        bool v1, v2, v3, v4;
        double admit_serial, admit_par, dummy;
        Cycles serial_off = runCycles(name, 1, false, opts, v1, dummy);
        Cycles serial_on = runCycles(name, 1, true, opts, v2,
                                     admit_serial);
        Cycles par_off = runCycles(name, 16, false, opts, v3, dummy);
        Cycles par_on = runCycles(name, 16, true, opts, v4, admit_par);
        if (opts.strictVerify && !(v1 && v2 && v3 && v4))
            fatal("%s failed self-verification", name.c_str());

        double serial_gain =
            100.0 * (static_cast<double>(serial_off) /
                         static_cast<double>(serial_on) -
                     1.0);
        double par_gain =
            100.0 * (static_cast<double>(par_off) /
                         static_cast<double>(par_on) -
                     1.0);

        table.addRow({name, strFormat("%.1f%%", serial_gain),
                      strFormat("%.1f%%", par_gain),
                      strFormat("%.0f%%", 100.0 * admit_par),
                      par_gain > serial_gain ? "yes" : "no"});
        csv.writeNumericRow(name,
                            {serial_gain, par_gain, admit_par});
        std::printf("  %-9s serial %+6.1f%%  parallel %+6.1f%%\n",
                    name.c_str(), serial_gain, par_gain);
    }

    std::printf("\n%s\n", table.renderAscii().c_str());
    std::printf("Paper: all workloads gain (up to ~33%%); parallel gains "
                "exceed serial except for\nSNP and MDS, whose demand "
                "misses saturate the bus and starve the prefetcher.\n"
                "CSV: %s\n", (opts.outDir + "/fig8_prefetch.csv").c_str());
    return 0;
}
