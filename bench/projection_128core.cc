/**
 * @file
 * Extension: the paper's 128-core projection, simulated.
 *
 * Section 4.3 *projects* beyond the measured 32 cores: "the cache
 * performance of these workloads will not scale on a large number of
 * cores, even on 128 cores" (PLSA/MDS/SVM-RFE/SNP), and "their working
 * set will exceed 32MB on 128 cores" (FIMI/RSEARCH), while SHOT and
 * VIEWTYPE were "certain to be good candidates for large DRAM caches".
 * The paper could not measure this -- SoftSDV DEX topped out at 64 HW
 * threads. The software platform has no such limit, so this bench runs
 * the sweep on a 64-core and a 128-core CMP and checks the projection.
 */

#include <cstdio>

#include "core/experiment.hh"
#include "harness/report.hh"
#include "harness/sweep_runner.hh"

using namespace cosim;

int
main(int argc, char** argv)
{
    BenchOptions opts = parseBenchArgs(
        argc, argv,
        "128-core projection: LLC MPKI vs cache size at 64 and 128 "
        "cores");
    printBanner("Projection: beyond the paper's 32 cores", opts);
    ensureOutputDir(opts.outDir);

    SweepRunner runner(opts);
    for (unsigned cores : {64u, 128u}) {
        std::string id = "Projection (" + std::to_string(cores) +
                         " cores)";
        FigureData fig = runner.runCacheSizeFigure(
            id, presets::cmpPlatform("XCMP" + std::to_string(cores),
                                     cores));
        std::printf("\n%s\n",
                    fig.render("LLC misses / 1000 inst").c_str());
        std::string csv = opts.outDir + "/projection_" +
                          std::to_string(cores) + "core.csv";
        fig.writeCsv(csv);
        std::printf("CSV: %s\n", csv.c_str());
    }

    std::printf("\nPaper's projections to check against the tables "
                "above:\n"
                " - PLSA/MDS/SVM-RFE/SNP: curves unchanged from the "
                "32-core run (shared data);\n"
                "   a small ~8MB LLC still suffices for all but their "
                "largest structures.\n"
                " - FIMI/RSEARCH: working sets keep growing with cores "
                "and exceed 32MB.\n"
                " - SHOT/VIEWTYPE: private per-thread buffers put the "
                "knee in DRAM-cache\n"
                "   territory (hundreds of MB).\n");
    return 0;
}
