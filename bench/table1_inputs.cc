/**
 * @file
 * Table 1: input parameters and datasets -- the paper's originals next
 * to this reproduction's synthetic substitutions.
 */

#include <cstdio>

#include "base/table.hh"
#include "harness/report.hh"
#include "mem/address_space.hh"
#include "workloads/workload_factory.hh"

using namespace cosim;

int
main(int argc, char** argv)
{
    BenchOptions opts = parseBenchArgs(
        argc, argv, "Table 1: workload inputs and substitutions");
    printBanner("Table 1: Input parameters and datasets", opts);

    TableWriter table("Table 1 (paper inputs vs. this reproduction)");
    table.setHeader({"Workload", "Paper parameters", "Paper input",
                     "Synthetic substitution", "Footprint here"});

    for (const WorkloadInfo& info : workloadCatalog()) {
        auto wl = createWorkload(info.name, opts.scale);
        SimAllocator alloc;
        WorkloadConfig cfg;
        cfg.nThreads = 8;
        cfg.scale = opts.scale;
        cfg.seed = opts.seed;
        wl->setUp(cfg, alloc);
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%.1fMB",
                      static_cast<double>(alloc.footprint()) / (1 << 20));
        table.addRow({info.name, info.paperParameters, info.paperInput,
                      info.substitution, buf});
        wl->tearDown();
    }
    std::printf("%s\n", table.renderAscii().c_str());
    std::printf("(footprints at --scale=%.3g with 8 threads; private\n"
                " structures are counted once per thread)\n", opts.scale);
    return 0;
}
