/**
 * @file
 * A minimal deterministic loop workload for the microbenchmarks (the
 * real workloads live in src/workloads; this one just generates a
 * well-defined access stream fast).
 */

#ifndef COSIM_BENCH_TEST_WORKLOAD_LOOP_HH
#define COSIM_BENCH_TEST_WORKLOAD_LOOP_HH

#include "softsdv/guest.hh"
#include "workloads/sim_array.hh"

namespace cosim {
namespace bench {

class LoopWorkload : public Workload
{
  public:
    LoopWorkload(std::size_t array_bytes, unsigned passes)
        : arrayBytes_(array_bytes), passes_(passes)
    {}

    std::string name() const override { return "bench-loop"; }
    std::string description() const override { return "bench loop"; }

    void
    setUp(const WorkloadConfig& cfg, SimAllocator& alloc) override
    {
        arrays_.clear();
        arrays_.resize(cfg.nThreads);
        for (unsigned i = 0; i < cfg.nThreads; ++i)
            arrays_[i].init(alloc, "bench.array", arrayBytes_ / 8);
    }

    std::unique_ptr<ThreadTask> createThread(unsigned tid) override;

  private:
    friend class LoopTask;
    std::size_t arrayBytes_;
    unsigned passes_;
    std::vector<SimArray<std::uint64_t>> arrays_;
};

class LoopTask : public ThreadTask
{
  public:
    LoopTask(LoopWorkload& wl, unsigned tid) : wl_(wl), tid_(tid) {}

    /** Concurrent-safe: every task streams over its own array. */
    bool parallelStepSafe() const override { return true; }

    bool
    step(CoreContext& ctx) override
    {
        auto& arr = wl_.arrays_[tid_];
        std::size_t chunk = std::min<std::size_t>(512, arr.size() - pos_);
        for (std::size_t k = 0; k < chunk; ++k)
            arr.read(ctx, pos_ + k);
        ctx.compute(chunk);
        pos_ += chunk;
        if (pos_ >= arr.size()) {
            pos_ = 0;
            ++pass_;
        }
        return pass_ < wl_.passes_;
    }

  private:
    LoopWorkload& wl_;
    unsigned tid_;
    std::size_t pos_ = 0;
    unsigned pass_ = 0;
};

inline std::unique_ptr<ThreadTask>
LoopWorkload::createThread(unsigned tid)
{
    return std::make_unique<LoopTask>(*this, tid);
}

} // namespace bench
} // namespace cosim

#endif // COSIM_BENCH_TEST_WORKLOAD_LOOP_HH
