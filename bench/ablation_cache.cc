/**
 * @file
 * Ablation study (google-benchmark): design choices DESIGN.md calls out.
 *
 *  - replacement policy of the emulated LLC (Dragonhead implemented LRU;
 *    how much does the choice matter for a FIMI-like tree walk?),
 *  - number of CC slices (1 vs 4) -- fidelity/cost of the interleave,
 *  - simulating a sweep with N passive emulators vs N separate runs.
 *
 * Each benchmark reports the measured LLC miss rate as a counter, so the
 * ablation shows both the simulation cost and the modelled outcome.
 */

#include <benchmark/benchmark.h>

#include "base/random.hh"
#include "base/units.hh"
#include "cache/cache.hh"
#include "cache/sweep_bank.hh"
#include "dragonhead/dragonhead.hh"

using namespace cosim;

namespace {

/** A deterministic FIMI-flavoured trace: pointer-chase bursts over a
 * tree-sized region plus a small hot private region. */
Addr
traceAddr(std::uint64_t i, Rng& rng)
{
    if (i % 8 < 6)
        return 0x1000'0000 + rng.nextBounded(16 * MiB); // shared tree
    return 0x4000'0000 + rng.nextBounded(512 * KiB);    // private data
}

void
BM_ReplacementPolicy(benchmark::State& state)
{
    ReplPolicy policy = static_cast<ReplPolicy>(state.range(0));
    CacheParams p{"llc", 8 * MiB, 64, 16, policy};
    for (auto _ : state) {
        Cache cache(p);
        Rng rng(11);
        for (std::uint64_t i = 0; i < 2'000'000; ++i)
            cache.access(traceAddr(i, rng), false);
        state.counters["miss_rate"] = cache.stats().missRate();
    }
    state.SetItemsProcessed(state.iterations() * 2'000'000);
}
BENCHMARK(BM_ReplacementPolicy)
    ->Arg(static_cast<int>(ReplPolicy::LRU))
    ->Arg(static_cast<int>(ReplPolicy::FIFO))
    ->Arg(static_cast<int>(ReplPolicy::Random))
    ->Arg(static_cast<int>(ReplPolicy::TreePLRU))
    ->Arg(static_cast<int>(ReplPolicy::NRU))
    ->Unit(benchmark::kMillisecond);

void
BM_SliceCount(benchmark::State& state)
{
    DragonheadParams dp;
    dp.llc = {"llc", 8 * MiB, 64, 16, ReplPolicy::LRU};
    dp.nSlices = static_cast<unsigned>(state.range(0));
    for (auto _ : state) {
        Dragonhead dh(dp);
        dh.observe(msg::encode(msg::Type::StartEmulation, 0));
        Rng rng(13);
        BusTransaction txn;
        txn.size = 64;
        txn.kind = TxnKind::ReadLine;
        for (std::uint64_t i = 0; i < 2'000'000; ++i) {
            txn.addr = traceAddr(i, rng);
            dh.observe(txn);
        }
        state.counters["miss_rate"] = dh.results().missRate();
    }
    state.SetItemsProcessed(state.iterations() * 2'000'000);
}
BENCHMARK(BM_SliceCount)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond);

void
BM_SweepBankVsSeparateRuns(benchmark::State& state)
{
    bool banked = state.range(0) != 0;
    std::vector<CacheParams> configs;
    for (std::uint64_t mb : {1, 2, 4, 8, 16, 32, 64}) {
        configs.push_back(
            {"llc", mb * MiB, 64, 16, ReplPolicy::LRU});
    }
    for (auto _ : state) {
        if (banked) {
            CacheSweepBank bank;
            for (const auto& cfg : configs)
                bank.addConfig(cfg);
            Rng rng(17);
            for (std::uint64_t i = 0; i < 500'000; ++i)
                bank.access(traceAddr(i, rng), false);
            benchmark::DoNotOptimize(bank.missCounts());
        } else {
            for (const auto& cfg : configs) {
                Cache cache(cfg);
                Rng rng(17); // regenerate the identical stream per run
                for (std::uint64_t i = 0; i < 500'000; ++i)
                    cache.access(traceAddr(i, rng), false);
                benchmark::DoNotOptimize(cache.stats().misses);
            }
        }
    }
    state.SetItemsProcessed(state.iterations() * 500'000 * 7);
}
BENCHMARK(BM_SweepBankVsSeparateRuns)->Arg(1)->Arg(0)
    ->Unit(benchmark::kMillisecond);

void
BM_SharedVsPrivateLlc(benchmark::State& state)
{
    // Shared interleaved LLC vs equal-capacity private per-core
    // partitions on a stream with a shared hot region: the shared
    // organization keeps one copy, the private one replicates it
    // (the tradeoff of Liu et al. / PHA$E in the paper's related work).
    bool per_core = state.range(0) != 0;
    DragonheadParams dp;
    dp.llc = {"llc", 8 * MiB, 64, 16, ReplPolicy::LRU};
    dp.nSlices = 8;
    dp.partitioning = per_core ? LlcPartitioning::PerCore
                               : LlcPartitioning::Interleaved;
    for (auto _ : state) {
        Dragonhead dh(dp);
        dh.observe(msg::encode(msg::Type::StartEmulation, 0));
        Rng rng(23);
        BusTransaction txn;
        txn.size = 64;
        txn.kind = TxnKind::ReadLine;
        for (std::uint64_t i = 0; i < 2'000'000; ++i) {
            // DEX-style slices: cores own 4096-access time slots.
            CoreId core = static_cast<CoreId>((i / 4096) % 8);
            if (i % 4096 == 0)
                dh.observe(msg::encode(msg::Type::SetCoreId, core));
            txn.core = core;
            txn.addr = traceAddr(i, rng);
            dh.observe(txn);
        }
        state.counters["miss_rate"] = dh.results().missRate();
    }
    state.SetItemsProcessed(state.iterations() * 2'000'000);
}
BENCHMARK(BM_SharedVsPrivateLlc)->Arg(0)->Arg(1)
    ->Unit(benchmark::kMillisecond);

void
BM_LineSizeCost(benchmark::State& state)
{
    std::uint32_t line = static_cast<std::uint32_t>(state.range(0));
    CacheParams p{"llc", 32 * MiB, line, 16, ReplPolicy::LRU};
    for (auto _ : state) {
        Cache cache(p);
        Rng rng(19);
        for (std::uint64_t i = 0; i < 1'000'000; ++i)
            cache.access(traceAddr(i, rng), false);
        state.counters["miss_rate"] = cache.stats().missRate();
    }
    state.SetItemsProcessed(state.iterations() * 1'000'000);
}
BENCHMARK(BM_LineSizeCost)->Arg(64)->Arg(256)->Arg(1024)->Arg(4096)
    ->Unit(benchmark::kMillisecond);

} // namespace

BENCHMARK_MAIN();
